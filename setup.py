"""Setuptools shim for legacy editable installs.

All package metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` in environments without the ``wheel``
package (PEP-517 editable builds require it).
"""

from setuptools import setup

setup()
