"""Benchmark harness regenerating every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Each module reproduces one table or figure of the evaluation section and
prints the corresponding rows/series (the same data the paper plots) in
addition to the pytest-benchmark timing of the regeneration itself:

* ``bench_table1.py``   — Table 1 (analytic protocol comparison).
* ``bench_fig6a.py``    — Figure 6a (n=19, 4 global datacenters, payload sweep).
* ``bench_fig6b.py``    — Figure 6b (n=4, 4 global datacenters, payload sweep).
* ``bench_fig6c.py``    — Figure 6c (latency variance, n=4, 1 MB payload).
* ``bench_fig6d.py``    — Figure 6d (crash faults, n=19, 4 US datacenters).
* ``bench_fig6e.py``    — Figure 6e (n=19, worldwide network).
* ``bench_ablation_p.py``          — ablation: the fast-path parameter p.
* ``bench_ablation_stragglers.py`` — ablation: fast-path hit rate vs. stragglers.

The simulated durations are chosen so the full suite completes in a few
minutes on a laptop; the headline comparisons (who wins, by roughly what
factor) are stable at these durations because, as the paper itself notes, the
measurements are remarkably regular.
"""
