"""Ablation: fast-path hit rate vs. straggler replicas.

Exercises the "integrated dual mode" design choice: when more than p replicas
are slow, the fast path stops firing but — unlike the switching-cost designs
of Figure 2 (Bosco, SBFT) — latency degrades only to the concurrent slow
path.  Stragglers are honest replicas whose outbound messages are delayed by
a full second.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, print_figure, run_once
from repro.eval.scenarios import ablation_stragglers

STRAGGLER_COUNTS = (0, 1, 2)
DURATION = 15.0


def test_ablation_stragglers(benchmark):
    figure = run_once(
        benchmark, ablation_stragglers, straggler_counts=STRAGGLER_COUNTS,
        extra_delay=1.0, payload_size=100_000, duration=DURATION,
    )
    print_figure(figure)

    rows = figure.series["banyan (p=1)"]
    paper_comparison([
        {"stragglers": row["stragglers"], "fast_path_ratio": row["fast_path_ratio"],
         "mean_latency_ms": row["mean_latency_ms"],
         "committed_blocks": row["committed_blocks"]}
        for row in rows
    ])

    by_count = {row["stragglers"]: row for row in rows}
    # No stragglers: fast path dominates.
    assert by_count[0]["fast_path_ratio"] > 0.8
    # More stragglers than p: the fast path stops firing...
    assert by_count[2]["fast_path_ratio"] < by_count[0]["fast_path_ratio"]
    # ...but the protocol keeps committing via the slow path, and the latency
    # stays bounded by the slow path rather than by the stragglers' delay.
    assert by_count[2]["committed_blocks"] > 0
    assert by_count[2]["mean_latency_ms"] < 1000.0
