"""Table 1: analytic comparison of SMR protocols.

Regenerates the paper's Table 1 for the two configurations used in the
evaluation (f=6, p=1 and f=4, p=4, both giving n=19) and checks the key
claims: Banyan has the lowest finalization latency among rotating-leader
protocols and matches the Kuznetsov/Abraham lower bound n >= 3f + 2p - 1.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.eval.table1 import banyan_beats_or_matches_all, table1_rows

_HEADERS = [
    "protocol", "finalization_latency", "finalization_requirement",
    "creation_latency", "creation_requirement", "replicas", "rotating_leaders",
]


def _generate_table(f: int, p: int):
    rows = table1_rows(f=f, p=p)
    return rows


def test_table1_f6_p1(benchmark):
    rows = run_once(benchmark, _generate_table, 6, 1, record_name="table1_f6_p1")
    print()
    print("Table 1 with f=6, p=1 (n=19 for Banyan):")
    print(format_table(_HEADERS, [[row[h] for h in _HEADERS] for row in rows]))
    banyan = next(row for row in rows if row["protocol"] == "Banyan")
    assert banyan["finalization_latency"] == "2δ"
    assert banyan["replicas"] == "19"
    assert banyan_beats_or_matches_all(f=6, p=1)


def test_table1_f4_p4(benchmark):
    rows = run_once(benchmark, _generate_table, 4, 4, record_name="table1_f4_p4")
    print()
    print("Table 1 with f=4, p=4 (n=19 for Banyan):")
    print(format_table(_HEADERS, [[row[h] for h in _HEADERS] for row in rows]))
    banyan = next(row for row in rows if row["protocol"] == "Banyan")
    icc = next(row for row in rows if row["protocol"] == "ICC / Simplex")
    assert banyan["replicas"] == icc["replicas"] == "19" or banyan["replicas"] == "19"
