"""Figure 6a: throughput vs. proposal latency, n=19 over 4 global datacenters.

Paper's headline numbers at 400 KB blocks: ICC averages 239 ms, Banyan p=1
216 ms (~10% better), Banyan p=4 179 ms (~25% better).  The simulated WAN
does not reproduce the absolute milliseconds, but the benchmark asserts the
*shape*: Banyan p=1 beats ICC, Banyan p=4 beats Banyan p=1, and both beat
HotStuff and Streamlet.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, print_figure, run_once
from repro.eval.scenarios import figure_6a

PAYLOAD_SIZES = (100_000, 400_000)
DURATION = 15.0


def test_figure_6a(benchmark):
    figure = run_once(benchmark, figure_6a, payload_sizes=PAYLOAD_SIZES, duration=DURATION)
    print_figure(figure)

    at_400k = 400_000
    icc = figure.mean_latency("icc", at_400k)
    banyan_p1 = figure.mean_latency("banyan (p=1)", at_400k)
    banyan_p4 = figure.mean_latency("banyan (p=4)", at_400k)
    hotstuff = figure.mean_latency("hotstuff", at_400k)
    streamlet = figure.mean_latency("streamlet", at_400k)

    paper_comparison([
        {"series": "ICC @400KB", "paper_ms": 239, "measured_ms": round(icc * 1000, 1)},
        {"series": "Banyan p=1 @400KB", "paper_ms": 216, "measured_ms": round(banyan_p1 * 1000, 1)},
        {"series": "Banyan p=4 @400KB", "paper_ms": 179, "measured_ms": round(banyan_p4 * 1000, 1)},
        {"series": "Banyan p=1 vs ICC improvement %", "paper_ms": 9.6,
         "measured_ms": round(figure.improvement_over("icc", "banyan (p=1)", at_400k), 1)},
        {"series": "Banyan p=4 vs ICC improvement %", "paper_ms": 25.1,
         "measured_ms": round(figure.improvement_over("icc", "banyan (p=4)", at_400k), 1)},
    ])

    # Shape assertions (who wins, in which order).
    assert banyan_p1 < icc, "Banyan p=1 must beat ICC"
    assert banyan_p4 < banyan_p1, "Banyan p=4 must beat Banyan p=1"
    assert icc < hotstuff, "ICC must beat HotStuff"
    assert icc < streamlet, "ICC must beat Streamlet"
    # The improvement is meaningful but below the theoretical 33% maximum.
    assert 2.0 < figure.improvement_over("icc", "banyan (p=1)", at_400k) < 33.0
    assert 10.0 < figure.improvement_over("icc", "banyan (p=4)", at_400k) < 33.0
