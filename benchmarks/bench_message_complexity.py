"""Ablation: message and byte complexity per committed block.

Section 2 of the paper ("Other aspects") discusses message complexity and
notes that message complexity and performance do not always go hand in hand.
This bench quantifies the trade-off in the reproduction: Banyan's fast path
adds only a constant per-round overhead over ICC (fast votes ride along with
notarization votes, unlock proofs with notarizations), while HotStuff's
leader-centric communication uses far fewer messages but pays for it in
latency.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, run_once
from repro.net.latency import ConstantLatency
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation

PROTOCOLS = ("banyan", "icc", "hotstuff", "streamlet")
DURATION = 10.0
N = 7


def _run_all():
    results = {}
    for name in PROTOCOLS:
        params = ProtocolParams(n=N, f=2, p=1, rank_delay=0.4, payload_size=10_000)
        replicas = create_replicas(name, params)
        sim = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=1))
        sim.run(until=DURATION)
        commits = len(sim.commits_for(0))
        results[name] = {
            "protocol": name,
            "committed_blocks": commits,
            "messages_per_block": round(sim.messages_sent / max(1, commits), 1),
            "kilobytes_per_block": round(sim.bytes_sent / max(1, commits) / 1000, 1),
            "total_messages": sim.messages_sent,
        }
    return results


def test_message_complexity(benchmark):
    results = run_once(benchmark, _run_all, record_name="message_complexity")
    paper_comparison(list(results.values()))

    banyan, icc = results["banyan"], results["icc"]
    hotstuff = results["hotstuff"]

    # Every protocol makes progress.
    for row in results.values():
        assert row["committed_blocks"] > 0

    # Banyan's fast path piggybacks on existing ICC messages: the per-block
    # message overhead over ICC stays small (well under 2x, typically ~1x).
    assert banyan["messages_per_block"] <= icc["messages_per_block"] * 1.5

    # HotStuff's leader-centric pattern uses fewer messages per block than the
    # all-to-all protocols — the complexity/latency trade-off of Section 2.
    assert hotstuff["messages_per_block"] < icc["messages_per_block"]
