"""Aggregate-signature verification benchmark: the memoized fast path.

Protocols re-verify the same certificate on every receipt (ICC's
``_handle_certificate`` runs once per broadcast copy), so repeated
verification of one ``(message, signer set)`` pair is the hot crypto
operation.  This bench measures three regimes over a quorum-sized
aggregate:

* **cold** — distinct messages, every share HMAC recomputed (the memo
  never hits);
* **repeat** — one certificate verified many times (after the first call,
  each check is a digest plus a memo lookup);
* **batch** — :func:`repro.crypto.aggregate.verify_many` over the repeats
  (the message digest itself is also shared).

Each run emits one ``BENCH_bench_crypto.json`` record with verifications/s
per regime, so the crypto fast path's trajectory is tracked across commits
alongside the figure benches.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

from benchmarks.conftest import emit_bench_record, paper_comparison

from repro.crypto.aggregate import AggregateSignature, verify_many
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign

#: Replica count and quorum size of the benchmarked certificate (the
#: paper's n=19 with Banyan's ``⌈(n+f+1)/2⌉`` = 13 quorum).
N_REPLICAS = 19
QUORUM = 13

#: Verifications per regime.
COLD_MESSAGES = 200
REPEATS = 5_000


def _aggregate_for(message, registry: KeyRegistry) -> AggregateSignature:
    """A quorum-sized aggregate over ``message``."""
    return AggregateSignature.from_shares(
        [sign(message, signer, registry) for signer in range(QUORUM)]
    )


def _run_regimes() -> list:
    """Time the three verification regimes; return their throughput rows."""
    registry = KeyRegistry.for_replicas(N_REPLICAS)
    rows = []

    # Cold: distinct messages, so every verification does the share HMACs.
    messages = [("notarization", round_k, b"block") for round_k in range(COLD_MESSAGES)]
    aggregates = [_aggregate_for(message, registry) for message in messages]
    registry.aggregate_verify_cache().clear()
    start = time.perf_counter()
    assert all(aggregate.verify(message, registry)
               for message, aggregate in zip(messages, aggregates))
    cold_wall = time.perf_counter() - start
    rows.append({"regime": "cold", "verifications": COLD_MESSAGES,
                 "wall_s": round(cold_wall, 6),
                 "verifications_per_s": round(COLD_MESSAGES / cold_wall, 1)})

    # Repeat: one certificate checked on every (simulated) receipt.
    message = ("notarization", 1, b"block")
    aggregate = _aggregate_for(message, registry)
    aggregate.verify(message, registry)  # warm the memo
    start = time.perf_counter()
    for _ in range(REPEATS):
        assert aggregate.verify(message, registry)
    repeat_wall = time.perf_counter() - start
    rows.append({"regime": "repeat", "verifications": REPEATS,
                 "wall_s": round(repeat_wall, 6),
                 "verifications_per_s": round(REPEATS / repeat_wall, 1)})

    # Batch: the same repeats through verify_many (shared digesting too).
    pairs = [(message, aggregate)] * REPEATS
    start = time.perf_counter()
    assert all(verify_many(pairs, registry))
    batch_wall = time.perf_counter() - start
    rows.append({"regime": "batch", "verifications": REPEATS,
                 "wall_s": round(batch_wall, 6),
                 "verifications_per_s": round(REPEATS / batch_wall, 1)})
    return rows


def test_aggregate_verification_throughput(benchmark) -> None:
    """Verifications/s of cold vs. memoized vs. batched aggregate checks."""
    rows = benchmark.pedantic(_run_regimes, rounds=1, iterations=1)
    total_wall = sum(row["wall_s"] for row in rows)
    emit_bench_record(
        "bench_crypto", total_wall,
        SimpleNamespace(figure="bench-crypto", replications=1,
                        series={"aggregate_verify": rows}),
    )
    paper_comparison(rows)
    by_regime = {row["regime"]: row for row in rows}
    # The memo must actually pay: repeated checks beat cold per-share work.
    assert (by_regime["repeat"]["verifications_per_s"]
            > by_regime["cold"]["verifications_per_s"])
