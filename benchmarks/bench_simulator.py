"""Event-loop throughput benchmark: raw events/sec of the simulator core.

A deliberately protocol-free workload stresses the event queue: every replica
broadcasts a fixed-size message on a periodic timer, so the loop processes a
steady broadcast-heavy mix of ``n**2 / tick`` message deliveries plus
``n / tick`` timer firings per simulated second, with no protocol logic in
the way.  The numbers isolate the cost of the queue itself (push, pop,
ordering, dispatch) — the part the tuple-event refactor targets.

Each run emits one ``BENCH_bench_simulator.json`` record with events/sec per
replica count, so the loop's performance trajectory is tracked across
commits alongside the figure benches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from types import SimpleNamespace

from benchmarks.conftest import emit_bench_record, paper_comparison

from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.protocols.base import Protocol, ProtocolParams
from repro.runtime.simulator import NetworkConfig, Simulation

#: Replica counts of the broadcast-heavy runs (the 64-replica case is the
#: acceptance case for the tuple-queue refactor's speedup).
REPLICA_COUNTS = (4, 16, 64)

#: Broadcast period per replica, in simulated seconds.
TICK = 0.05

#: Simulated horizon per run; chosen so the n=64 case processes ~1M events.
DURATION = {4: 60.0, 16: 15.0, 64: 4.0}


@dataclass(frozen=True)
class _Blast:
    """Fixed-size benchmark message."""

    wire_size: int = 1024


class FloodProtocol(Protocol):
    """Every replica broadcasts on a periodic timer; receipts are counted."""

    name = "flood"

    def __init__(self, replica_id: int, params: ProtocolParams) -> None:
        super().__init__(replica_id, params)
        self.timer_fires = 0

    def on_start(self, ctx) -> None:
        ctx.set_timer(TICK, "tick")

    def on_message(self, ctx, sender, message) -> None:
        pass

    def on_timer(self, ctx, timer) -> None:
        self.timer_fires += 1
        ctx.broadcast(_Blast())
        ctx.set_timer(TICK, "tick")


def _run_flood(n: int) -> dict:
    """Run one broadcast-heavy simulation; return its throughput row."""
    params = ProtocolParams(n=n, f=0, p=0)
    protocols = {i: FloodProtocol(i, params) for i in range(n)}
    network = NetworkConfig(latency=ConstantLatency(0.02), faults=FaultPlan.none(),
                            seed=0)
    simulation = Simulation(protocols, network)
    duration = DURATION[n]
    start = time.perf_counter()
    simulation.run(until=duration)
    wall = time.perf_counter() - start
    events = simulation.messages_delivered + sum(
        protocol.timer_fires for protocol in protocols.values()
    )
    return {
        "n": n,
        "sim_seconds": duration,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall, 1),
    }


def test_event_loop_throughput(benchmark) -> None:
    """Events/sec of the simulator loop on broadcast-heavy runs (n=4/16/64)."""
    rows = benchmark.pedantic(
        lambda: [_run_flood(n) for n in REPLICA_COUNTS],
        rounds=1, iterations=1,
    )
    total_wall = sum(row["wall_s"] for row in rows)
    emit_bench_record(
        "bench_simulator", total_wall,
        SimpleNamespace(figure="bench-simulator", replications=1,
                        series={"event_loop": rows}),
    )
    paper_comparison(rows)
    assert all(row["events"] > 0 for row in rows)
