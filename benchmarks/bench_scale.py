"""Scale benchmark: event-loop throughput and fluid workloads up to n=256.

Three measurements gate the scaling work:

* **Flood events/sec at n=64/128/256** — the protocol-free broadcast-heavy
  mix of :mod:`benchmarks.bench_simulator`, extended to datacenter-scale
  replica counts and run under two latency models: the zero-jitter
  constant model (event-queue-bound) and the jittered ``wan-matrix``
  model (delay-computation-bound, the case the batched delay tables
  target).  Every cell runs under both event-scheduler backends (the
  reference heap and the calendar queue), so the record gates the
  calendar queue's jittered-hot-path win and its overhead elsewhere.
  This isolates the event queue plus transport.
* **Broadcast-delay copies/sec at n=64/256, per latency model** — a
  transport-only microbench of ``broadcast_times`` across all five
  shipped latency models, gating the row pipeline in isolation.
* **Dispatch sweep vs forced-scalar** — every registered consensus
  protocol plus a hub unicast-storm case, each run once with fused
  same-target sweeps enabled and once with
  :attr:`Simulation.force_scalar_dispatch`.  Executions are byte-identical
  (``tests/test_dispatch_batch.py``); the pairs gate the fused loop's
  overhead on mbatch-dominant protocol traffic and its win on the
  sweep-dominant storm shape.
* **Exact vs fluid at n=64** — the same Banyan workload run once with the
  per-transaction client model and once with the aggregated-flow model,
  recording wall-clock and goodput side by side.  Fluid must be cheaper to
  run while agreeing on the measured goodput (the cross-validation *bounds*
  are pinned by ``tests/test_fluid.py``; this bench records the numbers).
* **The n=256 gate** — a million modeled clients over the measured WAN RTT
  matrix at n=256 must complete in under 60 s of wall-clock time.

One ``BENCH_bench_scale.json`` record is emitted per run;
``benchmarks/check_trend.py`` compares a fresh record against the committed
baseline and fails CI on a >20% events/sec regression.

Set ``BANYAN_SCALE_SMOKE=1`` to run the reduced CI variant (smaller replica
counts and shorter horizons, recorded as ``BENCH_bench_scale_smoke.json``
so smoke runs are compared against a smoke baseline).
"""

from __future__ import annotations

import gc
import os
import random
import time
from dataclasses import dataclass
from types import SimpleNamespace

from benchmarks.bench_simulator import TICK, FloodProtocol
from benchmarks.conftest import emit_bench_record, paper_comparison

from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultPlan
from repro.net.latency import (
    ConstantLatency,
    GeoLatency,
    MatrixLatency,
    UniformLatency,
    WanMatrixLatency,
)
from repro.net.topology import worldwide_datacenters
from repro.net.transport import DirectTransport
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.workload.spec import WorkloadSpec

#: Environment toggle for the reduced CI variant.
SMOKE_ENV = "BANYAN_SCALE_SMOKE"

#: Wall-clock budget (seconds) for the n=256 million-user fluid run.
GATE_WALL_S = 60.0


def _smoke() -> bool:
    return bool(os.environ.get(SMOKE_ENV))


def _flood_counts() -> tuple:
    return (16, 32, 64) if _smoke() else (64, 128, 256)


def _flood_duration(n: int) -> float:
    # Sized so every run processes >=10^5 deliveries but the n=256 case
    # stays around one million events (n**2 / TICK per simulated second).
    if _smoke():
        return 0.5
    return {64: 4.0, 128: 1.0, 256: 0.25}[n]


#: Latency models the flood runs under: the zero-jitter constant model
#: (the event-queue-bound extreme) and the jittered measured-RTT matrix
#: (the delay-computation-bound extreme the row batching targets).
FLOOD_MODELS = ("const", "wan-matrix")

#: Event-scheduler backends every flood cell runs under.  Executions are
#: byte-identical between the two (``tests/test_scheduler.py``); the row
#: pairs gate the calendar queue's win on the jittered hot path and its
#: overhead on the queue-bound constant-latency shape.
FLOOD_SCHEDULERS = ("heap", "calendar")


def _flood_network(n: int, model: str, scheduler: str) -> NetworkConfig:
    if model == "const":
        return NetworkConfig(latency=ConstantLatency(0.02),
                             faults=FaultPlan.none(), seed=0,
                             scheduler=scheduler)
    topology = worldwide_datacenters(n)
    return NetworkConfig(latency=WanMatrixLatency(topology),
                         bandwidth=BandwidthModel(topology=topology),
                         faults=FaultPlan.none(), seed=0,
                         scheduler=scheduler)


def _run_flood(n: int, model: str = "const",
               scheduler: str = "heap") -> dict:
    """One broadcast-heavy protocol-free run; returns its throughput row."""
    params = ProtocolParams(n=n, f=0, p=0)
    protocols = {i: FloodProtocol(i, params) for i in range(n)}
    simulation = Simulation(protocols, _flood_network(n, model, scheduler))
    duration = _flood_duration(n)
    # Collect before timing: generational GC scans over the previous
    # cases' heaps otherwise land inside the measured region (worth
    # ~15% on the n=256 row).
    gc.collect()
    start = time.perf_counter()
    simulation.run(until=duration)
    wall = time.perf_counter() - start
    events = simulation.messages_delivered + sum(
        protocol.timer_fires for protocol in protocols.values()
    )
    return {
        "n": n,
        "model": model,
        "scheduler": scheduler,
        "sim_seconds": duration,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall, 1),
    }


#: Shipped latency models covered by the broadcast-delay microbench.
DELAY_MODELS = ("const", "uniform", "matrix", "geo", "wan-matrix")


def _delay_model(name: str, n: int):
    """Build one shipped latency model (plus its topology, when any)."""
    if name == "const":
        return ConstantLatency(0.02), None
    if name == "uniform":
        return UniformLatency(0.01, 0.05), None
    if name == "matrix":
        delays = {
            (a, b): 0.01 + ((a * 31 + b * 7) % 50) / 1000.0
            for a in range(n)
            for b in range(a + 1, n)
        }
        return MatrixLatency(delays, jitter=0.05), None
    topology = worldwide_datacenters(n)
    if name == "geo":
        return GeoLatency(topology), topology
    return WanMatrixLatency(topology), topology


def _delay_counts() -> tuple:
    return (16, 64) if _smoke() else (64, 256)


def _run_broadcast_delay(n: int, model: str) -> dict:
    """Microbench one model's ``broadcast_times`` copies/sec at size n.

    Protocol-free and queue-free: a DirectTransport is driven directly, so
    the row only measures the batched delay-table pipeline (transfer rows,
    nominal rows, jitter application) — the piece the flood profile showed
    dominating at n=256 before batching.
    """
    latency, topology = _delay_model(model, n)
    transport = DirectTransport(latency, BandwidthModel(topology=topology),
                                FaultPlan.none())
    rng = random.Random(0)
    receivers = tuple(range(n))
    message = SimpleNamespace(wire_size=1024)
    # The smoke budget still has to produce a >=50 ms timed region at
    # n=16, or the row is bimodal under the 20% CI trend gate.
    target_copies = 200_000 if _smoke() else 400_000
    rounds = max(1, target_copies // n)
    transport.broadcast_times(0, receivers, message, 0.0, rng)  # warm caches
    now = 0.0
    gc.collect()
    start = time.perf_counter()
    for i in range(rounds):
        transport.broadcast_times(i % n, receivers, message, now, rng)
        now += 0.001
    wall = time.perf_counter() - start
    return {
        "n": n,
        "model": model,
        "broadcasts": rounds,
        "wall_s": round(wall, 4),
        "events_per_s": round(rounds * n / wall, 1),
    }


#: Protocols covered by the dispatch microbench (sweep vs forced-scalar).
DISPATCH_PROTOCOLS = ("banyan", "icc", "hotstuff", "streamlet")


class _HubStormProtocol(Protocol):
    """Hub-and-spoke unicast storm: every spoke unicasts to replica 0 on a
    shared tick, so the hub receives one contiguous same-instant run per
    tick — the traffic shape the fused ``on_messages`` sweep targets."""

    name = "hub-storm"

    def __init__(self, replica_id: int, params: ProtocolParams) -> None:
        super().__init__(replica_id, params)
        self.received = 0

    def on_start(self, ctx) -> None:
        if self.replica_id != 0:
            ctx.set_timer(TICK, "tick")

    def on_message(self, ctx, sender, message) -> None:
        self.received += 1

    def on_messages(self, ctx, batch) -> None:
        # Real batch hook (same state transition as the scalar handler):
        # one call per fused sweep is the handler-side saving the fused
        # dispatch exists to expose.
        self.received += len(batch)

    def on_timer(self, ctx, timer) -> None:
        ctx.send(0, _Blast())
        ctx.set_timer(TICK, "tick")


@dataclass(frozen=True)
class _Blast:
    """Fixed-size storm message."""

    wire_size: int = 256


def _dispatch_events() -> int:
    """Fixed per-run event budget: every dispatch row measures the same
    amount of work, so ``events_per_s`` is comparable across modes."""
    return 25_000 if _smoke() else 150_000


def _dispatch_cases() -> tuple:
    """(case label, sim builder) pairs for the dispatch microbench."""
    n = 16 if _smoke() else 32

    def _protocol_sim(protocol: str) -> Simulation:
        params = _scale_params(n)
        replicas = create_replicas(protocol, params)
        network = NetworkConfig(latency=ConstantLatency(0.02),
                                faults=FaultPlan.none(), seed=0)
        return Simulation(replicas, network)

    def _storm_sim() -> Simulation:
        storm_n = 64 if _smoke() else 128
        params = ProtocolParams(n=storm_n, f=0, p=0)
        replicas = {i: _HubStormProtocol(i, params) for i in range(storm_n)}
        network = NetworkConfig(latency=ConstantLatency(0.02),
                                faults=FaultPlan.none(), seed=0)
        return Simulation(replicas, network)

    cases = [(protocol, lambda p=protocol: _protocol_sim(p))
             for protocol in DISPATCH_PROTOCOLS]
    cases.append(("storm", _storm_sim))
    return tuple(cases)


def _run_dispatch(case: str, build, scalar: bool) -> dict:
    """One dispatch-microbench run: fused sweeps vs the forced-scalar loop.

    Executions are byte-identical between the two modes (pinned by
    ``tests/test_dispatch_batch.py``); the rows compare their wall-clock
    over a fixed event budget.  The consensus-protocol cases are
    mbatch-dominant (sweeps barely fire under zero jitter), so their pairs
    gate loop overhead; the hub unicast-storm case is sweep-dominant and
    gates the fused-path win.
    """
    simulation = build()
    simulation.force_scalar_dispatch = scalar
    budget = _dispatch_events()
    gc.collect()
    start = time.perf_counter()
    simulation.run(until=float("inf"), max_events=budget)
    wall = time.perf_counter() - start
    return {
        "n": len(simulation.replica_ids),
        "model": case,
        "mode": "scalar" if scalar else "sweep",
        "sim_seconds": round(simulation.now, 4),
        # The budgeted run processes exactly ``budget`` events; traffic
        # never dries up in any case, so the budget is the work done.
        "events": budget,
        "delivered": simulation.messages_delivered,
        "sweeps": simulation.dispatch_counts()["sweeps"],
        "wall_s": round(wall, 4),
        "events_per_s": round(budget / wall, 1),
    }


def _scale_params(n: int) -> ProtocolParams:
    # f = p = (n - 1) // 5 keeps the fast path available (n >= 3f + 2p + 1)
    # at every benchmarked size.
    bound = (n - 1) // 5
    return ProtocolParams(n=n, f=bound, p=bound)


def _workload_config(n: int, fluid: bool, duration: float,
                     num_clients: int, rate: float) -> ExperimentConfig:
    return ExperimentConfig(
        protocol="banyan",
        params=_scale_params(n),
        workload=WorkloadSpec(
            mode="open", arrival="poisson", rate=rate,
            num_clients=num_clients, tx_size=256,
            sample_interval=1.0, seed=0, fluid=fluid,
        ),
        duration=duration,
        warmup=min(1.0, duration / 4),
        seed=1,
        latency_model="wan-matrix",
    )


def _run_workload(n: int, fluid: bool, duration: float,
                  num_clients: int, rate: float) -> dict:
    config = _workload_config(n, fluid, duration, num_clients, rate)
    gc.collect()
    start = time.perf_counter()
    result = run_experiment(config)
    wall = time.perf_counter() - start
    workload = result.workload
    events = result.messages_sent
    return {
        "n": n,
        "mode": "fluid" if fluid else "exact",
        "clients": num_clients,
        "sim_seconds": duration,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "submitted_tx": workload.submitted,
        "committed_tx": workload.committed,
        "goodput_tx_per_s": round(workload.goodput_tx_per_s, 1),
        "tx_p50_ms": round(workload.p50_latency * 1000, 1),
    }


def _best_of(measure, reps: int = 3) -> dict:
    """Repeat one timed measurement, keep the fastest-wall row.

    Single-shot noise — a GC pause the pre-collect missed, a frequency
    dip, scheduler preemption — only ever *slows* a run down, so the
    fastest of a few repeats is the least-contaminated sample.  This is
    what lets ``check_trend.py`` gate the smoke record at a 20% budget
    instead of the former 50%.
    """
    best = None
    for _ in range(reps):
        row = measure()
        if best is None or row["wall_s"] < best["wall_s"]:
            best = row
    return best


def test_scale_throughput(benchmark) -> None:
    """Flood events/sec, exact-vs-fluid wall-clock, and the n=256 gate."""
    smoke = _smoke()

    def _measure() -> dict:
        flood = [_best_of(lambda n=n, m=model, s=sched: _run_flood(n, m, s))
                 for model in FLOOD_MODELS
                 for sched in FLOOD_SCHEDULERS
                 for n in _flood_counts()]
        delay = [_best_of(lambda n=n, m=model: _run_broadcast_delay(n, m))
                 for model in DELAY_MODELS for n in _delay_counts()]
        dispatch = [_best_of(lambda c=case, b=build, s=scalar:
                             _run_dispatch(c, b, s))
                    for case, build in _dispatch_cases()
                    for scalar in (False, True)]
        # Exact vs fluid on one overlapping mid-size config: the exact
        # model pays one event per transaction, the fluid model one per
        # (replica, tick) — same protocol traffic, same offered load.
        compare_n = 16 if smoke else 64
        compare = [
            _best_of(lambda f=fluid: _run_workload(
                compare_n, f, duration=2.0,
                num_clients=2_000, rate=2_000.0))
            for fluid in (False, True)
        ]
        # The acceptance gate: a million modeled users at n=256 (64 in the
        # smoke variant) must complete within the wall-clock budget.
        gate_n = 64 if smoke else 256
        gate_duration = 1.0 if smoke else 0.75
        # The full-size gate run costs ~20 s of wall a shot; it gates a
        # generous 60 s budget, so one sample is enough there.
        gate = _best_of(lambda: _run_workload(
            gate_n, fluid=True, duration=gate_duration,
            num_clients=1_000_000, rate=20_000.0), reps=3 if smoke else 1)
        gate["under_60s"] = gate["wall_s"] < GATE_WALL_S
        return {"flood": flood, "broadcast_delay": delay,
                "dispatch": dispatch, "exact_vs_fluid": compare,
                "gate": [gate]}

    series = benchmark.pedantic(_measure, rounds=1, iterations=1)
    total_wall = sum(row["wall_s"] for rows in series.values() for row in rows)
    name = "bench_scale_smoke" if smoke else "bench_scale"
    emit_bench_record(
        name, total_wall,
        SimpleNamespace(figure=name.replace("_", "-"), replications=1,
                        series=series),
    )
    paper_comparison(series["flood"])
    paper_comparison(series["broadcast_delay"])
    paper_comparison(series["dispatch"])
    paper_comparison(series["exact_vs_fluid"])
    paper_comparison(series["gate"])
    assert all(row["events"] > 0 for row in series["flood"])
    assert all(row["events_per_s"] > 0 for row in series["broadcast_delay"])
    # Sweep/scalar pairs must process identical event streams, the storm
    # case must actually fuse, and forced-scalar runs never sweep.
    dispatch_rows = {(row["model"], row["mode"]): row
                     for row in series["dispatch"]}
    for case, _ in _dispatch_cases():
        sweep_row = dispatch_rows[(case, "sweep")]
        scalar_row = dispatch_rows[(case, "scalar")]
        assert sweep_row["delivered"] == scalar_row["delivered"]
        assert sweep_row["sim_seconds"] == scalar_row["sim_seconds"]
        assert scalar_row["sweeps"] == 0
    assert dispatch_rows[("storm", "sweep")]["sweeps"] > 0
    gate_row = series["gate"][0]
    assert gate_row["committed_tx"] > 0, "gate run committed nothing"
    if not smoke:
        assert gate_row["under_60s"], (
            f"n=256 million-user fluid run took {gate_row['wall_s']:.1f}s "
            f"(budget {GATE_WALL_S:.0f}s)"
        )
