"""Wire-format benchmark: encode/decode throughput of cluster traffic.

Every message a real cluster moves crosses :mod:`repro.cluster.wire` twice
(encode at the sender, decode at the receiver), and the in-memory asyncio
runtime round-trips through it too — so serialization throughput bounds
the whole non-simulated execution mode.  This bench measures messages/s
and MB/s for the three protocol message shapes at representative sizes:

* **vote** — a quorum-sized :class:`VoteMessage` (the chattiest shape);
* **certificate** — a :class:`CertificateMessage` carrying a notarization
  with a quorum aggregate (the widest certified object);
* **proposal** — a :class:`BlockProposal` with a 100 kB payload (the
  byte-heavy shape, dominated by memcpy).

Each run emits one ``BENCH_bench_wire.json`` record so the serialization
path's trajectory is tracked across commits alongside the other benches.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

from benchmarks.conftest import emit_bench_record, paper_comparison

from repro.cluster.wire import decode_envelope, encode_envelope
from repro.crypto.aggregate import AggregateSignature
from repro.crypto.signatures import Signature
from repro.types.blocks import Block
from repro.types.certificates import Notarization
from repro.types.messages import BlockProposal, CertificateMessage, VoteMessage
from repro.types.votes import VoteKind, make_vote

#: Replica count and quorum of the benchmarked messages (the paper's n=19
#: with Banyan's ``⌈(n+f+1)/2⌉`` = 13 quorum).
N_REPLICAS = 19
QUORUM = 13

#: Proposal payload bytes (the paper's subnet workload scale).
PROPOSAL_PAYLOAD = 100_000

#: Encode/decode iterations per shape.
ITERATIONS = 2_000

_BLOCK_ID = "a3f1" * 16


def _signature(signer: int) -> Signature:
    return Signature(signer=signer, tag=b"t" * 32, message_digest=b"d" * 32)


def _vote_message() -> VoteMessage:
    return VoteMessage(
        votes=tuple(
            make_vote(VoteKind.NOTARIZATION, 12, _BLOCK_ID, voter,
                      _signature(voter))
            for voter in range(QUORUM)
        ),
        sender=3,
    )


def _certificate_message() -> CertificateMessage:
    aggregate = AggregateSignature(shares=tuple(
        (signer, _signature(signer)) for signer in range(QUORUM)
    ))
    return CertificateMessage(
        certificate=Notarization(round=12, block_id=_BLOCK_ID,
                                 voters=frozenset(range(QUORUM)),
                                 aggregate=aggregate),
        sender=3,
    )


def _proposal_message() -> BlockProposal:
    return BlockProposal(
        block=Block(round=12, proposer=3, rank=0, parent_id=_BLOCK_ID,
                    payload=b"\xab" * PROPOSAL_PAYLOAD),
        parent_notarization=Notarization(round=11, block_id=_BLOCK_ID,
                                         voters=frozenset(range(QUORUM))),
    )


def _run_shapes() -> list:
    """Time encode and decode per message shape; return throughput rows."""
    shapes = [
        ("vote", _vote_message()),
        ("certificate", _certificate_message()),
        ("proposal", _proposal_message()),
    ]
    rows = []
    for name, message in shapes:
        envelope = encode_envelope(3, message)
        assert decode_envelope(envelope) == (3, message)  # lossless first

        start = time.perf_counter()
        for _ in range(ITERATIONS):
            encode_envelope(3, message)
        encode_wall = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(ITERATIONS):
            decode_envelope(envelope)
        decode_wall = time.perf_counter() - start

        mb = len(envelope) * ITERATIONS / 1e6
        rows.append({
            "shape": name,
            "bytes_per_msg": len(envelope),
            "encode_msgs_per_s": round(ITERATIONS / encode_wall, 1),
            "decode_msgs_per_s": round(ITERATIONS / decode_wall, 1),
            "encode_mb_per_s": round(mb / encode_wall, 2),
            "decode_mb_per_s": round(mb / decode_wall, 2),
            "wall_s": round(encode_wall + decode_wall, 6),
        })
    return rows


def test_wire_encode_decode_throughput(benchmark) -> None:
    """Messages/s and MB/s of the cluster wire format per message shape."""
    rows = benchmark.pedantic(_run_shapes, rounds=1, iterations=1)
    total_wall = sum(row["wall_s"] for row in rows)
    emit_bench_record(
        "bench_wire", total_wall,
        SimpleNamespace(figure="bench-wire", replications=1,
                        series={"wire": rows}),
    )
    paper_comparison(rows)
    by_shape = {row["shape"]: row for row in rows}
    # Sanity floors: consensus-control shapes must stay comfortably above
    # the block rate a local cluster sustains (hundreds of blocks/s, each
    # fanning out ~n² votes), and byte-heavy proposals must move payload
    # bytes at memcpy-like rates, not per-byte-varint rates.
    assert by_shape["vote"]["encode_msgs_per_s"] > 2_000
    assert by_shape["vote"]["decode_msgs_per_s"] > 2_000
    assert by_shape["proposal"]["encode_mb_per_s"] > 50
