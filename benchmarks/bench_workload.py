"""Client-workload benchmarks: saturation sweep and flash crowd.

These go beyond the paper's fixed-payload methodology: an open-loop Poisson
client population offers load in transactions per second, and the measured
quantity is the *client-observed* submit→commit latency and goodput rather
than proposal finalization time.  The saturation sweep shows the capacity
knee (goodput tracks offered load until the block budget saturates, then
latency departs); the flash crowd shows the mempools absorbing a demand
spike and draining afterwards.
"""

from __future__ import annotations

from benchmarks.conftest import print_figure, run_once
from repro.analysis.report import render_timeseries
from repro.eval.scenarios import flash_crowd, saturation_sweep

RATES = (15, 60, 240)
DURATION = 25.0


def test_saturation_sweep(benchmark):
    figure = run_once(benchmark, saturation_sweep, rates=RATES,
                      duration=DURATION, max_block_bytes=16_384)
    print_figure(figure)

    (_, rows), = figure.series.items()
    by_rate = {row["offered_tx_per_s"]: row for row in rows}
    # Below saturation the system absorbs the offered load.
    assert by_rate[15]["goodput_tx_per_s"] > 10
    assert by_rate[60]["goodput_tx_per_s"] > by_rate[15]["goodput_tx_per_s"]
    # Past the knee, the backlog shows up as pending work and higher tail
    # latency at the clients.
    assert by_rate[240]["pending_tx"] > by_rate[15]["pending_tx"]
    assert by_rate[240]["tx_p95_ms"] > by_rate[15]["tx_p95_ms"]


def test_flash_crowd(benchmark):
    figure = run_once(benchmark, flash_crowd, base_rate=15.0, burst_rate=250.0,
                      burst_start=8.0, burst_duration=4.0, duration=40.0)
    print_figure(figure)

    workload = figure.results[0].workload
    samples = workload.occupancy
    print()
    print(render_timeseries(
        "mempool occupancy over time",
        [sample.time for sample in samples],
        [float(sample.transactions) for sample in samples],
        unit=" tx",
    ))

    pre_burst = max((s.transactions for s in samples if s.time < 8.0), default=0)
    assert workload.peak_mempool_depth > max(pre_burst, 1) * 4
    assert samples[-1].transactions < workload.peak_mempool_depth / 3
    assert workload.committed > 0
