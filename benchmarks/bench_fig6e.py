"""Figure 6e: n=19 replicas spread across a worldwide network, 1 MB payload.

Paper's headline numbers: ICC averages 384 ms; Banyan p=1 reduces that by
5.8% to 362 ms "for free"; Banyan p=4 drops 16% to 324 ms.  In the worldwide
topology the fast path must hear from almost every continent, so the p=1
improvement is smaller than in the 4-datacenter experiments — the benchmark
asserts exactly that ordering.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, print_figure, run_once
from repro.eval.scenarios import figure_6a, figure_6e

PAYLOAD = 1_000_000
DURATION = 15.0


def test_figure_6e(benchmark):
    figure = run_once(benchmark, figure_6e, payload_sizes=(PAYLOAD,), duration=DURATION)
    print_figure(figure)

    icc = figure.mean_latency("icc", PAYLOAD)
    banyan_p1 = figure.mean_latency("banyan (p=1)", PAYLOAD)
    banyan_p4 = figure.mean_latency("banyan (p=4)", PAYLOAD)
    improvement_p1 = figure.improvement_over("icc", "banyan (p=1)", PAYLOAD)
    improvement_p4 = figure.improvement_over("icc", "banyan (p=4)", PAYLOAD)

    paper_comparison([
        {"series": "ICC @1MB", "paper_ms": 384, "measured_ms": round(icc * 1000, 1)},
        {"series": "Banyan p=1 @1MB", "paper_ms": 362, "measured_ms": round(banyan_p1 * 1000, 1)},
        {"series": "Banyan p=4 @1MB", "paper_ms": 324, "measured_ms": round(banyan_p4 * 1000, 1)},
        {"series": "Banyan p=1 vs ICC improvement %", "paper_ms": 5.8,
         "measured_ms": round(improvement_p1, 1)},
        {"series": "Banyan p=4 vs ICC improvement %", "paper_ms": 16.0,
         "measured_ms": round(improvement_p4, 1)},
    ])

    # Shape: p=4 > p=1 > 0 improvement; both protocols beat the baselines.
    assert banyan_p1 <= icc
    assert banyan_p4 < banyan_p1
    assert improvement_p4 > improvement_p1
    assert figure.mean_latency("hotstuff", PAYLOAD) > icc
    assert figure.mean_latency("streamlet", PAYLOAD) > icc
