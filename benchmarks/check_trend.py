"""Compare a fresh benchmark record against a committed baseline.

Usage::

    python benchmarks/check_trend.py \
        --baseline benchmarks/results/BENCH_bench_scale_smoke.json \
        --current fresh-bench/BENCH_bench_scale_smoke.json

Rows are matched by ``(series name, n, mode, model, scheduler)`` across the
two records' ``series`` maps; any matched row whose ``events_per_s`` falls
more than the tolerance below the baseline fails the check (exit code 1).
Rows present on one side only are reported but do not fail — adding a
replica count, workload mode, latency model, or scheduler backend to the
bench must not break CI retroactively.

The default tolerance is 20% (the regression budget from the scaling work);
override with ``BANYAN_TREND_TOLERANCE`` (e.g. ``0.35``) when comparing
across machines with very different single-core throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Tuple

TOLERANCE_ENV = "BANYAN_TREND_TOLERANCE"
DEFAULT_TOLERANCE = 0.20

#: The throughput metric compared per row.
METRIC = "events_per_s"


def _load_rows(path: str) -> Dict[Tuple[str, ...], float]:
    """Flatten a BENCH record's series into
    ``(series, n, mode, model, scheduler) -> metric``."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    rows: Dict[Tuple[str, ...], float] = {}
    for series_name, series_rows in record.get("series", {}).items():
        for row in series_rows:
            if METRIC not in row:
                continue
            key = (series_name, row.get("n"), row.get("mode"),
                   row.get("model"), row.get("scheduler"))
            rows[key] = float(row[METRIC])
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json record")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json record")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(TOLERANCE_ENV,
                                                     DEFAULT_TOLERANCE)),
                        help="allowed relative events/s drop "
                             f"(default {DEFAULT_TOLERANCE}, "
                             f"env {TOLERANCE_ENV})")
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("tolerance must be in [0, 1)")

    baseline = _load_rows(args.baseline)
    current = _load_rows(args.current)
    shared = sorted(set(baseline) & set(current), key=repr)
    if not shared:
        print(f"check_trend: no comparable {METRIC} rows between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 1

    failures = 0
    for key in shared:
        before, after = baseline[key], current[key]
        floor = before * (1.0 - args.tolerance)
        change = (after - before) / before * 100.0
        verdict = "ok" if after >= floor else "REGRESSION"
        if verdict != "ok":
            failures += 1
        series, n, mode, model, scheduler = key
        label = (f"{series} n={n}"
                 + (f" mode={mode}" if mode else "")
                 + (f" model={model}" if model else "")
                 + (f" sched={scheduler}" if scheduler else ""))
        print(f"{verdict:>10}  {label:<28} {METRIC}: "
              f"{before:>12.1f} -> {after:>12.1f}  ({change:+.1f}%)")
    for key in sorted(set(baseline) - set(current), key=repr):
        print(f"{'missing':>10}  {key} present only in the baseline")
    for key in sorted(set(current) - set(baseline), key=repr):
        print(f"{'new':>10}  {key} present only in the current record")

    if failures:
        print(f"check_trend: {failures} row(s) regressed more than "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
