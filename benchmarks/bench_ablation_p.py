"""Ablation: the fast-path parameter p at n=19.

DESIGN.md calls out the choice of p as the central design knob: p=1 costs
nothing extra in replicas (n >= 3f + 1 unchanged) but requires all-but-one
replicas to respond for the fast path; larger p trades Byzantine resilience
(smaller f at fixed n) for a more robust fast path.  This bench sweeps p and
reports latency and fast-path hit rate.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, print_figure, run_once
from repro.eval.scenarios import ablation_p_sweep

P_VALUES = (1, 2, 4)
DURATION = 12.0
PAYLOAD = 400_000


def test_ablation_p_sweep(benchmark):
    figure = run_once(
        benchmark, ablation_p_sweep, p_values=P_VALUES, payload_size=PAYLOAD, duration=DURATION
    )
    print_figure(figure)

    rows = [row for series in figure.series.values() for row in series]
    paper_comparison([
        {"p": row["p"], "f": row["f"], "mean_latency_ms": row["mean_latency_ms"],
         "fast_path_ratio": row["fast_path_ratio"],
         "committed_blocks": row["committed_blocks"]}
        for row in sorted(rows, key=lambda r: r["p"])
    ])

    by_p = {row["p"]: row for row in rows}
    # Every configuration makes progress and uses the fast path.
    for row in rows:
        assert row["committed_blocks"] > 0
        assert row["fast_path_ratio"] > 0.3
    # A larger p never hurts the fast-path hit rate (it only relaxes the
    # number of replicas the fast path must hear from).
    assert by_p[max(P_VALUES)]["fast_path_ratio"] >= by_p[1]["fast_path_ratio"] - 0.05
    # And the p=f configuration is at least as fast as p=1 (Figure 6a's trend).
    assert by_p[max(P_VALUES)]["mean_latency_ms"] <= by_p[1]["mean_latency_ms"] * 1.05
