"""Shared helpers for the benchmark harness."""

from __future__ import annotations

from typing import Callable, Dict, List

import pytest


def run_once(benchmark, function: Callable, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark.

    The figure regenerations are full (deterministic) simulation sweeps, so a
    single iteration is both sufficient and necessary to keep the suite's
    wall-clock time reasonable.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_figure(figure) -> None:
    """Print a reproduced figure's series below the benchmark output."""
    print()
    print(figure.render())


def paper_comparison(rows: List[Dict[str, object]]) -> None:
    """Print paper-vs-measured comparison rows."""
    from repro.analysis.report import format_table

    if not rows:
        return
    headers = list(rows[0])
    print()
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
