"""Shared helpers for the benchmark harness.

Besides the pytest-benchmark integration, every ``run_once`` call emits one
machine-readable ``BENCH_<name>.json`` record (wall-clock time plus, for
figure results, the measured series) into ``benchmarks/results/`` — override
the directory with the ``BANYAN_BENCH_DIR`` environment variable, or set it
to an empty string to disable.  The records let the performance trajectory
be tracked across commits without parsing captured stdout.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional

import pytest

#: Environment variable overriding the JSON record directory; an empty
#: string disables emission.
BENCH_DIR_ENV = "BANYAN_BENCH_DIR"
DEFAULT_BENCH_DIR = os.path.join(os.path.dirname(__file__), "results")


try:  # pragma: no cover - depends on the environment
    import pytest_benchmark  # noqa: F401
except ImportError:
    class _FallbackBenchmark:
        """Minimal stand-in so the suite runs without pytest-benchmark."""

        def pedantic(self, function, args=(), kwargs=None, rounds=1, iterations=1):
            return function(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()


def _bench_record_path(name: str) -> Optional[str]:
    directory = os.environ.get(BENCH_DIR_ENV, DEFAULT_BENCH_DIR)
    if not directory:
        return None
    return os.path.join(directory, f"BENCH_{name}.json")


def emit_bench_record(name: str, wall_s: float, result: object = None) -> None:
    """Write one ``BENCH_<name>.json`` record (best-effort, never fails a bench).

    Args:
        name: record name; also the file-name stem.
        wall_s: measured wall-clock seconds of the benchmarked call.
        result: the benchmarked call's return value; figure results
            contribute their series rows, so throughput/latency numbers are
            machine-readable alongside the timing.
    """
    path = _bench_record_path(name)
    if path is None:
        return
    record: Dict[str, object] = {
        "bench": name,
        "wall_s": round(wall_s, 6),
        "created_unix": round(time.time(), 3),
    }
    series = getattr(result, "series", None)
    results = getattr(result, "results", None)
    if series is not None:
        record["figure"] = getattr(result, "figure", None)
        record["replications"] = getattr(result, "replications", 1)
        record["series"] = series
    if results is not None:
        record["experiments"] = len(results)
        record["sim_seconds"] = round(sum(r.config.duration for r in results), 3)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
    except OSError:
        pass


def run_once(benchmark, function: Callable, *args, record_name: Optional[str] = None,
             **kwargs):
    """Run ``function`` exactly once under pytest-benchmark.

    The figure regenerations are full (deterministic) simulation sweeps, so a
    single iteration is both sufficient and necessary to keep the suite's
    wall-clock time reasonable.  One ``BENCH_<record_name>.json`` record
    (default name: the function's name) is written per call.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(function, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    emit_bench_record(record_name or function.__name__,
                      time.perf_counter() - start, result)
    return result


def print_figure(figure) -> None:
    """Print a reproduced figure's series below the benchmark output."""
    print()
    print(figure.render())


def paper_comparison(rows: List[Dict[str, object]]) -> None:
    """Print paper-vs-measured comparison rows."""
    from repro.analysis.report import format_table

    if not rows:
        return
    headers = list(rows[0])
    print()
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
