"""Figure 6b: throughput vs. proposal latency, n=4, one replica per datacenter.

Paper's headline numbers at 1 MB blocks: ICC averages 224 ms, Banyan 157 ms —
a 29.9% improvement, the largest of the evaluation, because with n=4 and p=1
the fast path fires after the same three replies as regular notarization.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, print_figure, run_once
from repro.eval.scenarios import figure_6b

PAYLOAD_SIZES = (500_000, 1_000_000)
DURATION = 15.0


def test_figure_6b(benchmark):
    figure = run_once(benchmark, figure_6b, payload_sizes=PAYLOAD_SIZES, duration=DURATION)
    print_figure(figure)

    at_1mb = 1_000_000
    icc = figure.mean_latency("icc", at_1mb)
    banyan = figure.mean_latency("banyan (p=1)", at_1mb)
    improvement = figure.improvement_over("icc", "banyan (p=1)", at_1mb)

    paper_comparison([
        {"series": "ICC @1MB", "paper_ms": 224, "measured_ms": round(icc * 1000, 1)},
        {"series": "Banyan p=1 @1MB", "paper_ms": 157, "measured_ms": round(banyan * 1000, 1)},
        {"series": "Banyan vs ICC improvement %", "paper_ms": 29.9,
         "measured_ms": round(improvement, 1)},
    ])

    assert banyan < icc
    # At n=4 the improvement approaches the theoretical 33% (one of three
    # message delays removed); require a substantial fraction of it.
    assert 15.0 < improvement < 33.5
    assert figure.mean_latency("hotstuff", at_1mb) > icc
    assert figure.mean_latency("streamlet", at_1mb) > icc
