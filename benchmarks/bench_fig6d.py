"""Figure 6d: crash faults, n=19 over 4 US datacenters, 3-second timeout.

The paper's claim: "there are no penalties in trying to take the fast path.
When there are failures, the performance of Banyan is exactly the one of
ICC."  The benchmark crashes 0 and 2 replicas, measures throughput and block
intervals for both protocols, and asserts Banyan tracks ICC under crashes.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, print_figure, run_once
from repro.eval.scenarios import figure_6d

CRASH_COUNTS = (0, 2)
DURATION = 40.0
PAYLOAD = 100_000


def test_figure_6d(benchmark):
    figure = run_once(
        benchmark, figure_6d, crash_counts=CRASH_COUNTS, payload_size=PAYLOAD, duration=DURATION
    )
    print_figure(figure)

    banyan_rows = {row["crashed_replicas"]: row for row in figure.series["banyan (p=1)"]}
    icc_rows = {row["crashed_replicas"]: row for row in figure.series["icc"]}

    paper_comparison([
        {"crashes": crashes,
         "banyan_blocks": banyan_rows[crashes]["committed_blocks"],
         "icc_blocks": icc_rows[crashes]["committed_blocks"],
         "banyan_interval_ms": banyan_rows[crashes]["block_interval_ms"],
         "icc_interval_ms": icc_rows[crashes]["block_interval_ms"]}
        for crashes in CRASH_COUNTS
    ])

    for crashes in CRASH_COUNTS:
        banyan_row, icc_row = banyan_rows[crashes], icc_rows[crashes]
        assert banyan_row["committed_blocks"] > 0
        # Banyan's progress under crash faults matches ICC's (within 10%).
        assert abs(banyan_row["committed_blocks"] - icc_row["committed_blocks"]) <= max(
            2, 0.1 * icc_row["committed_blocks"]
        )
    # Crashes stretch the block interval (rotating-leader protocols stall for
    # a full timeout whenever a crashed replica is the leader).
    assert banyan_rows[2]["block_interval_ms"] > banyan_rows[0]["block_interval_ms"] * 2
    assert icc_rows[2]["block_interval_ms"] > icc_rows[0]["block_interval_ms"] * 2
