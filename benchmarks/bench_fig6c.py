"""Figure 6c: latency variance of Banyan vs. ICC, n=4, 1 MB payload.

The paper's claim: the large fast-path improvement "does not come at the
cost of higher variance in latency".  The benchmark reproduces the per-
proposal latency distribution for both protocols and compares mean, p95,
and standard deviation.
"""

from __future__ import annotations

from benchmarks.conftest import paper_comparison, print_figure, run_once
from repro.eval.scenarios import figure_6c

PAYLOAD = 1_000_000
DURATION = 25.0


def test_figure_6c(benchmark):
    figure = run_once(benchmark, figure_6c, payload_size=PAYLOAD, duration=DURATION)
    print_figure(figure)

    banyan = next(r for r in figure.results if r.label == "banyan (p=1)").metrics
    icc = next(r for r in figure.results if r.label == "icc").metrics

    paper_comparison([
        {"metric": "mean latency (ms)", "banyan": round(banyan.mean_latency * 1000, 1),
         "icc": round(icc.mean_latency * 1000, 1)},
        {"metric": "p95 latency (ms)", "banyan": round(banyan.p95_latency * 1000, 1),
         "icc": round(icc.p95_latency * 1000, 1)},
        {"metric": "stddev (ms)", "banyan": round(banyan.latency_stddev * 1000, 1),
         "icc": round(icc.latency_stddev * 1000, 1)},
        {"metric": "samples", "banyan": len(banyan.latency_samples),
         "icc": len(icc.latency_samples)},
    ])

    # Banyan is faster on average and its distribution does not blow up:
    # the p95 stays below ICC's p95 and the spread stays a small fraction of
    # the mean (the paper's "no increased variance" claim).
    assert banyan.mean_latency < icc.mean_latency
    assert banyan.p95_latency <= icc.p95_latency * 1.05
    assert banyan.latency_stddev < 0.25 * icc.mean_latency
    assert len(banyan.latency_samples) > 10 and len(icc.latency_samples) > 10
