#!/usr/bin/env python3
"""Scale demo: a million modeled users at datacenter-scale replica counts.

The exact client model simulates every transaction as its own event, so a
million users at 20,000 tx/s would melt the event queue before the protocol
gets a turn.  The **fluid** workload mode collapses the population into
aggregated per-replica arrival flows — one injection event per (replica,
tick), carrying a Poisson-sampled transaction count and pre-aggregated byte
mass — so the workload cost is independent of how many users it models.

This demo runs Banyan over the measured AWS inter-region RTT matrix
(``latency_model="wan-matrix"``) and shows:

1. **fluid vs exact** on an overlapping small configuration — the two
   client models agree on goodput and latency percentiles;
2. a **million-user run at n=64**, impossible with per-transaction events;
3. the **scale sweep** (n=64 by default; pass ``--full`` for the
   64/128/256 sweep the paper-scale benchmarks use — expect a few minutes).

Run with::

    python examples/scale_demo.py          # quick (~30 s)
    python examples/scale_demo.py --full   # adds the n=128/256 sweep
"""

from __future__ import annotations

import sys
import time

from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.scenarios import scale_sweep
from repro.protocols.base import ProtocolParams
from repro.workload.spec import WorkloadSpec


def show(title: str, workload, wall: float) -> None:
    print(f"\n=== {title} ===")
    print(f"wall-clock {wall:.1f} s; submitted {workload.submitted}, "
          f"committed {workload.committed}, dropped {workload.dropped}")
    print(f"submit→commit latency: p50 {workload.p50_latency * 1000:.0f} ms, "
          f"p95 {workload.p95_latency * 1000:.0f} ms")
    print(f"goodput: {workload.goodput_tx_per_s:.1f} tx/s")


def run(n: int, fluid: bool, num_clients: int, rate: float,
        duration: float) -> None:
    bound = (n - 1) // 5  # keeps the fast path: n >= 3f + 2p + 1
    config = ExperimentConfig(
        protocol="banyan",
        params=ProtocolParams(n=n, f=bound, p=bound),
        workload=WorkloadSpec(mode="open", arrival="poisson", rate=rate,
                              num_clients=num_clients, tx_size=256,
                              sample_interval=1.0, seed=0, fluid=fluid),
        duration=duration, warmup=min(1.0, duration / 4), seed=1,
        latency_model="wan-matrix",
    )
    start = time.perf_counter()
    result = run_experiment(config)
    wall = time.perf_counter() - start
    mode = "fluid" if fluid else "exact"
    show(f"banyan n={n}, {num_clients:,} clients @ {rate:g} tx/s ({mode})",
         result.workload, wall)


def main() -> None:
    full = "--full" in sys.argv[1:]

    # 1. Cross-validation: same offered load through both client models.
    for fluid in (False, True):
        run(n=16, fluid=fluid, num_clients=2_000, rate=2_000.0, duration=2.0)

    # 2. A million modeled users: only the fluid model can afford this.
    run(n=64, fluid=True, num_clients=1_000_000, rate=20_000.0, duration=2.0)

    # 3. The scale sweep (the benchmark's configuration).
    counts = (64, 128, 256) if full else (64,)
    print(f"\n=== fluid scale sweep, n={counts} (WAN matrix) ===")
    figure = scale_sweep(replica_counts=counts, duration=1.0, warmup=0.25)
    print(figure.render())


if __name__ == "__main__":
    main()
