#!/usr/bin/env python3
"""Run the same Banyan replicas under the asyncio real-time runtime.

The protocol objects are sans-io state machines, so the exact same code that
the benchmarks drive with the discrete-event simulator can be run by an
asyncio event loop with wall-clock delays.  To keep the demo snappy, modelled
time is compressed 10x (``time_scale=0.1``): a 40 ms modelled one-way delay
sleeps 4 ms of real time.

Run with::

    python examples/asyncio_deployment.py
"""

from __future__ import annotations

import asyncio
import time

from repro import NetworkConfig, ProtocolParams
from repro.net.latency import GeoLatency
from repro.net.topology import four_global_datacenters
from repro.protocols.registry import create_replicas
from repro.runtime.asyncio_runtime import AsyncioRuntime


async def run() -> None:
    topology = four_global_datacenters(4)
    params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.6, payload_size=100_000)
    replicas = create_replicas("banyan", params)
    network = NetworkConfig(latency=GeoLatency(topology), seed=5)

    runtime = AsyncioRuntime(replicas, network, time_scale=0.1)

    committed = []
    runtime.add_commit_listener(committed.append)

    start = time.perf_counter()
    await runtime.run(duration=20.0)  # 20 modelled seconds ≈ 2 s wall clock
    wall = time.perf_counter() - start

    records = runtime.commits_for(0)
    fast = sum(1 for record in records if record.finalization_kind == "fast")
    print(f"asyncio runtime: {len(records)} blocks committed at replica 0 "
          f"({fast} fast-path) in {wall:.1f}s wall clock for 20s of modelled time")

    chains = [[r.block.id for r in runtime.commits_for(rid)] for rid in runtime.replica_ids]
    shortest = min(len(chain) for chain in chains)
    assert all(chain[:shortest] == chains[0][:shortest] for chain in chains)
    print("all replicas agree under the asyncio runtime as well")


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()
