#!/usr/bin/env python3
"""Quickstart: run Banyan on a simulated 4-replica network.

This is the smallest end-to-end use of the public API:

1. choose protocol parameters (n, f, p and the 2Δ rank delay),
2. build one replica per participant via the registry,
3. drive them with the deterministic discrete-event simulator over a
   constant-latency network,
4. read back the committed chain and the proposal-finalization latencies.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NetworkConfig, ProtocolParams, Simulation
from repro.net.latency import ConstantLatency
from repro.protocols.registry import create_replicas


def main() -> None:
    # 4 replicas, tolerating f=1 Byzantine fault; p=1 means the fast path
    # fires whenever all but one replica respond promptly.
    params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4, payload_size=50_000)
    replicas = create_replicas("banyan", params)

    # Every link has a 50 ms one-way delay — a small WAN.
    network = NetworkConfig(latency=ConstantLatency(0.05), seed=42)
    simulation = Simulation(replicas, network)

    # Run 10 simulated seconds (a fraction of a second of wall-clock time).
    simulation.run(until=10.0)

    commits = simulation.commits_for(0)
    fast = sum(1 for record in commits if record.finalization_kind == "fast")
    print(f"replica 0 committed {len(commits)} blocks "
          f"({fast} via the fast path, {len(commits) - fast} via the slow path)")

    # Proposal finalization latency, measured at each proposer — the paper's
    # headline metric.
    latencies = []
    for replica_id in simulation.replica_ids:
        protocol = simulation.protocol(replica_id)
        commit_times = {r.block.id: r.commit_time for r in simulation.commits_for(replica_id)}
        for block_id, proposed_at in protocol.proposal_times.items():
            if block_id in commit_times:
                latencies.append(commit_times[block_id] - proposed_at)
    mean_latency = sum(latencies) / len(latencies)
    print(f"mean proposal finalization latency: {mean_latency * 1000:.1f} ms "
          f"(one-way network delay is 50 ms, so the fast path finishes in ~2 delays)")

    # All replicas hold the same chain prefix.
    chains = [[r.block.id for r in simulation.commits_for(rid)] for rid in simulation.replica_ids]
    shortest = min(len(chain) for chain in chains)
    assert all(chain[:shortest] == chains[0][:shortest] for chain in chains)
    print("all replicas agree on the committed chain — consensus reached")


if __name__ == "__main__":
    main()
