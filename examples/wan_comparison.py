#!/usr/bin/env python3
"""Compare Banyan against ICC, HotStuff, and Streamlet on a worldwide WAN.

Reproduces the flavour of the paper's Section 9.5 experiment: 19 replicas,
one per datacenter across the globe, 1 MB blocks, and the proposal
finalization latency of each protocol.  The geographic latency model derives
one-way delays from great-circle distances between real AWS regions.

Run with::

    python examples/wan_comparison.py            # default quick sweep
    python examples/wan_comparison.py --duration 30 --payload 400000
"""

from __future__ import annotations

import argparse

from repro.analysis.report import format_table
from repro.analysis.stats import improvement_pct
from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.scenarios import GLOBAL_RANK_DELAY
from repro.net.topology import worldwide_datacenters
from repro.protocols.base import ProtocolParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=15.0,
                        help="simulated seconds per protocol run")
    parser.add_argument("--payload", type=int, default=1_000_000,
                        help="block payload size in bytes")
    args = parser.parse_args()

    topology = worldwide_datacenters(19)
    print(f"topology: 19 replicas across {len(topology.datacenters())} datacenters")

    lineup = [
        ("banyan (p=1)", "banyan", 6, 1),
        ("banyan (p=4)", "banyan", 4, 4),
        ("icc", "icc", 6, 1),
        ("hotstuff", "hotstuff", 6, 1),
        ("streamlet", "streamlet", 6, 1),
    ]

    rows = []
    latencies = {}
    for label, protocol, f, p in lineup:
        params = ProtocolParams(n=19, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY,
                                payload_size=args.payload)
        config = ExperimentConfig(protocol=protocol, params=params, topology=topology,
                                  duration=args.duration, warmup=2.0, label=label)
        result = run_experiment(config)
        latencies[label] = result.metrics.mean_latency
        row = result.row()
        rows.append([label, row["mean_latency_ms"], row["p95_latency_ms"],
                     row["throughput_MBps"], row["fast_path_ratio"], row["committed_blocks"]])

    print()
    print(format_table(
        ["protocol", "mean latency (ms)", "p95 (ms)", "throughput (MB/s)",
         "fast-path ratio", "blocks"],
        rows,
    ))

    print()
    for label in ("banyan (p=1)", "banyan (p=4)"):
        print(f"{label} improves on ICC by "
              f"{improvement_pct(latencies['icc'], latencies[label]):.1f}% "
              f"(paper: {'5.8%' if label.endswith('(p=1)') else '16%'} at 1 MB)")


if __name__ == "__main__":
    main()
