#!/usr/bin/env python3
"""A replicated key-value store on top of Banyan.

This is the "world computer" use case from the paper's introduction scaled
down to a key-value store: clients submit ``SET``/``DEL`` transactions, the
Banyan protocol totally orders them into blocks, and every replica applies
the finalized payloads to its own deterministic state machine.  At the end
all replicas hold byte-identical state.

The example also shows how to plug a custom payload source into the protocol:
proposals drain a shared mempool instead of carrying synthetic bit vectors.

Run with::

    python examples/replicated_kv_store.py
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro import NetworkConfig, ProtocolParams, Simulation
from repro.net.latency import ConstantLatency
from repro.protocols.registry import create_replicas
from repro.smr.ledger import KeyValueLedger, Transaction, encode_transactions
from repro.smr.mempool import Mempool, PayloadSource


class MempoolPayloadSource(PayloadSource):
    """Payload source that drains a shared mempool of client transactions."""

    def __init__(self, mempool: Mempool, max_bytes_per_block: int = 4_096) -> None:
        super().__init__(payload_size=0)
        self.mempool = mempool
        self.max_bytes_per_block = max_bytes_per_block

    def payload_for(self, round: int, proposer: int) -> Tuple[bytes, int]:
        transactions = self.mempool.take(self.max_bytes_per_block)
        payload = b"\n".join(transactions)
        if not payload:
            payload = f"empty:r{round}:p{proposer}".encode("utf-8")
        return payload, len(payload)


def generate_client_workload(mempool: Mempool, accounts: int = 20, operations: int = 300) -> None:
    """Simulate clients submitting transfers between accounts."""
    rng = random.Random(7)
    for i in range(operations):
        key = f"account-{rng.randrange(accounts)}"
        if rng.random() < 0.9:
            transaction = Transaction(op="SET", key=key, value=str(rng.randrange(1_000)))
        else:
            transaction = Transaction(op="DEL", key=key)
        mempool.add(encode_transactions([transaction]))


def main() -> None:
    params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4)
    mempool = Mempool()
    generate_client_workload(mempool)
    print(f"mempool holds {len(mempool)} client transactions")

    payload_source = MempoolPayloadSource(mempool)
    replicas = create_replicas("banyan", params, payload_source=payload_source)
    simulation = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.04), seed=3))

    # Each replica applies finalized payloads to its own ledger.
    ledgers: Dict[int, KeyValueLedger] = {rid: KeyValueLedger() for rid in simulation.replica_ids}
    simulation.add_commit_listener(
        lambda record: ledgers[record.replica_id].apply_payload(record.block.payload)
    )

    simulation.run(until=20.0)

    committed = len(simulation.commits_for(0))
    applied = ledgers[0].applied_transactions
    print(f"replica 0 committed {committed} blocks carrying {applied} transactions")

    digests = {rid: ledger.state_digest() for rid, ledger in ledgers.items()}
    print("per-replica state digests:", digests)
    assert len(set(digests.values())) == 1, "replicated state diverged!"
    print("all replicas hold identical key-value state — replication works")

    sample_keys = sorted(ledgers[0].snapshot())[:5]
    print("sample of the replicated state:")
    for key in sample_keys:
        print(f"  {key} = {ledgers[0].get(key)}")


if __name__ == "__main__":
    main()
