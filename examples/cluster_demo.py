#!/usr/bin/env python3
"""Real-cluster demo: the simulator's protocols over actual TCP sockets.

Three acts:

1. a **healthy cluster** — four real replica processes running Banyan over
   localhost TCP with open-loop workload clients, commit logs harvested
   into the standard metrics, and the committed sequences cross-validated
   against the simulator's invariant checker;
2. a **kill and restart** — one replica is SIGKILLed mid-run (a real
   process death, not a simulated one) and later restarted; the surviving
   quorum keeps committing throughout;
3. a **socket-level chaos replay** — the chaos engine's fault-schedule
   format replayed as real frame drops: two permanent crashes take the
   quorum away and the liveness invariant catches it, exactly as it would
   in the simulator.

Run with::

    python examples/cluster_demo.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.chaos.schedule import ChaosSchedule, Fault
from repro.cluster.harness import LocalCluster, cross_validate, run_local_cluster

RANK_DELAY = 0.05
ROUND_TIMEOUT = 0.5


def act_one_healthy_cluster(workdir: Path) -> None:
    print("=" * 72)
    print("Act 1: 4 real replica processes, banyan over TCP, 40 tx/s clients")
    print("=" * 72)
    result = run_local_cluster(
        "banyan", 4, duration=5.0, rank_delay=RANK_DELAY,
        round_timeout=ROUND_TIMEOUT, rate=40.0, tx_size=128,
        check_invariants=True, log_dir=workdir / "healthy",
    )
    metrics = result.metrics
    latencies = sorted(result.workload.latencies)
    print(f"  replica exit codes: {result.exit_codes}")
    print(f"  committed blocks (observer): {metrics.committed_blocks} "
          f"({metrics.fast_finalized} fast / {metrics.slow_finalized} slow)")
    print(f"  workload: {len(result.workload.committed)}/"
          f"{len(result.workload.submitted)} transactions committed")
    if latencies:
        median = latencies[len(latencies) // 2]
        print(f"  median submit->commit latency: {1000 * median:.1f} ms")
    print(f"  invariant violations: {len(result.violations)}")
    assert result.ok, "a healthy cluster must commit cleanly"
    print("  -> real TCP execution satisfies the simulator's invariants.\n")


def act_two_kill_and_restart(workdir: Path) -> None:
    print("=" * 72)
    print("Act 2: SIGKILL replica 3 mid-run, restart it 1.5 s later")
    print("=" * 72)
    duration = 7.0
    cluster = LocalCluster(
        "banyan", 4, duration=duration, log_dir=workdir / "kill",
        rank_delay=RANK_DELAY, round_timeout=ROUND_TIMEOUT,
    )
    cluster.start()
    try:
        time.sleep(max(0.0, cluster.start_at + 2.0 - time.time()))
        cluster.kill(3)
        print("  replica 3 SIGKILLed at t~2.0s")
        time.sleep(1.5)
        cluster.restart(3)
        print("  replica 3 restarted at t~3.5s")
        cluster.wait()
    finally:
        cluster.stop()
    records, errors = cluster.commit_records()
    for rid in range(3):
        last = max(r.commit_time for r in records if r.replica_id == rid)
        print(f"  survivor {rid}: last commit at t={last:.2f}s")
    violations = cross_validate(
        records, n=4, schedule=ChaosSchedule(), duration=duration,
        liveness_bound=ROUND_TIMEOUT + 8 * RANK_DELAY + 2.0,
        errors=errors, exclude=(3,),
    )
    assert not violations, violations
    print("  -> the surviving quorum never stopped; invariants hold.\n")


def act_three_chaos_replay(workdir: Path) -> None:
    print("=" * 72)
    print("Act 3: replay a quorum-killing chaos schedule at the socket level")
    print("=" * 72)
    schedule = ChaosSchedule(faults=(
        Fault(kind="crash", replica=2, start=0.0),
        Fault(kind="crash", replica=3, start=0.0),
    ))
    for line in schedule.describe():
        print(f"  - {line}")
    result = run_local_cluster(
        "banyan", 4, duration=5.0, rank_delay=RANK_DELAY,
        round_timeout=ROUND_TIMEOUT, schedule=schedule,
        check_invariants=True, log_dir=workdir / "replay",
    )
    print(f"  committed blocks: {result.committed_blocks}")
    for violation in result.violations:
        print(f"  [{violation.invariant}] r{violation.replica}: "
              f"{violation.detail}")
    assert {v.invariant for v in result.violations} == {"liveness"}
    print("  -> two of four replicas down: the liveness invariant "
          "catches the stalled cluster.\n")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="banyan-cluster-demo-") as tmp:
        workdir = Path(tmp)
        act_one_healthy_cluster(workdir)
        act_two_kill_and_restart(workdir)
        act_three_chaos_replay(workdir)
    print("Demo complete: same protocol objects, real processes and sockets.")


if __name__ == "__main__":
    main()
