#!/usr/bin/env python3
"""Client workload demo: real transactions, end-to-end latency, flash crowds.

The other examples drive the protocols with the paper's synthetic
leader-generated payloads.  This one attaches a client population instead:

1. an **open-loop Poisson** workload — clients submit fixed-size
   transactions to their local replica's mempool at a target rate, Banyan
   proposals drain the mempool, and we report the submit→commit latency
   distribution the clients actually observe;
2. a **closed-loop** population — each client keeps exactly one transaction
   in flight and thinks between requests, the classic interactive-user
   model;
3. a **flash crowd** — a 20× demand spike fills the mempools and the
   backlog drains over the following rounds, visible in the occupancy
   chart.

Run with::

    python examples/workload_demo.py
"""

from __future__ import annotations

from repro.analysis.report import render_timeseries
from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.scenarios import flash_crowd
from repro.net.latency import ConstantLatency
from repro.protocols.base import ProtocolParams
from repro.workload.spec import WorkloadSpec


def show(title: str, workload) -> None:
    print(f"\n=== {title} ===")
    print(f"submitted {workload.submitted}, committed {workload.committed}, "
          f"dropped {workload.dropped}, still pending {workload.pending}")
    print(f"submit→commit latency: p50 {workload.p50_latency * 1000:.0f} ms, "
          f"p95 {workload.p95_latency * 1000:.0f} ms, "
          f"p99 {workload.p99_latency * 1000:.0f} ms")
    print(f"goodput: {workload.goodput_tx_per_s:.1f} tx/s "
          f"({workload.goodput_bytes_per_s / 1000:.1f} kB/s)")


def main() -> None:
    params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4)

    # 1. Open loop: 40 tx/s offered regardless of commit progress.
    open_loop = run_experiment(ExperimentConfig(
        protocol="banyan", params=params, duration=20.0, warmup=0.0,
        latency=ConstantLatency(0.05), seed=42,
        workload=WorkloadSpec(mode="open", arrival="poisson", rate=40.0,
                              tx_size=256, seed=42),
    ))
    show("open loop, Poisson 40 tx/s", open_loop.workload)

    # 2. Closed loop: 12 clients, one transaction in flight each, 300 ms
    #    mean think time — offered load self-clocks to the commit rate.
    closed_loop = run_experiment(ExperimentConfig(
        protocol="banyan", params=params, duration=20.0, warmup=0.0,
        latency=ConstantLatency(0.05), seed=42,
        workload=WorkloadSpec(mode="closed", num_clients=12, think_time=0.3,
                              tx_size=256, seed=42),
    ))
    show("closed loop, 12 clients, 300 ms think time", closed_loop.workload)

    # 3. Flash crowd: 15 tx/s baseline spiking to 250 tx/s for 4 seconds.
    figure = flash_crowd(base_rate=15.0, burst_rate=250.0, burst_start=8.0,
                         burst_duration=4.0, duration=40.0, seed=42)
    workload = figure.results[0].workload
    show("flash crowd, 15 → 250 tx/s burst", workload)
    samples = workload.occupancy
    print()
    print(render_timeseries(
        "mempool occupancy (the spike fills the pools, the rounds drain them)",
        [sample.time for sample in samples],
        [float(sample.transactions) for sample in samples],
        unit=" tx",
    ))


if __name__ == "__main__":
    main()
