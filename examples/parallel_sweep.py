#!/usr/bin/env python3
"""Parallel, replicated, cached sweeps over declarative experiment plans.

The evaluation layer separates *what* to run from *how* to run it:

1. a **plan builder** produces the grid of experiment cells as data
   (`ExperimentSpec` / `ExperimentPlan`) — here Figure 6b's protocol ×
   payload sweep, fanned out over 3 independent replications per cell;
2. the **runner** executes the plan across worker processes; every
   simulation is deterministic given its spec, so the results (and their
   order) are identical to a serial run;
3. a **result cache** keyed by each spec's content hash makes re-runs free:
   the second `run_figure` call below executes zero experiments;
4. the replications aggregate into mean ± 95% CI rows, rendered by the
   figure report.

Run with::

    python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.eval.scenarios import plan_figure_6b, run_figure

PAYLOADS = (500_000, 1_000_000)
DURATION = 8.0
SEEDS = 3
JOBS = max(1, min(4, os.cpu_count() or 1))


def timed(label: str, plan, **kwargs):
    started = time.perf_counter()
    executed = [0]

    def progress(event):
        executed[0] += 0 if event.cached else 1

    figure = run_figure(plan, progress=progress, **kwargs)
    elapsed = time.perf_counter() - started
    print(f"{label}: {executed[0]}/{len(plan.specs)} cells executed "
          f"in {elapsed:.1f} s")
    return figure


def main() -> None:
    plan = plan_figure_6b(payload_sizes=PAYLOADS, duration=DURATION, seeds=SEEDS)
    print(f"plan 6b: {len(plan.specs)} experiments "
          f"({len(plan.cells())} cells x {SEEDS} replications)\n")

    with tempfile.TemporaryDirectory() as cache_dir:
        figure = timed(f"parallel run (jobs={JOBS})", plan,
                       jobs=JOBS, cache_dir=cache_dir)
        cached = timed("cached re-run", plan, jobs=JOBS, cache_dir=cache_dir)

    assert [r.row() for r in cached.results] == [r.row() for r in figure.results]
    print()
    print(figure.render())
    print()
    print("banyan (p=1) vs icc at 1 MB: "
          f"{figure.improvement_over('icc', 'banyan (p=1)', 1_000_000):.1f}% "
          f"latency improvement (mean of {SEEDS} replications)")


if __name__ == "__main__":
    main()
