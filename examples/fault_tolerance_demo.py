#!/usr/bin/env python3
"""Fault-tolerance demo: crashes, stragglers, and an equivocating leader.

Three scenarios on a 7-replica Banyan deployment (f=2, p=1):

1. **Crash faults** — two replicas are down from the start.  Rounds led by a
   crashed replica stall for the timeout, but the chain keeps growing and the
   fast path is simply skipped (no penalty, as in Figure 6d).
2. **Stragglers** — two honest replicas are slow.  With more than ``p``
   stragglers the fast path stops firing and finalization falls back to the
   concurrent ICC slow path.
3. **Equivocating leader** — a Byzantine replica proposes two conflicting
   blocks to disjoint halves of the network whenever it leads.  Safety holds:
   no two honest replicas ever finalize different blocks for the same round.

Run with::

    python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

from typing import Dict, List

from repro import NetworkConfig, ProtocolParams, Simulation
from repro.byzantine.behaviors import DelayedReplica, make_equivocating_banyan
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.protocols.registry import create_replicas

PARAMS = ProtocolParams(n=7, f=2, p=1, rank_delay=0.4, payload_size=10_000)


def summarize(title: str, simulation: Simulation, exclude: List[int] = ()) -> None:
    honest = [rid for rid in simulation.replica_ids if rid not in exclude]
    commits = simulation.commits_for(honest[0])
    fast = sum(1 for r in commits if r.finalization_kind == "fast")
    chains = [[r.block.id for r in simulation.commits_for(rid)] for rid in honest]
    shortest = min(len(c) for c in chains)
    consistent = all(c[:shortest] == chains[0][:shortest] for c in chains)
    rounds_by_block: Dict[int, set] = {}
    for rid in honest:
        for record in simulation.commits_for(rid):
            rounds_by_block.setdefault(record.block.round, set()).add(record.block.id)
    no_conflicts = all(len(ids) == 1 for ids in rounds_by_block.values())
    print(f"--- {title}")
    print(f"    committed blocks: {len(commits)}  (fast path: {fast}, slow path: {len(commits) - fast})")
    print(f"    chains consistent across honest replicas: {consistent}")
    print(f"    at most one finalized block per round:    {no_conflicts}")
    assert consistent and no_conflicts


def crash_scenario() -> None:
    replicas = create_replicas("banyan", PARAMS)
    faults = FaultPlan.with_crashed([5, 6])
    simulation = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05),
                                                    faults=faults, seed=1))
    simulation.run(until=30.0)
    summarize("two crashed replicas (within f=2)", simulation, exclude=[5, 6])


def straggler_scenario() -> None:
    replicas = create_replicas("banyan", PARAMS)
    for straggler in (5, 6):
        replicas[straggler] = DelayedReplica(replicas[straggler], extra_delay=1.0)
    simulation = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=2))
    simulation.run(until=30.0)
    summarize("two stragglers (more than p=1): slow-path fallback", simulation)


def equivocation_scenario() -> None:
    replicas = create_replicas("banyan", PARAMS, overrides={0: make_equivocating_banyan()})
    simulation = Simulation(replicas, NetworkConfig(latency=ConstantLatency(0.05), seed=3))
    simulation.run(until=30.0)
    summarize("equivocating leader (replica 0)", simulation, exclude=[0])


def main() -> None:
    crash_scenario()
    straggler_scenario()
    equivocation_scenario()
    print("all three fault scenarios preserved safety and liveness")


if __name__ == "__main__":
    main()
