#!/usr/bin/env python3
"""Chaos engine demo: seeded fault storms, invariants, and failure shrinking.

Three acts:

1. a **chaos campaign** against the honest protocols — seeded schedules of
   crashes (with recoveries), overlapping partitions, loss bursts,
   straggler phases, and planted Byzantine replicas, every run checked
   against the agreement / ancestry / fast-path / liveness invariants;
2. a **planted bug** — the test-only ``icc-broken`` variant lowers the
   notarization quorum below the intersection bound, and the campaign
   catches it forking under a partition;
3. **shrinking** — the failing schedule is minimised fault by fault until
   only what the failure needs remains, then serialized to a JSON repro
   and replayed bit-for-bit.

Run with::

    python examples/chaos_demo.py
"""

from __future__ import annotations

import os
import tempfile

from repro.chaos import (
    ChaosTrialSpec,
    replay_repro,
    run_chaos,
    run_chaos_trial,
    shrink_schedule,
    write_repro,
)
from repro.chaos.broken import register_broken_protocols


def act_one_honest_campaign() -> None:
    print("=" * 72)
    print("Act 1: 40 seeded trials across the four honest protocols")
    print("=" * 72)
    report = run_chaos(trials=40, seed=0, duration=12.0, shrink=False)
    for row in report.summary_rows():
        print(f"  {row['protocol']:<10} trials={row['trials']:<3} "
              f"failures={row['failures']:<2} "
              f"faults injected={row['faults_injected']:<4} "
              f"liveness-checked={row['liveness_checked']}")
    assert not report.failures, "honest protocols must satisfy every invariant"
    print("  -> zero invariant violations.\n")


def act_two_planted_bug() -> tuple:
    print("=" * 72)
    print("Act 2: the same storms against a deliberately broken protocol")
    print("=" * 72)
    register_broken_protocols()
    for trial in range(40):
        spec = ChaosTrialSpec(protocol="icc-broken", trial=trial)
        result = run_chaos_trial(spec)
        if result.failed:
            print(f"  trial {trial} fails with {len(result.schedule)} scheduled fault(s):")
            for line in result.schedule.describe():
                print(f"    - {line}")
            violation = result.violations[0]
            print(f"  first violation: [{violation.invariant}] "
                  f"t={violation.time:.2f}s r{violation.replica}")
            print(f"    {violation.detail}\n")
            return spec, result
    raise SystemExit("expected the broken quorum to fork within 40 trials")


def act_three_shrink_and_replay(spec, result) -> None:
    print("=" * 72)
    print("Act 3: shrink to a minimal repro, serialize, replay")
    print("=" * 72)
    shrunk, shrunk_result = shrink_schedule(spec, result.schedule)
    print(f"  {len(result.schedule)} fault(s) shrank to {len(shrunk)}:")
    for line in shrunk.describe():
        print(f"    - {line}")
    path = os.path.join(tempfile.mkdtemp(prefix="banyan-chaos-"), "repro.json")
    write_repro(path, shrunk_result, original=result.schedule)
    print(f"  repro written to {path}")
    replayed = replay_repro(path)
    assert replayed.failed, "a repro must fail on replay"
    print(f"  replayed: {len(replayed.violations)} violation(s), bit-for-bit.")
    print(f"  (CLI equivalent: banyan-repro chaos --replay {path})")


def main() -> None:
    act_one_honest_campaign()
    spec, result = act_two_planted_bug()
    act_three_shrink_and_replay(spec, result)


if __name__ == "__main__":
    main()
