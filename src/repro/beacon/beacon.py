"""Beacons producing the per-round leader permutation.

A beacon maps a round number to a permutation of replica ids; the replica at
position 0 is the round's leader, and the position of a replica is its *rank*
(Section 4: "the permutation defines a different rank r ∈ [0, n−1] for each
replica").
"""

from __future__ import annotations

import hashlib
import random
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence


class Beacon(ABC):
    """Deterministic source of per-round leader permutations."""

    def __init__(self, replica_ids: Sequence[int]) -> None:
        if len(set(replica_ids)) != len(replica_ids):
            raise ValueError("replica ids must be unique")
        if not replica_ids:
            raise ValueError("at least one replica is required")
        self._replica_ids: List[int] = list(replica_ids)

    @property
    def replica_ids(self) -> List[int]:
        """The replica ids the beacon permutes."""
        return list(self._replica_ids)

    @property
    def n(self) -> int:
        """Number of replicas."""
        return len(self._replica_ids)

    @abstractmethod
    def permutation(self, round: int) -> List[int]:
        """Return the ordered permutation of replica ids for ``round``."""

    def leader(self, round: int) -> int:
        """Return the rank-0 replica of ``round``."""
        return self.permutation(round)[0]

    def rank(self, round: int, replica_id: int) -> int:
        """Return the rank of ``replica_id`` in ``round``.

        Raises:
            ValueError: if the replica is not part of the beacon's set.
        """
        permutation = self.permutation(round)
        try:
            return permutation.index(replica_id)
        except ValueError as exc:
            raise ValueError(f"replica {replica_id} not known to the beacon") from exc

    def ranks(self, round: int) -> Dict[int, int]:
        """Return the full replica-id → rank mapping for ``round``."""
        return {replica_id: rank for rank, replica_id in enumerate(self.permutation(round))}


class RoundRobinBeacon(Beacon):
    """Round-robin leader rotation, as used in the paper's evaluation.

    In round ``k`` the leader is the replica at index ``k mod n`` of the
    (sorted) replica list, and ranks continue cyclically from the leader.
    Round 0 is the genesis round and is never proposed in, but the mapping is
    defined for it anyway.
    """

    def permutation(self, round: int) -> List[int]:
        """Return the rotation of the replica list starting at ``round mod n``."""
        offset = round % self.n
        return self._replica_ids[offset:] + self._replica_ids[:offset]


class SeededPermutationBeacon(Beacon):
    """Pseudo-random permutation per round, derived from a shared seed.

    Models the "safe and live random beacon" the paper assumes: every replica
    derives the same permutation because the seed is shared, and the
    permutation is unpredictable without the seed.
    """

    def __init__(self, replica_ids: Sequence[int], seed: int = 0) -> None:
        super().__init__(replica_ids)
        self._seed = seed

    def permutation(self, round: int) -> List[int]:
        """Return the seeded pseudo-random permutation for ``round``."""
        material = f"{self._seed}:{round}".encode("utf-8")
        round_seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        rng = random.Random(round_seed)
        permutation = list(self._replica_ids)
        rng.shuffle(permutation)
        return permutation
