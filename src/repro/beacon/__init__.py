"""Leader rotation / random beacon.

The paper assumes access to shared randomness through a random beacon that
defines a per-round permutation of replicas (rank 0 = leader).  The paper's
own evaluation replaces the beacon by round-robin rotation (Section 9.1); we
provide both, behind a common :class:`repro.beacon.beacon.Beacon` interface.
"""

from repro.beacon.beacon import Beacon, RoundRobinBeacon, SeededPermutationBeacon

__all__ = ["Beacon", "RoundRobinBeacon", "SeededPermutationBeacon"]
