"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    banyan-repro table1 [--f 6 --p 1]
    banyan-repro figure 6a [--duration 20]
    banyan-repro figure 6d
    banyan-repro run --protocol banyan --n 19 --f 6 --p 1 --payload 400000
    banyan-repro list

The output is plain text: the same rows/series the paper reports, rendered
with :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.eval import scenarios
from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.table1 import table1_rows
from repro.net.topology import four_global_datacenters, four_us_datacenters, worldwide_datacenters
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import available_protocols

_FIGURES = {
    "6a": scenarios.figure_6a,
    "6b": scenarios.figure_6b,
    "6c": scenarios.figure_6c,
    "6d": scenarios.figure_6d,
    "6e": scenarios.figure_6e,
    "ablation-p": scenarios.ablation_p_sweep,
    "ablation-stragglers": scenarios.ablation_stragglers,
}

_TOPOLOGIES = {
    "global4": four_global_datacenters,
    "us4": four_us_datacenters,
    "worldwide": worldwide_datacenters,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="banyan-repro",
        description="Reproduce the evaluation of 'Banyan: Fast Rotating Leader BFT'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table_parser = subparsers.add_parser("table1", help="print the analytic Table 1")
    table_parser.add_argument("--f", type=int, default=1, help="Byzantine bound f")
    table_parser.add_argument("--p", type=int, default=1, help="fast-path parameter p")

    figure_parser = subparsers.add_parser("figure", help="reproduce one evaluation figure")
    figure_parser.add_argument("name", choices=sorted(_FIGURES), help="figure to reproduce")
    figure_parser.add_argument("--duration", type=float, default=None,
                               help="simulated duration per experiment (seconds)")
    figure_parser.add_argument("--seed", type=int, default=0, help="simulation seed")

    run_parser = subparsers.add_parser("run", help="run a single custom experiment")
    run_parser.add_argument("--protocol", choices=available_protocols(), default="banyan")
    run_parser.add_argument("--n", type=int, default=19)
    run_parser.add_argument("--f", type=int, default=6)
    run_parser.add_argument("--p", type=int, default=1)
    run_parser.add_argument("--payload", type=int, default=400_000, help="payload size in bytes")
    run_parser.add_argument("--duration", type=float, default=20.0)
    run_parser.add_argument("--topology", choices=sorted(_TOPOLOGIES), default="global4")
    run_parser.add_argument("--seed", type=int, default=0)

    subparsers.add_parser("list", help="list available protocols and figures")
    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = table1_rows(f=args.f, p=args.p)
    headers = ["protocol", "finalization_latency", "finalization_requirement",
               "creation_latency", "creation_requirement", "replicas", "rotating_leaders"]
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    factory = _FIGURES[args.name]
    kwargs = {"seed": args.seed}
    if args.duration is not None:
        kwargs["duration"] = args.duration
    figure = factory(**kwargs)
    print(figure.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    params = ProtocolParams(n=args.n, f=args.f, p=args.p, payload_size=args.payload,
                            rank_delay=scenarios.GLOBAL_RANK_DELAY)
    topology = _TOPOLOGIES[args.topology](args.n)
    config = ExperimentConfig(protocol=args.protocol, params=params, topology=topology,
                              duration=args.duration, seed=args.seed)
    result = run_experiment(config)
    row = result.row()
    print(format_table(sorted(row), [[row[key] for key in sorted(row)]]))
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("protocols:", ", ".join(available_protocols()))
    print("figures:  ", ", ".join(sorted(_FIGURES)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
