"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    banyan-repro table1 [--f 6 --p 1]
    banyan-repro figure 6a [--duration 20]
    banyan-repro figure 6d --jobs 4 --seeds 5 --cache-dir .banyan-cache
    banyan-repro run --protocol banyan --n 19 --f 6 --p 1 --payload 400000
    banyan-repro run --n 19 --f 6 --transport contended --uplink-mbps 50
    banyan-repro run --n 19 --f 6 --compute crypto --compute-scale 4
    banyan-repro figure uplink --seeds 3 --jobs 4
    banyan-repro figure crypto --jobs 4
    banyan-repro workload saturation --rates 10,30,60,120 --jobs 4
    banyan-repro workload flash-crowd --burst-rate 250
    banyan-repro chaos --trials 200 --seed 0 --jobs 4
    banyan-repro chaos --protocol banyan --trials 50 --shrink
    banyan-repro chaos --replay .banyan-chaos/chaos-repro-icc-broken-seed0-trial13.json
    banyan-repro cluster --n 4 --protocol banyan --duration 5 --check-invariants
    banyan-repro cluster --protocol all --rate 100 --tx-size 256
    banyan-repro cluster --replay .banyan-chaos/chaos-repro-banyan-seed0-trial7.json
    banyan-repro list

The output is plain text: the same rows/series the paper reports, rendered
with :mod:`repro.analysis.report`.  Every experiment-running subcommand
accepts ``--jobs`` (parallel worker processes), ``--seeds`` (independent
replications aggregated into mean ± 95% CI columns), ``--cache-dir``
(skip cells that already ran), and ``--no-cache``; progress is reported on
stderr so stdout stays a clean table.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.analysis.report import format_table, render_timeseries
from repro.eval import scenarios
from repro.eval.plan import ExperimentPlan, ExperimentSpec
from repro.eval.runner import ProgressEvent
from repro.eval.table1 import table1_rows
from repro.net.latency import available_latency_models
from repro.net.topology import TOPOLOGY_FACTORIES
from repro.net.transport import available_transports
from repro.runtime.compute import available_compute_models
from repro.runtime.scheduler import SCHEDULERS
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import available_protocols

_FIGURES = {
    "6a": scenarios.figure_6a,
    "6b": scenarios.figure_6b,
    "6c": scenarios.figure_6c,
    "6d": scenarios.figure_6d,
    "6e": scenarios.figure_6e,
    "ablation-p": scenarios.ablation_p_sweep,
    "ablation-stragglers": scenarios.ablation_stragglers,
    "uplink": scenarios.figure_uplink_contention,
    "crypto": scenarios.figure_crypto_bound,
}

_WORKLOADS = {
    "saturation": scenarios.saturation_sweep,
    "flash-crowd": scenarios.flash_crowd,
}


def _rate_list(text: str) -> List[float]:
    """Parse a comma-separated rate list, e.g. ``"10,30,60"``."""
    try:
        rates = [float(rate) for rate in text.split(",") if rate.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid rate list {text!r}")
    if not rates or any(not math.isfinite(rate) or rate <= 0 for rate in rates):
        raise argparse.ArgumentTypeError("rates must be finite positive numbers")
    return rates


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep-runner flags shared by ``figure``, ``run``, and ``workload``."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default: 1, serial)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="independent replications per cell; > 1 aggregates "
                             "rows into mean ± 95%% CI columns")
    parser.add_argument("--cache-dir", default=None,
                        help="directory of per-experiment JSON results; "
                             "re-runs skip cells already present")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore cached results (they are still refreshed)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="banyan-repro",
        description="Reproduce the evaluation of 'Banyan: Fast Rotating Leader BFT'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table_parser = subparsers.add_parser("table1", help="print the analytic Table 1")
    table_parser.add_argument("--f", type=int, default=1, help="Byzantine bound f")
    table_parser.add_argument("--p", type=int, default=1, help="fast-path parameter p")

    figure_parser = subparsers.add_parser("figure", help="reproduce one evaluation figure")
    figure_parser.add_argument("name", choices=sorted(_FIGURES), help="figure to reproduce")
    figure_parser.add_argument("--duration", type=float, default=None,
                               help="simulated duration per experiment (seconds)")
    figure_parser.add_argument("--warmup", type=float, default=None,
                               help="seconds excluded from the measurements "
                                    "(default: the figure's preset)")
    figure_parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    _add_runner_arguments(figure_parser)

    run_parser = subparsers.add_parser("run", help="run a single custom experiment")
    run_parser.add_argument("--protocol", choices=available_protocols(), default="banyan")
    run_parser.add_argument("--n", type=int, default=19)
    run_parser.add_argument("--f", type=int, default=6)
    run_parser.add_argument("--p", type=int, default=1)
    run_parser.add_argument("--payload", type=int, default=400_000, help="payload size in bytes")
    run_parser.add_argument("--duration", type=float, default=20.0)
    run_parser.add_argument("--topology", choices=sorted(TOPOLOGY_FACTORIES), default="global4")
    run_parser.add_argument("--latency-model", choices=available_latency_models(),
                            default="geo",
                            help="topology latency model: geodesic estimate or "
                                 "the measured inter-region RTT matrix")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--transport", choices=available_transports(),
                            default="direct",
                            help="dissemination strategy (default: direct)")
    run_parser.add_argument("--uplink-mbps", type=float, default=None,
                            help="per-replica NIC capacity in Mbit/s for the "
                                 "contended transport (default: 1000)")
    run_parser.add_argument("--relays", type=int, default=None,
                            help="relay fan-out for the relay transport (default: 2)")
    run_parser.add_argument("--compute", choices=available_compute_models(),
                            default="zero",
                            help="replica compute model (default: zero — "
                                 "message handling is free)")
    run_parser.add_argument("--compute-scale", type=float, default=None,
                            help="cost multiplier for the crypto compute "
                                 "model (default: 1.0)")
    run_parser.add_argument("--scheduler", choices=SCHEDULERS, default="auto",
                            help="event-scheduler backend (default: auto — "
                                 "calendar queue on large jittered runs, "
                                 "binary heap otherwise; executions are "
                                 "byte-identical either way)")
    run_parser.add_argument("--profile", action="store_true",
                            help="run one replication under cProfile and dump "
                                 "the top-25 cumulative functions plus "
                                 "per-event-kind counts to stderr")
    run_parser.add_argument("--profile-out", metavar="PATH", default=None,
                            help="with --profile (implied), also dump the raw "
                                 "pstats data to PATH for offline analysis "
                                 "(python -m pstats PATH / snakeviz)")
    _add_runner_arguments(run_parser)

    workload_parser = subparsers.add_parser(
        "workload", help="run a client-workload scenario (end-to-end tx latency)"
    )
    workload_parser.add_argument("name", choices=sorted(_WORKLOADS),
                                 help="workload scenario to run")
    workload_parser.add_argument("--protocol", choices=available_protocols(),
                                 default=None)
    workload_parser.add_argument("--n", type=int, default=None)
    workload_parser.add_argument("--f", type=int, default=None)
    workload_parser.add_argument("--p", type=int, default=None)
    workload_parser.add_argument("--tx-size", type=int, default=None,
                                 help="transaction size in bytes")
    workload_parser.add_argument("--max-block-bytes", type=int, default=None,
                                 help="per-proposal byte budget drained from the mempool")
    workload_parser.add_argument("--duration", type=float, default=None,
                                 help="simulated duration (seconds)")
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.add_argument("--rates", type=_rate_list, default=None,
                                 help="saturation sweep rates, e.g. 10,30,60,120 (tx/s)")
    workload_parser.add_argument("--base-rate", type=float, default=None,
                                 help="flash-crowd baseline rate (tx/s)")
    workload_parser.add_argument("--burst-rate", type=float, default=None,
                                 help="flash-crowd burst rate (tx/s)")
    _add_runner_arguments(workload_parser)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="randomized fault-schedule exploration with invariant checking",
    )
    chaos_parser.add_argument("--trials", type=int, default=50,
                              help="number of seeded trials (default: 50)")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="campaign base seed")
    chaos_parser.add_argument("--protocol", default="all",
                              help="protocol to stress, or 'all' to rotate "
                                   "through banyan/icc/hotstuff/streamlet "
                                   "(default: all)")
    chaos_parser.add_argument("--n", type=int, default=4,
                              help="replica count (default: 4)")
    chaos_parser.add_argument("--f", type=int, default=None,
                              help="fault bound (default: largest sound f)")
    chaos_parser.add_argument("--p", type=int, default=1,
                              help="fast-path parameter (default: 1)")
    chaos_parser.add_argument("--duration", type=float, default=15.0,
                              help="simulated seconds per trial (default: 15; "
                                   "short runs still check safety but may "
                                   "leave no tail for the liveness check)")
    chaos_parser.add_argument("--shrink", action=argparse.BooleanOptionalAction,
                              default=True,
                              help="shrink failing schedules to minimal "
                                   "repros (default: on)")
    chaos_parser.add_argument("--repro-dir", default=".banyan-chaos",
                              help="directory for shrunk-repro JSON files")
    chaos_parser.add_argument("--replay", default=None, metavar="FILE",
                              help="replay a shrunk repro JSON instead of "
                                   "running a campaign")
    chaos_parser.add_argument("--jobs", type=int, default=1,
                              help="parallel worker processes (default: 1)")
    chaos_parser.add_argument("--cache-dir", default=None,
                              help="directory of per-trial JSON results; "
                                   "re-runs skip trials already present")
    chaos_parser.add_argument("--no-cache", action="store_true",
                              help="ignore cached results (still refreshed)")

    cluster_parser = subparsers.add_parser(
        "cluster",
        help="run a real n-replica TCP cluster on localhost (processes, "
             "sockets, monotonic clocks) and cross-validate it against the "
             "simulator's invariants",
    )
    cluster_parser.add_argument("--protocol", default="banyan",
                                help="protocol to run, or 'all' to run each of "
                                     "banyan/icc/hotstuff/streamlet in turn "
                                     "(default: banyan)")
    cluster_parser.add_argument("--n", type=int, default=4,
                                help="replica count (default: 4)")
    cluster_parser.add_argument("--f", type=int, default=None,
                                help="fault bound (default: largest sound f)")
    cluster_parser.add_argument("--p", type=int, default=None,
                                help="fast-path parameter (default: max(1, f))")
    cluster_parser.add_argument("--duration", type=float, default=10.0,
                                help="wall-clock seconds of protocol time "
                                     "(default: 10)")
    cluster_parser.add_argument("--rank-delay", type=float, default=0.05,
                                help="per-rank delay 2Δ in seconds "
                                     "(default: 0.05 — localhost is fast)")
    cluster_parser.add_argument("--round-timeout", type=float, default=1.0,
                                help="view/epoch timeout in seconds (default: 1)")
    cluster_parser.add_argument("--payload", type=int, default=0,
                                help="synthetic payload bytes per proposal when "
                                     "the mempool is empty (default: 0)")
    cluster_parser.add_argument("--rate", type=float, default=0.0,
                                help="aggregate open-loop client rate in tx/s "
                                     "(default: 0, no workload clients)")
    cluster_parser.add_argument("--tx-size", type=int, default=128,
                                help="workload transaction size in bytes "
                                     "(default: 128)")
    cluster_parser.add_argument("--clients", type=int, default=2,
                                help="number of workload client tasks "
                                     "(default: 2)")
    cluster_parser.add_argument("--seed", type=int, default=0,
                                help="base seed for fault/workload RNGs")
    cluster_parser.add_argument("--base-port", type=int, default=None,
                                help="first TCP port of a contiguous range "
                                     "(default: ask the OS for free ports)")
    cluster_parser.add_argument("--log-dir", default=None,
                                help="directory for per-replica configs, "
                                     "commit logs, and summaries (default: a "
                                     "fresh temp directory)")
    cluster_parser.add_argument("--check-invariants", action="store_true",
                                help="cross-validate the real commit logs "
                                     "against the simulator's invariant "
                                     "checker; violations fail the run")
    cluster_parser.add_argument("--replay", default=None, metavar="FILE",
                                help="replay a shrunk chaos repro JSON at the "
                                     "socket level instead of a clean run")

    subparsers.add_parser("list", help="list available protocols, figures, and workloads")
    return parser


def _print_progress(event: ProgressEvent) -> None:
    """Stderr progress line per completed experiment (stdout stays a table)."""
    spec = event.spec
    suffix = " (cached)" if event.cached else ""
    print(f"[{event.completed}/{event.total}] {spec.resolved_label()}"
          f" {spec.cell or 'run'} rep={spec.replication}{suffix}",
          file=sys.stderr)


def _runner_kwargs(args: argparse.Namespace) -> dict:
    """Translate the shared runner flags into scenario keyword arguments."""
    kwargs = {
        "seeds": args.seeds,
        "jobs": args.jobs,
        "cache_dir": args.cache_dir,
        "use_cache": not args.no_cache,
    }
    if args.jobs > 1 or args.seeds > 1 or args.cache_dir is not None:
        kwargs["progress"] = _print_progress
    return kwargs


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = table1_rows(f=args.f, p=args.p)
    headers = ["protocol", "finalization_latency", "finalization_requirement",
               "creation_latency", "creation_requirement", "replicas", "rotating_leaders"]
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    factory = _FIGURES[args.name]
    kwargs = {"seed": args.seed, **_runner_kwargs(args)}
    if args.duration is not None:
        kwargs["duration"] = args.duration
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    figure = factory(**kwargs)
    print(figure.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    params = ProtocolParams(n=args.n, f=args.f, p=args.p, payload_size=args.payload,
                            rank_delay=scenarios.GLOBAL_RANK_DELAY)
    if args.uplink_mbps is not None and args.transport != "contended":
        print("banyan-repro run: error: --uplink-mbps applies only to "
              "--transport contended", file=sys.stderr)
        return 2
    if args.relays is not None and args.transport != "relay":
        print("banyan-repro run: error: --relays applies only to "
              "--transport relay", file=sys.stderr)
        return 2
    if args.compute_scale is not None and args.compute == "zero":
        print("banyan-repro run: error: --compute-scale applies only to "
              "--compute crypto", file=sys.stderr)
        return 2
    spec = ExperimentSpec(protocol=args.protocol, params=params,
                          topology=args.topology, duration=args.duration,
                          seed=args.seed, transport=args.transport,
                          uplink_mbps=args.uplink_mbps,
                          relays=args.relays if args.relays is not None else 2,
                          compute=args.compute,
                          compute_scale=(args.compute_scale
                                         if args.compute_scale is not None else 1.0),
                          latency_model=args.latency_model,
                          scheduler=args.scheduler)
    if args.profile or args.profile_out:
        return _run_profiled(spec, profile_out=args.profile_out)
    plan = ExperimentPlan(name="run", title="custom experiment",
                          specs=[spec]).with_replications(args.seeds)
    runner = _runner_kwargs(args)
    runner.pop("seeds")
    figure = scenarios.run_figure(plan, **runner)
    (row,), = (rows for rows in figure.series.values())
    print(format_table(sorted(row), [[row[key] for key in sorted(row)]]))
    return 0


def _run_profiled(spec: ExperimentSpec, profile_out: Optional[str] = None) -> int:
    """Run one replication of ``spec`` under cProfile.

    The result row prints to stdout as usual; the profile (top 25 by
    cumulative time) and the simulator's per-event-kind counts go to
    stderr, so ``banyan-repro run --profile 2>profile.txt`` separates the
    two.  With ``profile_out`` the raw pstats data is additionally dumped
    to that path (loadable via ``python -m pstats`` or snakeviz).  This
    bypasses the plan runner — the profile must capture the simulation
    itself, not a worker pool.
    """
    import cProfile
    import pstats

    from repro.eval.experiment import run_experiment

    captured = {}
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_experiment(spec.to_config(),
                            on_simulation=lambda sim: captured.update(sim=sim))
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stderr)
    if profile_out:
        stats.dump_stats(profile_out)
    stats.sort_stats("cumulative").print_stats(25)
    counts = captured["sim"].event_counts()
    print("scheduled events by kind:", file=sys.stderr)
    for kind in sorted(counts):
        print(f"  {kind:>16}: {counts[kind]}", file=sys.stderr)
    row = result.row()
    print(format_table(sorted(row), [[row[key] for key in sorted(row)]]))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    # None-valued flags fall through to the scenario defaults.
    kwargs = {"seed": args.seed, **_runner_kwargs(args)}
    for name in ("protocol", "n", "f", "p", "tx_size", "max_block_bytes",
                 "duration"):
        value = getattr(args, name)
        if value is not None:
            kwargs[name] = value
    try:
        if args.name == "saturation":
            if args.base_rate is not None or args.burst_rate is not None:
                print("banyan-repro workload: error: --base-rate/--burst-rate "
                      "apply only to flash-crowd", file=sys.stderr)
                return 2
            if args.rates is not None:
                kwargs["rates"] = args.rates
            figure = scenarios.saturation_sweep(**kwargs)
        else:
            if args.rates is not None:
                print("banyan-repro workload: error: --rates applies only to "
                      "saturation", file=sys.stderr)
                return 2
            if args.base_rate is not None:
                kwargs["base_rate"] = args.base_rate
            if args.burst_rate is not None:
                kwargs["burst_rate"] = args.burst_rate
            figure = scenarios.flash_crowd(**kwargs)
    except ValueError as exc:
        # Invalid workload/protocol configurations (e.g. --tx-size above
        # --max-block-bytes) surface as friendly CLI errors.
        print(f"banyan-repro workload: error: {exc}", file=sys.stderr)
        return 2
    print(figure.render())
    # The story behind the table is in the occupancy curves: show them
    # inline, labelled with the offered rate that produced each one.  With
    # --seeds > 1 only the first replication of each cell is charted — the
    # table already carries the cross-replication statistics.
    charted = set()
    for result in figure.results:
        if result.workload is not None and result.workload.occupancy:
            cell = (result.label, result.config.workload.rate)
            if cell in charted:
                continue
            charted.add(cell)
            samples = result.workload.occupancy
            rate = result.config.workload.rate
            print()
            print(render_timeseries(
                f"mempool occupancy over time [{result.label} @ {rate:g} tx/s]",
                [sample.time for sample in samples],
                [float(sample.transactions) for sample in samples],
                unit=" tx",
            ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily: the chaos engine pulls in the whole simulator stack,
    # which the table/list subcommands do not need.
    from repro.chaos import engine as chaos_engine

    if args.replay is not None:
        try:
            result = chaos_engine.replay_repro(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            print(f"banyan-repro chaos: error: cannot replay {args.replay!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"replayed {result.spec.protocol} seed={result.spec.seed} "
              f"trial={result.spec.trial} with {len(result.schedule)} fault(s):")
        for line in result.schedule.describe():
            print(f"  - {line}")
        if result.failed:
            print(f"{len(result.violations)} violation(s):")
            for violation in result.violations:
                print(f"  [{violation.invariant}] t={violation.time:.3f}s "
                      f"r{violation.replica}: {violation.detail}")
            return 1
        print("no violations (the repro no longer fails)")
        return 0

    if args.protocol == "all":
        protocols = chaos_engine.DEFAULT_PROTOCOLS
    else:
        protocols = (args.protocol,)
    progress = _print_progress if (args.jobs > 1 or args.cache_dir) else None
    try:
        report = chaos_engine.run_chaos(
            trials=args.trials, seed=args.seed, protocols=protocols,
            n=args.n, f=args.f, p=args.p, duration=args.duration,
            jobs=args.jobs, cache_dir=args.cache_dir,
            use_cache=not args.no_cache, shrink=args.shrink,
            repro_dir=args.repro_dir, progress=progress,
        )
    except (KeyError, ValueError) as exc:
        print(f"banyan-repro chaos: error: {exc}", file=sys.stderr)
        return 2
    rows = report.summary_rows()
    headers = ["protocol", "trials", "failures", "faults_injected",
               "liveness_checked", "honest_commits"]
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    if not report.failures:
        print(f"\n{len(report.results)} trial(s), zero invariant violations.")
        return 0
    print(f"\n{len(report.failures)} failing trial(s):")
    for result in report.failures:
        print(f"  {result.spec.protocol} seed={result.spec.seed} "
              f"trial={result.spec.trial}:")
        for violation in result.violations[:5]:
            print(f"    [{violation.invariant}] t={violation.time:.3f}s "
                  f"r{violation.replica}: {violation.detail}")
    for path in report.repro_paths:
        print(f"  shrunk repro written: {path}")
        print(f"    replay with: banyan-repro chaos --replay {path}")
    return 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    # Imported lazily: the cluster harness pulls in the chaos stack, which
    # the table/list subcommands do not need.
    import json
    from pathlib import Path

    from repro.chaos.engine import DEFAULT_PROTOCOLS, ChaosTrialSpec
    from repro.chaos.schedule import ChaosSchedule
    from repro.cluster.harness import run_local_cluster

    common = dict(
        n=args.n, f=args.f, p=args.p, duration=args.duration,
        rank_delay=args.rank_delay, round_timeout=args.round_timeout,
        payload_size=args.payload, seed=args.seed, rate=args.rate,
        tx_size=args.tx_size, clients=args.clients,
        base_port=args.base_port,
    )

    if args.replay is not None:
        try:
            with open(args.replay, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            spec = ChaosTrialSpec.from_dict(data["spec"])
            schedule = ChaosSchedule.from_dict(data["schedule"])
        except (OSError, ValueError, KeyError) as exc:
            print(f"banyan-repro cluster: error: cannot replay "
                  f"{args.replay!r}: {exc}", file=sys.stderr)
            return 2
        # The repro's spec defines the trial; CLI flags override only the
        # cluster-execution knobs (ports, log dir, workload).
        common.update(n=spec.n, f=spec.f, p=spec.p,
                      rank_delay=spec.rank_delay,
                      round_timeout=spec.round_timeout,
                      payload_size=spec.payload_size,
                      duration=args.duration if args.duration != 10.0
                      else spec.duration)
        print(f"replaying {spec.protocol} seed={spec.seed} "
              f"trial={spec.trial} against a real {spec.n}-replica cluster, "
              f"{len(schedule)} fault(s):", file=sys.stderr)
        for line in schedule.describe():
            print(f"  - {line}", file=sys.stderr)
        result = run_local_cluster(
            spec.protocol, schedule=schedule,
            liveness_bound=spec.liveness_bound(), check_invariants=True,
            log_dir=Path(args.log_dir) if args.log_dir else None,
            **{k: v for k, v in common.items() if k != "n"},
            n=common["n"],
        )
        print(f"replica exit codes: {result.exit_codes}")
        print(f"committed blocks (observer): {result.committed_blocks}")
        if result.violations:
            print(f"{len(result.violations)} violation(s):")
            for violation in result.violations:
                print(f"  [{violation.invariant}] t={violation.time:.3f}s "
                      f"r{violation.replica}: {violation.detail}")
            print(f"commit logs: {result.log_dir}")
            return 1
        print("no violations on the real cluster")
        return 0

    if args.protocol == "all":
        protocols = DEFAULT_PROTOCOLS
    else:
        if args.protocol not in available_protocols():
            print(f"banyan-repro cluster: error: unknown protocol "
                  f"{args.protocol!r}", file=sys.stderr)
            return 2
        protocols = (args.protocol,)

    headers = ["protocol", "blocks", "fast", "slow", "mean_interval_ms",
               "mean_latency_ms", "tx_committed", "violations"]
    rows = []
    failed = False
    for protocol in protocols:
        print(f"cluster: {protocol} n={args.n} duration={args.duration:g}s",
              file=sys.stderr)
        result = run_local_cluster(
            protocol, check_invariants=args.check_invariants,
            log_dir=(Path(args.log_dir) / protocol if args.log_dir else None),
            **common,
        )
        metrics = result.metrics
        intervals = metrics.block_intervals
        latencies = [sample.latency for sample in metrics.latency_samples]
        tx = (f"{len(result.workload.committed)}/"
              f"{len(result.workload.submitted)}"
              if result.workload.submitted else "-")
        rows.append([
            protocol, metrics.committed_blocks, metrics.fast_finalized,
            metrics.slow_finalized,
            f"{1000 * sum(intervals) / len(intervals):.1f}" if intervals else "-",
            f"{1000 * sum(latencies) / len(latencies):.1f}" if latencies else "-",
            tx, len(result.violations),
        ])
        bad_exit = any(code not in (0, -15) for code in result.exit_codes.values())
        if result.committed_blocks == 0 or result.violations or bad_exit:
            failed = True
            print(f"cluster: {protocol} FAILED "
                  f"(blocks={result.committed_blocks}, "
                  f"violations={len(result.violations)}, "
                  f"exit_codes={result.exit_codes}); "
                  f"commit logs: {result.log_dir}", file=sys.stderr)
            for violation in result.violations[:5]:
                print(f"  [{violation.invariant}] t={violation.time:.3f}s "
                      f"r{violation.replica}: {violation.detail}",
                      file=sys.stderr)
    print(format_table(headers, rows))
    return 1 if failed else 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("protocols:", ", ".join(available_protocols()))
    print("figures:  ", ", ".join(sorted(_FIGURES)))
    print("workloads:", ", ".join(sorted(_WORKLOADS)))
    print("latency models:", ", ".join(available_latency_models()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "workload": _cmd_workload,
        "chaos": _cmd_chaos,
        "cluster": _cmd_cluster,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
