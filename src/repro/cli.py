"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    banyan-repro table1 [--f 6 --p 1]
    banyan-repro figure 6a [--duration 20]
    banyan-repro figure 6d
    banyan-repro run --protocol banyan --n 19 --f 6 --p 1 --payload 400000
    banyan-repro workload saturation --rates 10,30,60,120
    banyan-repro workload flash-crowd --burst-rate 250
    banyan-repro list

The output is plain text: the same rows/series the paper reports, rendered
with :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.analysis.report import format_table, render_timeseries
from repro.eval import scenarios
from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.eval.table1 import table1_rows
from repro.net.topology import four_global_datacenters, four_us_datacenters, worldwide_datacenters
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import available_protocols

_FIGURES = {
    "6a": scenarios.figure_6a,
    "6b": scenarios.figure_6b,
    "6c": scenarios.figure_6c,
    "6d": scenarios.figure_6d,
    "6e": scenarios.figure_6e,
    "ablation-p": scenarios.ablation_p_sweep,
    "ablation-stragglers": scenarios.ablation_stragglers,
}

_TOPOLOGIES = {
    "global4": four_global_datacenters,
    "us4": four_us_datacenters,
    "worldwide": worldwide_datacenters,
}

_WORKLOADS = {
    "saturation": scenarios.saturation_sweep,
    "flash-crowd": scenarios.flash_crowd,
}


def _rate_list(text: str) -> List[float]:
    """Parse a comma-separated rate list, e.g. ``"10,30,60"``."""
    try:
        rates = [float(rate) for rate in text.split(",") if rate.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid rate list {text!r}")
    if not rates or any(not math.isfinite(rate) or rate <= 0 for rate in rates):
        raise argparse.ArgumentTypeError("rates must be finite positive numbers")
    return rates


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="banyan-repro",
        description="Reproduce the evaluation of 'Banyan: Fast Rotating Leader BFT'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table_parser = subparsers.add_parser("table1", help="print the analytic Table 1")
    table_parser.add_argument("--f", type=int, default=1, help="Byzantine bound f")
    table_parser.add_argument("--p", type=int, default=1, help="fast-path parameter p")

    figure_parser = subparsers.add_parser("figure", help="reproduce one evaluation figure")
    figure_parser.add_argument("name", choices=sorted(_FIGURES), help="figure to reproduce")
    figure_parser.add_argument("--duration", type=float, default=None,
                               help="simulated duration per experiment (seconds)")
    figure_parser.add_argument("--seed", type=int, default=0, help="simulation seed")

    run_parser = subparsers.add_parser("run", help="run a single custom experiment")
    run_parser.add_argument("--protocol", choices=available_protocols(), default="banyan")
    run_parser.add_argument("--n", type=int, default=19)
    run_parser.add_argument("--f", type=int, default=6)
    run_parser.add_argument("--p", type=int, default=1)
    run_parser.add_argument("--payload", type=int, default=400_000, help="payload size in bytes")
    run_parser.add_argument("--duration", type=float, default=20.0)
    run_parser.add_argument("--topology", choices=sorted(_TOPOLOGIES), default="global4")
    run_parser.add_argument("--seed", type=int, default=0)

    workload_parser = subparsers.add_parser(
        "workload", help="run a client-workload scenario (end-to-end tx latency)"
    )
    workload_parser.add_argument("name", choices=sorted(_WORKLOADS),
                                 help="workload scenario to run")
    workload_parser.add_argument("--protocol", choices=available_protocols(),
                                 default=None)
    workload_parser.add_argument("--n", type=int, default=None)
    workload_parser.add_argument("--f", type=int, default=None)
    workload_parser.add_argument("--p", type=int, default=None)
    workload_parser.add_argument("--tx-size", type=int, default=None,
                                 help="transaction size in bytes")
    workload_parser.add_argument("--max-block-bytes", type=int, default=None,
                                 help="per-proposal byte budget drained from the mempool")
    workload_parser.add_argument("--duration", type=float, default=None,
                                 help="simulated duration (seconds)")
    workload_parser.add_argument("--seed", type=int, default=0)
    workload_parser.add_argument("--rates", type=_rate_list, default=None,
                                 help="saturation sweep rates, e.g. 10,30,60,120 (tx/s)")
    workload_parser.add_argument("--base-rate", type=float, default=None,
                                 help="flash-crowd baseline rate (tx/s)")
    workload_parser.add_argument("--burst-rate", type=float, default=None,
                                 help="flash-crowd burst rate (tx/s)")

    subparsers.add_parser("list", help="list available protocols, figures, and workloads")
    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = table1_rows(f=args.f, p=args.p)
    headers = ["protocol", "finalization_latency", "finalization_requirement",
               "creation_latency", "creation_requirement", "replicas", "rotating_leaders"]
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    factory = _FIGURES[args.name]
    kwargs = {"seed": args.seed}
    if args.duration is not None:
        kwargs["duration"] = args.duration
    figure = factory(**kwargs)
    print(figure.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    params = ProtocolParams(n=args.n, f=args.f, p=args.p, payload_size=args.payload,
                            rank_delay=scenarios.GLOBAL_RANK_DELAY)
    topology = _TOPOLOGIES[args.topology](args.n)
    config = ExperimentConfig(protocol=args.protocol, params=params, topology=topology,
                              duration=args.duration, seed=args.seed)
    result = run_experiment(config)
    row = result.row()
    print(format_table(sorted(row), [[row[key] for key in sorted(row)]]))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    # None-valued flags fall through to the scenario defaults.
    kwargs = {"seed": args.seed}
    for name in ("protocol", "n", "f", "p", "tx_size", "max_block_bytes",
                 "duration"):
        value = getattr(args, name)
        if value is not None:
            kwargs[name] = value
    try:
        if args.name == "saturation":
            if args.base_rate is not None or args.burst_rate is not None:
                print("banyan-repro workload: error: --base-rate/--burst-rate "
                      "apply only to flash-crowd", file=sys.stderr)
                return 2
            if args.rates is not None:
                kwargs["rates"] = args.rates
            figure = scenarios.saturation_sweep(**kwargs)
        else:
            if args.rates is not None:
                print("banyan-repro workload: error: --rates applies only to "
                      "saturation", file=sys.stderr)
                return 2
            if args.base_rate is not None:
                kwargs["base_rate"] = args.base_rate
            if args.burst_rate is not None:
                kwargs["burst_rate"] = args.burst_rate
            figure = scenarios.flash_crowd(**kwargs)
    except ValueError as exc:
        # Invalid workload/protocol configurations (e.g. --tx-size above
        # --max-block-bytes) surface as friendly CLI errors.
        print(f"banyan-repro workload: error: {exc}", file=sys.stderr)
        return 2
    print(figure.render())
    # The story behind the table is in the occupancy curves: show them
    # inline, labelled with the offered rate that produced each one.
    for result in figure.results:
        if result.workload is not None and result.workload.occupancy:
            samples = result.workload.occupancy
            rate = result.config.workload.rate
            print()
            print(render_timeseries(
                f"mempool occupancy over time [{result.label} @ {rate:g} tx/s]",
                [sample.time for sample in samples],
                [float(sample.transactions) for sample in samples],
                unit=" tx",
            ))
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("protocols:", ", ".join(available_protocols()))
    print("figures:  ", ", ".join(sorted(_FIGURES)))
    print("workloads:", ", ".join(sorted(_WORKLOADS)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "workload": _cmd_workload,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
