"""A deterministic replicated state machine: a key-value ledger.

SMR totally orders opaque payloads; what downstream users actually want is a
replicated application.  The examples apply finalized payloads to this simple
key-value store so that end-to-end replication (same state on every replica)
can be demonstrated and asserted in tests.

Transactions are ``SET key value`` / ``DEL key`` operations encoded in a tiny
line-based format (:func:`encode_transactions` / :func:`decode_transactions`)
so they survive the trip through a block payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Transaction:
    """A key-value operation.

    Attributes:
        op: ``"SET"`` or ``"DEL"``.
        key: the key operated on.
        value: the value for ``SET`` (``None`` for ``DEL``).
    """

    op: str
    key: str
    value: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in ("SET", "DEL"):
            raise ValueError(f"unsupported op {self.op!r}")
        if self.op == "SET" and self.value is None:
            raise ValueError("SET requires a value")
        if "\n" in self.key or (self.value and "\n" in self.value):
            raise ValueError("keys and values must not contain newlines")


def encode_transactions(transactions: Iterable[Transaction]) -> bytes:
    """Encode transactions into a payload byte string."""
    lines = []
    for transaction in transactions:
        if transaction.op == "SET":
            lines.append(f"SET\t{transaction.key}\t{transaction.value}")
        else:
            lines.append(f"DEL\t{transaction.key}")
    return "\n".join(lines).encode("utf-8")


def decode_transactions(payload: bytes) -> List[Transaction]:
    """Decode a payload back into transactions.

    Unparseable payloads (e.g. the synthetic bit-vector workload) decode to
    an empty list rather than raising, because the ledger must tolerate
    arbitrary ordered payloads.
    """
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError:
        return []
    transactions: List[Transaction] = []
    for line in text.splitlines():
        parts = line.split("\t")
        if len(parts) == 3 and parts[0] == "SET":
            transactions.append(Transaction(op="SET", key=parts[1], value=parts[2]))
        elif len(parts) == 2 and parts[0] == "DEL":
            transactions.append(Transaction(op="DEL", key=parts[1]))
    return transactions


class KeyValueLedger:
    """A deterministic key-value state machine fed by finalized payloads."""

    def __init__(self) -> None:
        self._state: Dict[str, str] = {}
        self._applied_payloads = 0
        self._applied_transactions = 0

    @property
    def applied_payloads(self) -> int:
        """Number of payloads applied so far."""
        return self._applied_payloads

    @property
    def applied_transactions(self) -> int:
        """Number of individual transactions applied so far."""
        return self._applied_transactions

    def apply_payload(self, payload: bytes) -> int:
        """Apply all transactions in ``payload``; returns how many applied."""
        transactions = decode_transactions(payload)
        for transaction in transactions:
            self._apply(transaction)
        self._applied_payloads += 1
        self._applied_transactions += len(transactions)
        return len(transactions)

    def _apply(self, transaction: Transaction) -> None:
        if transaction.op == "SET":
            self._state[transaction.key] = transaction.value or ""
        elif transaction.op == "DEL":
            self._state.pop(transaction.key, None)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Return the current value of ``key``."""
        return self._state.get(key, default)

    def snapshot(self) -> Dict[str, str]:
        """Return a copy of the full state."""
        return dict(self._state)

    def state_digest(self) -> int:
        """Return a deterministic digest of the state for cross-replica checks."""
        return hash(tuple(sorted(self._state.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyValueLedger):
            return NotImplemented
        return self._state == other._state

    def __len__(self) -> int:
        return len(self._state)
