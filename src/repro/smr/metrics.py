"""Measurement: proposal finalization latency, throughput, block intervals.

The paper's methodology (Section 9.2):

* **latency** — "the average proposal finalization time, measured at the
  respective proposer": the time from when a replica proposes a block until
  that same replica observes the block finalized.
* **throughput** — "the average number of committed bytes per second at any
  (non-faulty) replica".
* Figure 6d additionally reports the **block interval** (time between
  consecutive commits) under crash faults.
* Figure 6c reports the latency **distribution/variance**.

:class:`MetricsCollector` listens to a simulation's commit stream, pairs
commits with the proposal timestamps exposed by the protocols, and produces a
:class:`RunMetrics` summary.

When a client workload (:mod:`repro.workload`) drives the run, the workload
layer additionally produces a :class:`WorkloadMetrics` summary: true
end-to-end submit→commit latency percentiles per transaction, goodput
(committed transactions per second), mempool occupancy over time
(:class:`OccupancySample`), and drop/backpressure counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.stats import mean as _mean
from repro.analysis.stats import percentile as _percentile
from repro.analysis.stats import variance as _variance
from repro.analysis.stats import weighted_mean as _weighted_mean
from repro.analysis.stats import weighted_percentile as _weighted_percentile
from repro.runtime.simulator import CommitRecord


@dataclass(frozen=True)
class LatencySample:
    """A single proposal-finalization latency measurement.

    Attributes:
        proposer: the replica that proposed (and measured) the block.
        round: the block's round.
        latency: seconds from proposal to the proposer observing finalization.
        finalization_kind: ``"fast"`` or ``"slow"``.
    """

    proposer: int
    round: int
    latency: float
    finalization_kind: str

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "proposer": self.proposer,
            "round": self.round,
            "latency": self.latency,
            "finalization_kind": self.finalization_kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencySample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(
            proposer=int(data["proposer"]),
            round=int(data["round"]),
            latency=float(data["latency"]),
            finalization_kind=str(data["finalization_kind"]),
        )


@dataclass
class RunMetrics:
    """Aggregated metrics of one experiment run.

    Attributes:
        protocol: protocol name.
        duration: measured duration in seconds.
        latency_samples: per-proposal latency samples.
        committed_bytes: total payload bytes committed at the observer replica.
        committed_blocks: total blocks committed at the observer replica.
        block_intervals: times between consecutive commits at the observer.
        fast_finalized: number of commits finalized via the fast path.
        slow_finalized: number of commits finalized via the slow path.
        compute_busy_fractions: per-replica fraction of the run spent with
            the CPU busy handling messages (empty under the default
            zero-compute model).
        compute_queue_wait_s: per-replica total seconds deliveries spent
            waiting for the busy core (empty under zero compute).
    """

    protocol: str
    duration: float
    latency_samples: List[LatencySample] = field(default_factory=list)
    committed_bytes: int = 0
    committed_blocks: int = 0
    block_intervals: List[float] = field(default_factory=list)
    fast_finalized: int = 0
    slow_finalized: int = 0
    compute_busy_fractions: Dict[int, float] = field(default_factory=dict)
    compute_queue_wait_s: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #

    def latencies(self) -> List[float]:
        """All latency samples in seconds."""
        return [sample.latency for sample in self.latency_samples]

    @property
    def mean_latency(self) -> float:
        """Mean proposal finalization latency in seconds."""
        return _mean(self.latencies())

    @property
    def median_latency(self) -> float:
        """Median proposal finalization latency in seconds."""
        return _percentile(self.latencies(), 50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile latency in seconds."""
        return _percentile(self.latencies(), 95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile latency in seconds."""
        return _percentile(self.latencies(), 99)

    @property
    def latency_variance(self) -> float:
        """Sample variance of the latency in seconds squared."""
        return _variance(self.latencies())

    @property
    def latency_stddev(self) -> float:
        """Sample standard deviation of the latency in seconds."""
        return math.sqrt(self.latency_variance)

    @property
    def throughput_bytes_per_s(self) -> float:
        """Committed payload bytes per second at the observer replica."""
        if self.duration <= 0:
            return 0.0
        return self.committed_bytes / self.duration

    @property
    def blocks_per_s(self) -> float:
        """Committed blocks per second at the observer replica."""
        if self.duration <= 0:
            return 0.0
        return self.committed_blocks / self.duration

    @property
    def mean_block_interval(self) -> float:
        """Mean time between consecutive commits at the observer replica."""
        return _mean(self.block_intervals)

    @property
    def fast_path_ratio(self) -> float:
        """Fraction of commits finalized via the fast path."""
        total = self.fast_finalized + self.slow_finalized
        return self.fast_finalized / total if total else 0.0

    @property
    def max_busy_fraction(self) -> float:
        """Largest per-replica CPU busy fraction (0 under zero compute)."""
        return max(self.compute_busy_fractions.values(), default=0.0)

    @property
    def mean_busy_fraction(self) -> float:
        """Mean per-replica CPU busy fraction (0 under zero compute)."""
        return _mean(list(self.compute_busy_fractions.values()))

    @property
    def total_compute_queue_wait_s(self) -> float:
        """Total seconds deliveries waited for busy cores, across replicas."""
        return sum(self.compute_queue_wait_s.values())

    def summary(self) -> Dict[str, float]:
        """Return the headline numbers as a dictionary (seconds / bytes)."""
        return {
            "mean_latency_s": self.mean_latency,
            "median_latency_s": self.median_latency,
            "p95_latency_s": self.p95_latency,
            "latency_stddev_s": self.latency_stddev,
            "throughput_bytes_per_s": self.throughput_bytes_per_s,
            "blocks_per_s": self.blocks_per_s,
            "mean_block_interval_s": self.mean_block_interval,
            "fast_path_ratio": self.fast_path_ratio,
            "committed_blocks": float(self.committed_blocks),
            "max_busy_fraction": self.max_busy_fraction,
        }

    def to_dict(self) -> Dict[str, object]:
        """A lossless JSON-ready dictionary (inverse of :meth:`from_dict`).

        The compute fields are emitted only when non-empty, so metrics of
        default (zero-compute) runs serialise exactly as they did before
        the compute layer existed and cached results stay valid.
        """
        data = {
            "protocol": self.protocol,
            "duration": self.duration,
            "latency_samples": [sample.to_dict() for sample in self.latency_samples],
            "committed_bytes": self.committed_bytes,
            "committed_blocks": self.committed_blocks,
            "block_intervals": list(self.block_intervals),
            "fast_finalized": self.fast_finalized,
            "slow_finalized": self.slow_finalized,
        }
        if self.compute_busy_fractions:
            # JSON object keys are strings; from_dict restores the int ids.
            data["compute_busy_fractions"] = {
                str(rid): busy for rid, busy in self.compute_busy_fractions.items()
            }
        if self.compute_queue_wait_s:
            data["compute_queue_wait_s"] = {
                str(rid): wait for rid, wait in self.compute_queue_wait_s.items()
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Rebuild the metrics from :meth:`to_dict` output."""
        return cls(
            protocol=str(data["protocol"]),
            duration=float(data["duration"]),
            latency_samples=[LatencySample.from_dict(sample)
                             for sample in data.get("latency_samples", [])],
            committed_bytes=int(data["committed_bytes"]),
            committed_blocks=int(data["committed_blocks"]),
            block_intervals=[float(v) for v in data.get("block_intervals", [])],
            fast_finalized=int(data["fast_finalized"]),
            slow_finalized=int(data["slow_finalized"]),
            compute_busy_fractions={
                int(rid): float(busy)
                for rid, busy in data.get("compute_busy_fractions", {}).items()
            },
            compute_queue_wait_s={
                int(rid): float(wait)
                for rid, wait in data.get("compute_queue_wait_s", {}).items()
            },
        )


@dataclass(frozen=True)
class OccupancySample:
    """A point-in-time measurement of the replicas' mempool occupancy.

    Attributes:
        time: simulation time of the sample.
        transactions: total pending transactions across all mempools.
        total_bytes: total pending bytes across all mempools.
        per_replica: pending transaction count per replica id.
    """

    time: float
    transactions: int
    total_bytes: int
    per_replica: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "time": self.time,
            "transactions": self.transactions,
            "total_bytes": self.total_bytes,
            # JSON object keys are strings; from_dict restores the int ids.
            "per_replica": {str(rid): count for rid, count in self.per_replica.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OccupancySample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(
            time=float(data["time"]),
            transactions=int(data["transactions"]),
            total_bytes=int(data["total_bytes"]),
            per_replica={int(rid): int(count)
                         for rid, count in data.get("per_replica", {}).items()},
        )


@dataclass
class WorkloadMetrics:
    """End-to-end client-workload metrics of one run.

    Where :class:`RunMetrics` measures *proposal* finalization latency (the
    paper's Section 9.2 metric), this measures what a client experiences:
    the time from submitting a transaction until the first replica commits a
    block containing it.

    Attributes:
        duration: measured run duration in seconds.
        submitted: transactions submitted by clients.
        committed: transactions observed committed (deduplicated).
        dropped: transactions rejected at submission (mempool backpressure).
        committed_tx_bytes: total bytes of committed transactions.
        latencies: per-transaction submit→commit latencies in seconds.  In
            the fluid workload mode each entry is instead the latency of one
            committed flow batch, weighted by :attr:`latency_weights`.
        latency_weights: optional per-entry transaction counts matching
            ``latencies``.  ``None`` (the exact per-transaction mode) means
            unit weights.
        occupancy: mempool occupancy samples over time.
    """

    duration: float
    submitted: int = 0
    committed: int = 0
    dropped: int = 0
    committed_tx_bytes: int = 0
    latencies: List[float] = field(default_factory=list)
    occupancy: List[OccupancySample] = field(default_factory=list)
    latency_weights: Optional[List[float]] = None

    @property
    def pending(self) -> int:
        """Transactions submitted but neither committed nor dropped."""
        return self.submitted - self.committed - self.dropped

    @property
    def mean_latency(self) -> float:
        """Mean submit→commit latency in seconds."""
        if self.latency_weights is not None:
            return _weighted_mean(self.latencies, self.latency_weights)
        return _mean(self.latencies)

    def _latency_percentile(self, q: float) -> float:
        if self.latency_weights is not None:
            return _weighted_percentile(self.latencies, self.latency_weights, q)
        return _percentile(self.latencies, q)

    @property
    def p50_latency(self) -> float:
        """Median submit→commit latency in seconds."""
        return self._latency_percentile(50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile submit→commit latency in seconds."""
        return self._latency_percentile(95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile submit→commit latency in seconds."""
        return self._latency_percentile(99)

    @property
    def goodput_tx_per_s(self) -> float:
        """Committed transactions per second."""
        if self.duration <= 0:
            return 0.0
        return self.committed / self.duration

    @property
    def goodput_bytes_per_s(self) -> float:
        """Committed transaction bytes per second."""
        if self.duration <= 0:
            return 0.0
        return self.committed_tx_bytes / self.duration

    @property
    def peak_mempool_depth(self) -> int:
        """Largest total pending-transaction count observed in any sample."""
        return max((sample.transactions for sample in self.occupancy), default=0)

    @property
    def final_mempool_depth(self) -> int:
        """Total pending transactions in the last occupancy sample."""
        return self.occupancy[-1].transactions if self.occupancy else 0

    def summary(self) -> Dict[str, float]:
        """Return the headline workload numbers as a dictionary."""
        return {
            "submitted_tx": float(self.submitted),
            "committed_tx": float(self.committed),
            "dropped_tx": float(self.dropped),
            "pending_tx": float(self.pending),
            "mean_latency_s": self.mean_latency,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "p99_latency_s": self.p99_latency,
            "goodput_tx_per_s": self.goodput_tx_per_s,
            "goodput_bytes_per_s": self.goodput_bytes_per_s,
            "peak_mempool_depth": float(self.peak_mempool_depth),
            "final_mempool_depth": float(self.final_mempool_depth),
        }

    def to_dict(self) -> Dict[str, object]:
        """A lossless JSON-ready dictionary (inverse of :meth:`from_dict`).

        ``latency_weights`` is emitted only when present so exact-mode
        records keep their historical shape.
        """
        data: Dict[str, object] = {
            "duration": self.duration,
            "submitted": self.submitted,
            "committed": self.committed,
            "dropped": self.dropped,
            "committed_tx_bytes": self.committed_tx_bytes,
            "latencies": list(self.latencies),
            "occupancy": [sample.to_dict() for sample in self.occupancy],
        }
        if self.latency_weights is not None:
            data["latency_weights"] = list(self.latency_weights)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadMetrics":
        """Rebuild the metrics from :meth:`to_dict` output."""
        weights = data.get("latency_weights")
        return cls(
            duration=float(data["duration"]),
            submitted=int(data["submitted"]),
            committed=int(data["committed"]),
            dropped=int(data["dropped"]),
            committed_tx_bytes=int(data["committed_tx_bytes"]),
            latencies=[float(v) for v in data.get("latencies", [])],
            occupancy=[OccupancySample.from_dict(sample)
                       for sample in data.get("occupancy", [])],
            latency_weights=(
                None if weights is None else [float(w) for w in weights]
            ),
        )


class MetricsCollector:
    """Collects commit records and produces :class:`RunMetrics`.

    Args:
        protocol: protocol name for labelling.
        observer: replica id whose commits define throughput / intervals
            (the paper uses "any non-faulty replica"; pass one explicitly).
        warmup: measurements with commit time below this are discarded so
            start-up transients do not skew averages.
    """

    def __init__(self, protocol: str, observer: int = 0, warmup: float = 0.0) -> None:
        self.protocol = protocol
        self.observer = observer
        self.warmup = warmup
        self._observer_commits: List[CommitRecord] = []
        self._proposer_commits: Dict[int, List[CommitRecord]] = {}

    def on_commit(self, record: CommitRecord) -> None:
        """Commit-stream listener; wire it via ``Simulation.add_commit_listener``."""
        if record.commit_time < self.warmup:
            return
        if record.replica_id == self.observer:
            self._observer_commits.append(record)
        if record.replica_id == record.block.proposer:
            self._proposer_commits.setdefault(record.replica_id, []).append(record)

    def finalize(self, duration: float,
                 proposal_times: Dict[int, Dict[str, float]]) -> RunMetrics:
        """Produce the run metrics.

        Args:
            duration: measured run duration in seconds (excluding warm-up).
            proposal_times: per-replica mapping block id → proposal time, as
                exposed by each protocol's ``proposal_times`` attribute.
        """
        metrics = RunMetrics(protocol=self.protocol, duration=duration)
        previous_commit: Optional[float] = None
        for record in self._observer_commits:
            metrics.committed_blocks += 1
            metrics.committed_bytes += record.block.size
            if record.finalization_kind == "fast":
                metrics.fast_finalized += 1
            else:
                metrics.slow_finalized += 1
            if previous_commit is not None:
                metrics.block_intervals.append(record.commit_time - previous_commit)
            previous_commit = record.commit_time
        for replica_id, records in self._proposer_commits.items():
            times = proposal_times.get(replica_id, {})
            for record in records:
                proposed_at = times.get(record.block.id)
                if proposed_at is None:
                    continue
                metrics.latency_samples.append(
                    LatencySample(
                        proposer=replica_id,
                        round=record.block.round,
                        latency=record.commit_time - proposed_at,
                        finalization_kind=record.finalization_kind,
                    )
                )
        return metrics
