"""The shared quorum/certificate engine: vote tallies with threshold firing.

Every protocol in this repository turns votes into certificates the same
way — collect votes per block, suppress duplicates, fire once when a
threshold is met — yet each used to hand-roll the bookkeeping.  This module
centralises it:

* :class:`QuorumTracker` tallies votes of **one kind toward one threshold**
  (per round, in the protocols' usage): each voter counts at most once per
  block, duplicate votes are ignored, a voter observed supporting more than
  one block is recorded as a **conflicting-support observation**, and an
  optional callback fires **exactly once** per block when its tally reaches
  the threshold.  Whether conflicting support is *misbehaviour* depends on
  the vote kind's honest-voting rule: honest replicas cast at most one fast
  or finalization vote per round, so those observations are hard evidence,
  while ICC-family notarization votes may honestly support several blocks
  of one round (the set ``N``) — interpret the evidence per kind (see
  :func:`repro.byzantine.behaviors.fast_vote_equivocators` for a sound
  use).
* :class:`CertificateCollector` is the per-replica front: it lazily creates
  one tracker per ``(round, kind)`` and aggregates equivocation evidence
  across rounds, so a protocol carries a single collector instead of one
  dictionary per vote kind per round.

The engine works at any threshold — ICC's ``n - f``, Banyan's
``⌈(n+f+1)/2⌉`` notarization and ``n - p`` fast quorums, HotStuff's QC
quorum, Streamlet's ``⌈2n/3⌉`` — which is exactly what lets all four
protocols (and the Byzantine behaviour mixins) share it.

Determinism contract: iteration orders (``blocks()``, ``reached_blocks()``)
follow first-vote insertion order, matching the ``dict``-of-``set``
bookkeeping the protocols previously hand-rolled, so porting a protocol to
the engine does not perturb seeded executions.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

#: Callback invoked (exactly once per block) when a block reaches the
#: tracker's threshold.
ThresholdCallback = Callable[[Hashable], None]


class QuorumTracker:
    """Tally votes per block toward one threshold.

    Args:
        threshold: number of distinct voters at which a block's tally is
            *reached*; must be positive.
        on_threshold: optional callback fired exactly once per block, at the
            moment its tally first reaches the threshold.

    The tracker is agnostic to what a "block" or "voter" is beyond
    hashability, so unit tests can drive it with plain strings and ints.
    """

    __slots__ = ("threshold", "on_threshold", "_voters", "_by_voter",
                 "_fired", "_equivocators", "_merged_sets")

    def __init__(self, threshold: int,
                 on_threshold: Optional[ThresholdCallback] = None) -> None:
        if threshold < 1:
            raise ValueError("quorum threshold must be positive")
        self.threshold = threshold
        self.on_threshold = on_threshold
        #: Block id → distinct voters (insertion-ordered by first vote).
        self._voters: Dict[Hashable, Set[int]] = {}
        #: Voter → block ids it supported (equivocation detection).
        self._by_voter: Dict[int, Set[Hashable]] = {}
        #: Blocks whose threshold callback has fired already.
        self._fired: Set[Hashable] = set()
        self._equivocators: Set[int] = set()
        #: Block id → voter sets already merged via :meth:`add_voters`.
        #: Certificates are gossiped O(n) times each, so the same frozenset
        #: arrives over and over; its cached hash makes the repeat check
        #: O(1) instead of an O(n) set difference.
        self._merged_sets: Dict[Hashable, Set[FrozenSet[int]]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def add_vote(self, block_id: Hashable, voter: int) -> bool:
        """Count one vote; return whether it was new (duplicates: ``False``)."""
        voters = self._voters.get(block_id)
        if voters is None:
            voters = self._voters[block_id] = set()
        if voter in voters:
            return False
        voters.add(voter)
        supported = self._by_voter.get(voter)
        if supported is None:
            self._by_voter[voter] = {block_id}
        else:
            supported.add(block_id)
            if len(supported) > 1:
                self._equivocators.add(voter)
        if len(voters) >= self.threshold and block_id not in self._fired:
            self._fired.add(block_id)
            if self.on_threshold is not None:
                self.on_threshold(block_id)
        return True

    def add_votes(self, block_id: Hashable, voters: Sequence[int]) -> int:
        """Tally an ordered run of individual votes for one block; return
        how many were consumed.

        This is the batched-dispatch counterpart of calling
        :meth:`add_vote` once per voter (same duplicate and equivocation
        bookkeeping, same firing rule), with the per-vote dictionary
        lookups hoisted out of the loop.  The pass stops **immediately
        after a threshold crossing** — the callback has fired and the
        crossing voter is counted, but no later voter is — so the caller
        can run its per-vote re-evaluation at exactly the vote where the
        scalar path would have, then feed the remainder
        (``voters[consumed:]``) back in; a block crosses at most once, so
        the second pass always consumes the rest.  Unlike
        :meth:`add_voters` (which merges a certificate's voter *set*),
        duplicates here are skipped silently and never fire.
        """
        existing = self._voters.get(block_id)
        if existing is None:
            existing = self._voters[block_id] = set()
        by_voter = self._by_voter
        equivocators = self._equivocators
        threshold = self.threshold
        fired = self._fired
        armed = block_id not in fired
        consumed = 0
        for voter in voters:
            consumed += 1
            if voter in existing:
                continue
            existing.add(voter)
            supported = by_voter.get(voter)
            if supported is None:
                by_voter[voter] = {block_id}
            else:
                supported.add(block_id)
                if len(supported) > 1:
                    equivocators.add(voter)
            if armed and len(existing) >= threshold:
                fired.add(block_id)
                if self.on_threshold is not None:
                    self.on_threshold(block_id)
                break
        return consumed

    def add_voters(self, block_id: Hashable, voters: Iterable[int]) -> bool:
        """Merge a certificate's voter set; return whether any vote was new.

        Hot path of certificate gossip: at ``n`` replicas every certificate
        carries O(n) voters and is received n times, so the all-duplicates
        case must not cost one Python call per voter.  A set difference
        finds the new voters first; the per-voter walk (which preserves
        :meth:`add_vote`'s exact mid-merge ``on_threshold`` timing) runs
        only when this merge could fire the threshold callback.
        """
        merged = self._merged_sets.get(block_id)
        if merged is None:
            merged = self._merged_sets[block_id] = set()
        voter_set = voters if isinstance(voters, frozenset) else frozenset(voters)
        if voter_set in merged:
            return False
        existing = self._voters.get(block_id)
        if existing is None:
            existing = self._voters[block_id] = set()
        new = voter_set - existing
        if not new:
            merged.add(voter_set)
            return False
        if block_id not in self._fired and len(existing) + len(new) >= self.threshold:
            # This merge crosses the threshold: take the per-voter path so
            # on_threshold fires at exactly the voter that reaches it (the
            # callback may inspect the tally mid-merge).
            for voter in voters:
                self.add_vote(block_id, voter)
            merged.add(voter_set)
            return True
        existing |= new
        merged.add(voter_set)
        by_voter = self._by_voter
        equivocators = self._equivocators
        for voter in new:
            supported = by_voter.get(voter)
            if supported is None:
                by_voter[voter] = {block_id}
            else:
                supported.add(block_id)
                if len(supported) > 1:
                    equivocators.add(voter)
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def voters(self, block_id: Hashable) -> FrozenSet[int]:
        """The distinct voters recorded for ``block_id``."""
        return frozenset(self._voters.get(block_id, ()))

    def count(self, block_id: Hashable) -> int:
        """Number of distinct voters recorded for ``block_id``."""
        return len(self._voters.get(block_id, ()))

    def count_outside(self, block_id: Hashable, excluded: Set[int]) -> int:
        """Number of distinct voters for ``block_id`` not in ``excluded``.

        Lets callers compute ``|voters(b) ∪ excluded|`` as
        ``len(excluded) + count_outside(b, excluded)`` without materialising
        the union (the fast-path unlock check does this per vote).
        """
        voters = self._voters.get(block_id)
        if not voters:
            return 0
        if not excluded:
            return len(voters)
        return len(voters - excluded)

    def reached(self, block_id: Hashable) -> bool:
        """Whether ``block_id``'s tally is at or above the threshold."""
        return self.count(block_id) >= self.threshold

    def blocks(self) -> List[Hashable]:
        """Blocks with at least one vote, in first-vote order."""
        return list(self._voters)

    def reached_blocks(self) -> List[Hashable]:
        """Blocks at or above the threshold, in first-vote order."""
        return [block_id for block_id, voters in self._voters.items()
                if len(voters) >= self.threshold]

    def fired_count(self) -> int:
        """Number of blocks that have reached the threshold (O(1)).

        Tallies only grow, so this equals ``len(reached_blocks())`` at all
        times — callers use it to skip a re-scan when nothing new reached
        the threshold since their last look.
        """
        return len(self._fired)

    def equivocators(self) -> FrozenSet[int]:
        """Voters observed supporting more than one distinct block.

        This is evidence of misbehaviour only for vote kinds where honest
        replicas vote at most once (fast votes, finalization votes,
        Streamlet/HotStuff notarization votes) — ICC-family notarization
        votes may honestly support several same-round blocks.
        """
        return frozenset(self._equivocators)

    def evidence(self, voter: int) -> Tuple[Hashable, ...]:
        """The distinct blocks ``voter`` supported (sorted; evidence record)."""
        return tuple(sorted(self._by_voter.get(voter, ()), key=repr))


class CertificateCollector:
    """Per-replica vote bookkeeping across rounds and vote kinds.

    One :class:`QuorumTracker` is created lazily per ``(round, kind)``; the
    threshold is fixed on first access (protocol quorums are static for a
    run).  The collector is what a protocol holds instead of per-round
    dictionaries-of-sets.
    """

    __slots__ = ("_trackers",)

    def __init__(self) -> None:
        self._trackers: Dict[Tuple[int, Hashable], QuorumTracker] = {}

    def tracker(self, round_k: int, kind: Hashable, threshold: int,
                on_threshold: Optional[ThresholdCallback] = None) -> QuorumTracker:
        """The tracker of ``(round, kind)``, created on first use."""
        key = (round_k, kind)
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = self._trackers[key] = QuorumTracker(threshold, on_threshold)
        return tracker

    def get(self, round_k: int, kind: Hashable) -> Optional[QuorumTracker]:
        """The tracker of ``(round, kind)`` if it exists (no creation)."""
        return self._trackers.get((round_k, kind))

    def add_vote(self, round_k: int, kind: Hashable, block_id: Hashable,
                 voter: int, threshold: int) -> bool:
        """Record one vote into the ``(round, kind)`` tracker."""
        return self.tracker(round_k, kind, threshold).add_vote(block_id, voter)

    def equivocation_evidence(self) -> Dict[Tuple[int, Hashable], FrozenSet[int]]:
        """Conflicting-support observations per ``(round, kind)``.

        Empty entries are omitted.  Interpret per vote kind — see
        :meth:`QuorumTracker.equivocators` for which kinds make the
        observation hard evidence of misbehaviour.
        """
        return {
            key: tracker.equivocators()
            for key, tracker in self._trackers.items()
            if tracker.equivocators()
        }

    def equivocators(self) -> FrozenSet[int]:
        """Voters with conflicting support in any round or kind.

        A raw union across kinds: filter by kind (via
        :meth:`equivocation_evidence`) before treating membership as proof
        of misbehaviour, since some kinds allow honest multi-block support.
        """
        culprits: Set[int] = set()
        for tracker in self._trackers.values():
            culprits |= tracker.equivocators()
        return frozenset(culprits)
