"""SMR harness: payload sources, ledgers, and measurement.

The protocols order opaque payloads; this package provides what surrounds
them in an SMR deployment:

* :mod:`repro.smr.mempool` — payload sources (the paper's workload is a
  leader-generated random bit vector of configurable size) and a simple
  transaction mempool for the examples.
* :mod:`repro.smr.ledger` — a committed ledger applying finalized payloads
  to a deterministic state machine (key-value store), used by the examples
  to show end-to-end replication.
* :mod:`repro.smr.metrics` — latency / throughput / block-interval
  collection matching the paper's measurement methodology (Section 9.2).
* :mod:`repro.smr.quorum` — the shared quorum/certificate engine: vote
  tallies with duplicate suppression, equivocation evidence, and
  threshold firing, used by every protocol implementation.
"""

from repro.smr.ledger import KeyValueLedger, Transaction, decode_transactions, encode_transactions
from repro.smr.mempool import Mempool, PayloadSource
from repro.smr.metrics import (
    LatencySample,
    MetricsCollector,
    OccupancySample,
    RunMetrics,
    WorkloadMetrics,
)
from repro.smr.quorum import CertificateCollector, QuorumTracker

__all__ = [
    "CertificateCollector",
    "KeyValueLedger",
    "LatencySample",
    "Mempool",
    "MetricsCollector",
    "OccupancySample",
    "PayloadSource",
    "QuorumTracker",
    "RunMetrics",
    "Transaction",
    "WorkloadMetrics",
    "decode_transactions",
    "encode_transactions",
]
