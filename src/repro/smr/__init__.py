"""SMR harness: payload sources, ledgers, and measurement.

The protocols order opaque payloads; this package provides what surrounds
them in an SMR deployment:

* :mod:`repro.smr.mempool` — payload sources (the paper's workload is a
  leader-generated random bit vector of configurable size) and a simple
  transaction mempool for the examples.
* :mod:`repro.smr.ledger` — a committed ledger applying finalized payloads
  to a deterministic state machine (key-value store), used by the examples
  to show end-to-end replication.
* :mod:`repro.smr.metrics` — latency / throughput / block-interval
  collection matching the paper's measurement methodology (Section 9.2).
"""

from repro.smr.ledger import KeyValueLedger, Transaction, decode_transactions, encode_transactions
from repro.smr.mempool import Mempool, PayloadSource
from repro.smr.metrics import (
    LatencySample,
    MetricsCollector,
    OccupancySample,
    RunMetrics,
    WorkloadMetrics,
)

__all__ = [
    "KeyValueLedger",
    "LatencySample",
    "Mempool",
    "MetricsCollector",
    "OccupancySample",
    "PayloadSource",
    "RunMetrics",
    "Transaction",
    "WorkloadMetrics",
    "decode_transactions",
    "encode_transactions",
]
