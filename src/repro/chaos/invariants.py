"""Machine-checked invariants: what every chaos run must satisfy.

The :class:`InvariantChecker` hooks into the simulator's existing listener
seams (:meth:`repro.runtime.simulator.Simulation.add_commit_listener`) and
judges the execution online, then once more post-run:

* **agreement** — all honest replicas finalize one chain: the commit at
  position ``i`` of every honest replica is the same block (prefix
  consistency), and no round finalizes two different blocks anywhere;
* **certified ancestry** — each honest commit extends the replica's
  previous commit (``parent_id`` linkage back to genesis) and, post-run,
  every committed block is notarized in the committer's block tree;
* **fast-path soundness** — no round ever has two fast-finalizable blocks
  at any honest replica, fast-finalized rounds never conflict, and
  fast-vote equivocation evidence (:func:`repro.byzantine.behaviors.
  fast_vote_equivocators`) only ever names planted Byzantine replicas;
* **bounded liveness** — once the last fault heals, every honest replica
  that never crashed commits again within the configured bound (checked
  only when the run leaves enough quiet tail after the heal).

Violations are collected as data (:class:`Violation`), never asserts, so
the chaos engine can count, report, shrink, and serialize them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.byzantine.behaviors import fast_vote_equivocators
from repro.runtime.simulator import CommitRecord, Simulation
from repro.types.blocks import genesis_block


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation.

    Attributes:
        invariant: invariant name (``"agreement"``, ``"round-agreement"``,
            ``"certified-ancestry"``, ``"notarized-commit"``,
            ``"fast-path-soundness"``, ``"equivocation-evidence"``,
            ``"liveness"``).
        time: simulation time at which the violation was detected (the end
            of the run for post-run checks).
        replica: the replica at which it was observed.
        detail: human-readable description.
    """

    invariant: str
    time: float
    replica: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {"invariant": self.invariant, "time": self.time,
                "replica": self.replica, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Violation":
        """Rebuild a violation from :meth:`to_dict` output."""
        return cls(invariant=str(data["invariant"]), time=float(data["time"]),
                   replica=int(data["replica"]), detail=str(data["detail"]))


class InvariantChecker:
    """Online + post-run invariant checking for one simulation.

    Attach with :meth:`attach` before running; read :attr:`violations`
    after.  Byzantine replicas are excluded from every honesty-scoped check
    (their commits are unconstrained — a Byzantine replica may claim
    anything), but evidence checks still reference them: honest replicas
    must never be *flagged* as equivocators.

    Args:
        replica_ids: all replica ids of the simulation.
        byzantine: planted Byzantine replica ids (excluded from honesty
            checks).
        max_violations: stop recording after this many violations (a broken
            run would otherwise flood the report with one violation per
            commit).
    """

    def __init__(self, replica_ids: Iterable[int],
                 byzantine: Iterable[int] = (),
                 max_violations: int = 25) -> None:
        self.replica_ids = sorted(replica_ids)
        self.byzantine: FrozenSet[int] = frozenset(byzantine)
        self.honest = [r for r in self.replica_ids if r not in self.byzantine]
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self._genesis_id = genesis_block().id
        #: Per-honest-replica committed chain (block ids, commit order).
        self._chains: Dict[int, List[object]] = {r: [] for r in self.honest}
        #: The longest honest chain seen so far; every honest chain must be
        #: one of its prefixes.
        self._canonical: List[object] = []
        #: Round → first finalized block id (across honest replicas).
        self._round_block: Dict[int, object] = {}
        #: Rounds somebody fast-finalized (for fast-path conflict labelling).
        self._fast_rounds: Dict[int, object] = {}
        self._last_commit_time: Dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # Online checks
    # ------------------------------------------------------------------ #

    def attach(self, simulation: Simulation) -> "InvariantChecker":
        """Register the commit listener on ``simulation``; returns self."""
        simulation.add_commit_listener(self.on_commit)
        return self

    def _record(self, invariant: str, time: float, replica: int, detail: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(Violation(
                invariant=invariant, time=time, replica=replica, detail=detail,
            ))

    def on_commit(self, record: CommitRecord) -> None:
        """Commit-stream listener (wired via ``add_commit_listener``)."""
        replica = record.replica_id
        if replica in self.byzantine:
            return
        block = record.block
        chain = self._chains[replica]
        short = str(block.id)[:8]

        # Certified ancestry: each commit extends the previous one.
        expected_parent = chain[-1] if chain else self._genesis_id
        if block.parent_id != expected_parent:
            self._record(
                "certified-ancestry", record.commit_time, replica,
                f"block {short} (round {block.round}) does not extend the "
                f"replica's previous commit",
            )

        # Agreement: honest chains are prefixes of one another.
        position = len(chain)
        if position < len(self._canonical):
            if self._canonical[position] != block.id:
                self._record(
                    "agreement", record.commit_time, replica,
                    f"chain position {position} is {short}, another honest "
                    f"replica finalized a different block there",
                )
        else:
            self._canonical.append(block.id)

        # Round agreement: one finalized block per round, ever.
        existing = self._round_block.get(block.round)
        if existing is None:
            self._round_block[block.round] = block.id
        elif existing != block.id:
            fast = (record.finalization_kind == "fast"
                    or block.round in self._fast_rounds)
            self._record(
                "fast-path-soundness" if fast else "round-agreement",
                record.commit_time, replica,
                f"round {block.round} finalized two different blocks"
                + (" (fast path involved)" if fast else ""),
            )
        if record.finalization_kind == "fast":
            self._fast_rounds.setdefault(block.round, block.id)

        chain.append(block.id)
        self._last_commit_time[replica] = record.commit_time

    # ------------------------------------------------------------------ #
    # Post-run checks
    # ------------------------------------------------------------------ #

    def finalize(self, simulation: Simulation, heal_time: float,
                 liveness_bound: float, duration: float,
                 never_crashed: Optional[Iterable[int]] = None) -> List[Violation]:
        """Run the post-run checks; returns the full violation list.

        Args:
            simulation: the finished simulation.
            heal_time: when the last timed fault healed.
            liveness_bound: seconds within which a quiet network must
                produce a commit at every eligible replica.
            duration: the run's horizon.
            never_crashed: honest replicas that never crashed — the set
                bounded liveness is asserted on (a recovered replica may
                legitimately be stuck waiting for ancestors it missed;
                defaults to all honest replicas).
        """
        eligible = set(self.honest if never_crashed is None else never_crashed)
        eligible -= self.byzantine

        for replica in self.honest:
            protocol = simulation.protocol(replica)
            # Wrapper replicas (stragglers' DelayedReplica, tracers) hold
            # the real state on .inner — unwrap, or the state-level checks
            # below would silently probe the wrapper and find nothing.
            while hasattr(protocol, "inner"):
                protocol = protocol.inner

            # Fast-path soundness at the state level: a round must never
            # accumulate two fast-finalizable blocks, and equivocation
            # evidence must only ever name planted byzantine replicas.
            fast_states = getattr(protocol, "_fast", None)
            if fast_states:
                flagged = fast_vote_equivocators(protocol)
                if not flagged <= self.byzantine:
                    wrongly = sorted(flagged - self.byzantine)
                    self._record(
                        "equivocation-evidence", duration, replica,
                        f"honest replicas {wrongly} flagged as fast-vote "
                        f"equivocators",
                    )
                for round_k, state in fast_states.items():
                    finalizable = state.fast_finalizable_blocks()
                    if len(finalizable) > 1:
                        self._record(
                            "fast-path-soundness", duration, replica,
                            f"round {round_k} has {len(finalizable)} "
                            f"fast-finalizable blocks",
                        )

            # Certified ancestry, part two: committed blocks are notarized
            # in the committer's own tree (the certificate chain exists).
            tree = getattr(protocol, "tree", None)
            if tree is not None:
                for block_id in self._chains[replica]:
                    if not tree.is_notarized(block_id):
                        self._record(
                            "notarized-commit", duration, replica,
                            f"committed block {str(block_id)[:8]} has no "
                            f"notarization in the committer's tree",
                        )
                        break

        # Bounded liveness: a quiet tail must produce fresh commits.
        deadline = heal_time + liveness_bound
        if deadline <= duration:
            for replica in sorted(eligible):
                last = self._last_commit_time.get(replica)
                if last is None or last <= heal_time:
                    self._record(
                        "liveness", duration, replica,
                        f"no commit after the last fault healed at "
                        f"{heal_time:g}s (bound {liveness_bound:g}s)",
                    )
        return self.violations
