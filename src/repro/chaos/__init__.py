"""Chaos engine: randomized fault-schedule exploration with invariant checks.

Where :mod:`tests` pins a handful of hand-written adversarial scenarios,
this package *generates* them: seeded fault timelines (crashes and
recoveries, overlapping partitions, loss bursts, straggler phases, planted
Byzantine replicas) are thrown at every protocol and each run is judged
against machine-checked safety and liveness invariants.  Failures shrink to
1-minimal schedules serialized as replayable JSON repros.

Entry points:

* :func:`repro.chaos.engine.run_chaos` — run a campaign (parallel, cached);
* :func:`repro.chaos.engine.replay_repro` — re-run a shrunk repro file;
* ``banyan-repro chaos`` — the CLI front end.
"""

from repro.chaos.engine import (
    ChaosReport,
    ChaosTrialResult,
    ChaosTrialSpec,
    replay_repro,
    run_chaos,
    run_chaos_schedule,
    run_chaos_trial,
    shrink_schedule,
    write_repro,
)
from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.schedule import (
    ChaosConfig,
    ChaosSchedule,
    Fault,
    ScheduleGenerator,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "ChaosSchedule",
    "ChaosTrialResult",
    "ChaosTrialSpec",
    "Fault",
    "InvariantChecker",
    "ScheduleGenerator",
    "Violation",
    "replay_repro",
    "run_chaos",
    "run_chaos_schedule",
    "run_chaos_trial",
    "shrink_schedule",
    "write_repro",
]
