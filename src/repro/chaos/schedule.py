"""Randomized fault schedules: what the chaos engine throws at a run.

A :class:`ChaosSchedule` is an explicit, JSON-serialisable list of fault
events — crashes with optional recoveries, partition windows, loss bursts,
straggler phases, and planted Byzantine replicas.  Schedules come from two
places:

* :class:`ScheduleGenerator` samples one from a seeded RNG, drawing each
  fault family from an independent stream
  (:func:`repro.eval.plan.derive_subseed`), under constraints that keep the
  configuration honest-majority: at most ``f`` replicas are ever Byzantine
  or crashed, and every timed fault heals before the *fault horizon* so the
  run ends with a quiet tail in which liveness can be checked;
* a shrunk repro JSON (:mod:`repro.chaos.engine`) round-trips through
  :meth:`ChaosSchedule.from_dict` for replay.

Every fault window follows the half-open ``[start, end)`` convention of
:mod:`repro.net.faults`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.eval.plan import derive_subseed
from repro.net.faults import (
    CrashSchedule,
    FaultPlan,
    LossBurst,
    PartitionPlan,
    PartitionWindow,
)

#: Byzantine behaviours the generator can plant.  ``"equivocate"`` is only
#: available for protocols with an equivocating variant (banyan, icc);
#: ``"silent"`` works everywhere.
BYZANTINE_BEHAVIORS = ("equivocate", "silent")


def trial_stream_index(trial: int) -> int:
    """The replication index chaos streams derive from, for one trial.

    Offset so that index 0 (which :func:`repro.eval.plan.derive_subseed`
    passes through unchanged) is never used — every chaos stream is
    properly hashed and mutually independent.
    """
    return trial * 7919 + 1


@dataclass(frozen=True)
class Fault:
    """One fault event of a schedule.

    A single tagged record keeps schedules trivially JSON-serialisable and
    makes shrinking uniform (drop any one event, regardless of kind).

    Attributes:
        kind: ``"crash"``, ``"partition"``, ``"loss"``, ``"straggler"``, or
            ``"byzantine"``.
        start: activation time (crash time, window start); 0 for byzantine
            plants, which are active from the beginning.
        end: heal time — recovery instant for a recovering crash, window
            end for partitions/bursts/stragglers, ``None`` for permanent
            faults (unrecovered crash, byzantine plant).
        replica: the affected replica (crash, straggler, byzantine).
        group_a / group_b: the two sides of a partition.
        probability: loss probability of a burst.
        delay: extra outbound delay of a straggler phase, in seconds.
        behavior: byzantine behaviour name (see :data:`BYZANTINE_BEHAVIORS`).
    """

    kind: str
    start: float = 0.0
    end: Optional[float] = None
    replica: Optional[int] = None
    group_a: Tuple[int, ...] = ()
    group_b: Tuple[int, ...] = ()
    probability: float = 0.0
    delay: float = 0.0
    behavior: str = ""

    def describe(self) -> str:
        """A one-line human-readable description."""
        if self.kind == "crash":
            heal = f", recovers at {self.end:g}s" if self.end is not None else ", permanent"
            return f"crash r{self.replica} at {self.start:g}s{heal}"
        if self.kind == "partition":
            return (f"partition {list(self.group_a)} | {list(self.group_b)} "
                    f"during [{self.start:g}s, {self.end:g}s)")
        if self.kind == "loss":
            return (f"loss burst p={self.probability:g} "
                    f"during [{self.start:g}s, {self.end:g}s)")
        if self.kind == "straggler":
            return (f"straggler r{self.replica} +{self.delay:g}s "
                    f"during [{self.start:g}s, {self.end:g}s)")
        if self.kind == "byzantine":
            return f"byzantine r{self.replica} ({self.behavior})"
        return f"unknown fault {self.kind!r}"

    def heal_time(self) -> float:
        """When the disturbance is over, for the liveness deadline.

        Permanent crashes heal at their start (the surviving quorum
        re-stabilises after the crash, within the protocol's timeout — the
        liveness bound accounts for the timeout itself); byzantine plants
        never disturb liveness of the honest majority, so they contribute 0.
        """
        if self.kind == "byzantine":
            return 0.0
        if self.end is not None:
            return self.end
        return self.start

    def to_dict(self) -> Dict[str, object]:
        """A compact JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        data: Dict[str, object] = {"kind": self.kind}
        if self.kind != "byzantine":
            data["start"] = self.start
        if self.end is not None:
            data["end"] = self.end
        if self.replica is not None:
            data["replica"] = self.replica
        if self.group_a:
            data["group_a"] = sorted(self.group_a)
            data["group_b"] = sorted(self.group_b)
        if self.kind == "loss":
            data["probability"] = self.probability
        if self.kind == "straggler":
            data["delay"] = self.delay
        if self.behavior:
            data["behavior"] = self.behavior
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Fault":
        """Rebuild a fault from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            start=float(data.get("start", 0.0)),
            end=float(data["end"]) if data.get("end") is not None else None,
            replica=int(data["replica"]) if data.get("replica") is not None else None,
            group_a=tuple(int(r) for r in data.get("group_a", ())),
            group_b=tuple(int(r) for r in data.get("group_b", ())),
            probability=float(data.get("probability", 0.0)),
            delay=float(data.get("delay", 0.0)),
            behavior=str(data.get("behavior", "")),
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered collection of fault events for one trial."""

    faults: Tuple[Fault, ...] = ()

    def __len__(self) -> int:
        return len(self.faults)

    def drop(self, index: int) -> "ChaosSchedule":
        """A copy of the schedule without fault ``index`` (for shrinking)."""
        return ChaosSchedule(
            faults=self.faults[:index] + self.faults[index + 1:]
        )

    def heal_time(self) -> float:
        """When the last timed disturbance is over (0 for no faults)."""
        return max((fault.heal_time() for fault in self.faults), default=0.0)

    def byzantine(self) -> Dict[int, str]:
        """Planted byzantine replicas: replica id → behaviour name."""
        return {
            fault.replica: fault.behavior
            for fault in self.faults
            if fault.kind == "byzantine"
        }

    def stragglers(self) -> List[Fault]:
        """The straggler-phase events."""
        return [fault for fault in self.faults if fault.kind == "straggler"]

    def crashed_replicas(self) -> List[int]:
        """Replicas that crash at some point (recovering or not)."""
        return [fault.replica for fault in self.faults if fault.kind == "crash"]

    def to_fault_plan(self) -> FaultPlan:
        """Materialise the network-level faults as a :class:`FaultPlan`.

        Straggler and byzantine events are replica-level (applied when the
        replica set is built) and do not appear in the plan.
        """
        crash_times: Dict[int, float] = {}
        recover_times: Dict[int, float] = {}
        windows: List[PartitionWindow] = []
        bursts: List[LossBurst] = []
        for fault in self.faults:
            if fault.kind == "crash":
                crash_times[fault.replica] = fault.start
                if fault.end is not None:
                    recover_times[fault.replica] = fault.end
            elif fault.kind == "partition":
                windows.append(PartitionWindow(
                    start=fault.start, end=fault.end,
                    group_a=frozenset(fault.group_a),
                    group_b=frozenset(fault.group_b),
                ))
            elif fault.kind == "loss":
                bursts.append(LossBurst(start=fault.start, end=fault.end,
                                        probability=fault.probability))
        return FaultPlan(
            crash_schedule=CrashSchedule(crash_times=crash_times,
                                         recover_times=recover_times),
            partitions=PartitionPlan(windows=tuple(windows)),
            loss_bursts=tuple(bursts),
        )

    def describe(self) -> List[str]:
        """One line per fault, in schedule order."""
        return [fault.describe() for fault in self.faults]

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        return cls(faults=tuple(
            Fault.from_dict(fault) for fault in data.get("faults", [])
        ))


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the schedule generator (all probabilities per trial).

    The defaults aim for *rich but survivable* timelines: most trials carry
    two to five overlapping faults, never more than ``f`` replicas are
    simultaneously Byzantine-or-crashed, and every timed fault ends before
    the fault horizon so the tail of the run is quiet.
    """

    #: Probability that a trial plants one Byzantine replica.
    byzantine_probability: float = 0.4
    #: Probability that a crashed replica recovers (vs. staying down).
    recovery_probability: float = 0.7
    #: Probability of sampling at least one partition window.
    partition_probability: float = 0.6
    #: Probability of sampling at least one loss burst.
    loss_probability: float = 0.5
    #: Probability of sampling at least one straggler phase.
    straggler_probability: float = 0.5
    #: Maximum loss probability inside a burst.
    max_loss: float = 0.3
    #: Maximum extra outbound delay of a straggler phase, in seconds.
    max_straggler_delay: float = 1.0
    #: Earliest fault activation (leaves the run a short fault-free head).
    min_start: float = 0.5

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "byzantine_probability": self.byzantine_probability,
            "recovery_probability": self.recovery_probability,
            "partition_probability": self.partition_probability,
            "loss_probability": self.loss_probability,
            "straggler_probability": self.straggler_probability,
            "max_loss": self.max_loss,
            "max_straggler_delay": self.max_straggler_delay,
            "min_start": self.min_start,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**{
            key: float(data[key]) for key in cls().to_dict() if key in data
        })


class ScheduleGenerator:
    """Samples :class:`ChaosSchedule` instances from a seed.

    Each fault family draws from its own RNG stream derived via
    :func:`repro.eval.plan.derive_subseed` from ``(seed, trial)``, so
    changing e.g. the partition knobs never perturbs which replicas crash —
    schedules stay maximally stable under config tweaks, and a given
    ``(seed, trial)`` always regenerates the identical schedule.

    Args:
        n: replica count of the target configuration.
        f: Byzantine bound; the generator never makes more than ``f``
            replicas simultaneously faulty (byzantine + crashed).
        duration: simulated run length, seconds.
        horizon: last instant at which a timed fault may still be active
            (every window ends at or before it).  Callers set it to
            ``duration - liveness_bound`` so the tail is checkable; it is
            clamped to at least half the run so short smoke runs still
            inject faults (their tails are simply too short to assert
            liveness on).
        config: generator knobs.
        protocol: protocol name, used to pick an available byzantine
            behaviour (equivocation needs a banyan/icc variant).
    """

    def __init__(self, n: int, f: int, duration: float, horizon: float,
                 config: Optional[ChaosConfig] = None,
                 protocol: str = "banyan") -> None:
        if n <= 0 or f < 0:
            raise ValueError("need n > 0 and f >= 0")
        self.n = n
        self.f = f
        self.duration = duration
        self.horizon = max(min(horizon, duration), duration * 0.5)
        self.config = config or ChaosConfig()
        self.protocol = protocol

    def _stream(self, seed: int, trial: int, component: str) -> random.Random:
        return random.Random(derive_subseed(seed, trial_stream_index(trial), component))

    def _window(self, rng: random.Random, min_len: float = 0.4,
                max_len: float = 2.5) -> Tuple[float, float]:
        """A half-open window inside ``[min_start, horizon)``."""
        start = rng.uniform(self.config.min_start, max(self.config.min_start,
                                                       self.horizon - min_len))
        length = rng.uniform(min_len, max_len)
        end = min(start + length, self.horizon)
        if end <= start:
            end = min(start + min_len, self.horizon)
        return start, max(end, start + 1e-3)

    def generate(self, seed: int, trial: int) -> ChaosSchedule:
        """Sample the schedule of ``(seed, trial)`` (pure function of both)."""
        cfg = self.config
        faults: List[Fault] = []
        faulty_budget = self.f  # byzantine + crashed replicas, combined
        replica_ids = list(range(self.n))

        byz_rng = self._stream(seed, trial, "chaos-byzantine")
        byzantine: List[int] = []
        if faulty_budget > 0 and byz_rng.random() < cfg.byzantine_probability:
            replica = byz_rng.choice(replica_ids)
            if self.protocol in ("banyan", "icc") or \
                    self.protocol.endswith("-broken"):
                behavior = byz_rng.choice(BYZANTINE_BEHAVIORS)
            else:
                behavior = "silent"
            faults.append(Fault(kind="byzantine", replica=replica,
                                behavior=behavior))
            byzantine.append(replica)
            faulty_budget -= 1

        crash_rng = self._stream(seed, trial, "chaos-crash")
        crash_candidates = [r for r in replica_ids if r not in byzantine]
        # Clamp to the candidate pool so an oversized user-supplied f never
        # draws from an empty list (the per-trial protocol construction
        # still rejects unsound f/n combinations with a clean ValueError).
        crash_count = crash_rng.randint(0, min(faulty_budget,
                                               len(crash_candidates)))
        crashed: List[int] = []
        for _ in range(crash_count):
            replica = crash_rng.choice(
                [r for r in crash_candidates if r not in crashed]
            )
            crashed.append(replica)
            start, end = self._window(crash_rng, min_len=0.8, max_len=3.0)
            if crash_rng.random() < cfg.recovery_probability:
                faults.append(Fault(kind="crash", replica=replica,
                                    start=start, end=end))
            else:
                faults.append(Fault(kind="crash", replica=replica, start=start))

        part_rng = self._stream(seed, trial, "chaos-partition")
        if part_rng.random() < cfg.partition_probability:
            for _ in range(part_rng.randint(1, 2)):
                members = list(replica_ids)
                part_rng.shuffle(members)
                cut = part_rng.randint(1, self.n - 1)
                start, end = self._window(part_rng)
                faults.append(Fault(kind="partition", start=start, end=end,
                                    group_a=tuple(sorted(members[:cut])),
                                    group_b=tuple(sorted(members[cut:]))))

        loss_rng = self._stream(seed, trial, "chaos-loss")
        if loss_rng.random() < cfg.loss_probability:
            for _ in range(loss_rng.randint(1, 2)):
                start, end = self._window(loss_rng)
                faults.append(Fault(
                    kind="loss", start=start, end=end,
                    probability=round(loss_rng.uniform(0.05, cfg.max_loss), 3),
                ))

        strag_rng = self._stream(seed, trial, "chaos-straggler")
        if strag_rng.random() < cfg.straggler_probability:
            candidates = [r for r in replica_ids
                          if r not in byzantine and r not in crashed]
            count = min(strag_rng.randint(1, 2), len(candidates))
            for replica in strag_rng.sample(candidates, count):
                start, end = self._window(strag_rng, min_len=0.5, max_len=2.0)
                faults.append(Fault(
                    kind="straggler", replica=replica, start=start, end=end,
                    delay=round(strag_rng.uniform(0.2, cfg.max_straggler_delay), 3),
                ))

        return ChaosSchedule(faults=tuple(faults))
