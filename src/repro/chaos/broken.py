"""Deliberately broken protocol variants — the chaos engine's crash dummies.

These exist *only* to prove the chaos pipeline end to end: a protocol with a
real (planted) safety bug must make ``run_chaos`` report violations and
shrink the failure to a minimal schedule.  They are registered on demand
(``<base>-broken`` names) and must never be used outside tests, examples,
and chaos self-checks.
"""

from __future__ import annotations

from repro.protocols.icc import ICCReplica
from repro.protocols.registry import available_protocols, register_protocol


class BrokenQuorumICC(ICCReplica):
    """ICC with an unsound notarization/finalization quorum.

    The quorum is lowered to ``⌊n/2⌋`` — below the intersection bound — so
    two disjoint replica groups can each notarize and finalize their own
    block for the same round.  Fault-free runs usually survive (the rank-0
    leader is unique and honest), but a partition that splits the replicas
    into two proposer-bearing halves lets both sides finalize conflicting
    chains: exactly the class of bug the agreement invariant exists to
    catch, and a failure that shrinking should reduce to the one partition
    window that triggers it.
    """

    name = "icc-broken"

    @property
    def notarization_quorum(self) -> int:
        return max(1, self.params.n // 2)

    @property
    def finalization_quorum(self) -> int:
        return max(1, self.params.n // 2)


def register_broken_protocols() -> None:
    """Register the broken variants (idempotent; called on demand)."""
    if "icc-broken" not in available_protocols():
        register_protocol("icc-broken", BrokenQuorumICC)
