"""The chaos engine: run seeded fault schedules, check invariants, shrink.

One *trial* is fully described by a :class:`ChaosTrialSpec` — protocol,
sizing, duration, base seed, and trial index.  The trial's fault schedule is
a pure function of the spec (:meth:`ChaosTrialSpec.schedule`), its network
jitter seed is derived independently, and the whole execution is
deterministic — which buys three things:

* trials fan out through the generic plan runner
  (:func:`repro.eval.runner.run_plan`) with process parallelism and
  content-hash caching, exactly like figure sweeps;
* a failing trial can be *shrunk*: faults are dropped one at a time and the
  trial re-run until no single fault can be removed without the failure
  disappearing — a greedy 1-minimal repro, Jepsen/ddmin style;
* the shrunk repro serialises to a small JSON file that replays bit-for-bit
  (:func:`replay_repro`), on any machine, via
  ``banyan-repro chaos --replay <file>``.

Runs use a constant 50 ms one-way latency (no jitter), so the only
randomness in a trial is the schedule itself plus message-loss draws.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.schedule import (
    ChaosConfig,
    ChaosSchedule,
    ScheduleGenerator,
    trial_stream_index,
)
from repro.eval.plan import canonical_hash, derive_subseed
from repro.eval.runner import ProgressCallback, run_plan
from repro.net.latency import ConstantLatency
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import available_protocols, create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.runtime.trace import TraceLog, attach_commit_trace

#: Version tag mixed into every chaos content hash; bump when execution
#: semantics change so stale cached trial results are not reused.
CHAOS_FORMAT = 1

#: The protocols a default chaos run rotates through.
DEFAULT_PROTOCOLS = ("banyan", "icc", "hotstuff", "streamlet")

#: One-way propagation delay of every chaos run, seconds.
CHAOS_LATENCY_S = 0.05


@dataclass(frozen=True)
class ChaosTrialSpec:
    """One chaos trial, fully described by data (picklable, hashable).

    Attributes:
        protocol: registered protocol name (test-only broken variants end
            in ``"-broken"`` and are registered on demand).
        n / f / p: replica count, fault bound, fast-path parameter.
        rank_delay: per-rank delay of the protocol parameters.
        round_timeout: view/recovery timeout (kept short so post-fault
            recovery fits the liveness bound).
        payload_size: proposal payload bytes (small — chaos runs probe
            correctness, not throughput).
        duration: simulated run length, seconds.
        seed: base seed of the campaign.
        trial: trial index; schedule and jitter streams derive from
            ``(seed, trial)``.
        config: schedule-generator knobs.
    """

    protocol: str = "banyan"
    n: int = 4
    f: int = 1
    p: int = 1
    rank_delay: float = 0.4
    round_timeout: float = 1.5
    payload_size: int = 1_000
    duration: float = 15.0
    seed: int = 0
    trial: int = 0
    config: ChaosConfig = field(default_factory=ChaosConfig)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def params(self) -> ProtocolParams:
        """The protocol parameters of the trial."""
        return ProtocolParams(n=self.n, f=self.f, p=self.p,
                              rank_delay=self.rank_delay,
                              round_timeout=self.round_timeout,
                              payload_size=self.payload_size)

    def liveness_bound(self) -> float:
        """Seconds a healed network gets to produce a commit everywhere.

        One recovery timeout (the in-flight round may have a crashed or
        partitioned-away leader), a full leader rotation of rank delays
        (twice, for the notarization echo), and a two-second cushion for
        propagation and certificate exchange.
        """
        return self.round_timeout + 2 * self.n * self.rank_delay + 2.0

    def fault_horizon(self) -> float:
        """Last instant at which a timed fault may still be active."""
        return max(self.duration - self.liveness_bound(), self.duration * 0.5)

    def schedule(self) -> ChaosSchedule:
        """The trial's fault schedule (pure function of the spec)."""
        generator = ScheduleGenerator(
            n=self.n, f=self.f, duration=self.duration,
            horizon=self.fault_horizon(), config=self.config,
            protocol=self.protocol,
        )
        return generator.generate(self.seed, self.trial)

    def net_seed(self) -> int:
        """The network-jitter/loss seed (independent of the schedule streams)."""
        return derive_subseed(self.seed, trial_stream_index(self.trial), "chaos-net")

    # ------------------------------------------------------------------ #
    # Runner protocol (duck-typed by repro.eval.runner.run_plan)
    # ------------------------------------------------------------------ #

    def resolved_label(self) -> str:
        """Progress-line label."""
        return f"chaos {self.protocol}"

    @property
    def cell(self) -> str:
        """Progress-line cell identifier."""
        return f"trial={self.trial}"

    @property
    def replication(self) -> int:
        """Progress-line replication index (chaos trials have none)."""
        return 0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "protocol": self.protocol,
            "n": self.n, "f": self.f, "p": self.p,
            "rank_delay": self.rank_delay,
            "round_timeout": self.round_timeout,
            "payload_size": self.payload_size,
            "duration": self.duration,
            "seed": self.seed,
            "trial": self.trial,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosTrialSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            protocol=str(data["protocol"]),
            n=int(data["n"]), f=int(data["f"]), p=int(data["p"]),
            rank_delay=float(data["rank_delay"]),
            round_timeout=float(data["round_timeout"]),
            payload_size=int(data["payload_size"]),
            duration=float(data["duration"]),
            seed=int(data["seed"]),
            trial=int(data["trial"]),
            config=ChaosConfig.from_dict(data.get("config", {})),
        )

    def content_hash(self) -> str:
        """Cache key: stable digest of the spec's canonical JSON form."""
        return canonical_hash({"format": CHAOS_FORMAT, "chaos": self.to_dict()})


@dataclass
class ChaosTrialResult:
    """Outcome of one chaos trial.

    Attributes:
        spec: the trial's spec.
        schedule: the fault schedule that ran (the generated one, or a
            shrunk/replayed one).
        violations: invariant violations observed (empty = trial passed).
        stats: observability counters (honest commits, messages, heal
            time, whether the liveness deadline fit inside the run).
    """

    spec: ChaosTrialSpec
    schedule: ChaosSchedule
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether any invariant was violated."""
        return bool(self.violations)

    def to_dict(self) -> Dict[str, object]:
        """A lossless JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "spec": self.spec.to_dict(),
            "schedule": self.schedule.to_dict(),
            "violations": [violation.to_dict() for violation in self.violations],
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosTrialResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            spec=ChaosTrialSpec.from_dict(data["spec"]),
            schedule=ChaosSchedule.from_dict(data.get("schedule", {})),
            violations=[Violation.from_dict(v) for v in data.get("violations", [])],
            stats=dict(data.get("stats", {})),
        )


# --------------------------------------------------------------------- #
# Trial execution
# --------------------------------------------------------------------- #


def _byzantine_factory(protocol: str, behavior: str):
    """The replica factory planted for a byzantine fault."""
    from repro.byzantine.behaviors import (
        SilentReplica,
        make_equivocating_banyan,
        make_equivocating_icc,
    )

    if behavior == "equivocate":
        base = protocol[:-len("-broken")] if protocol.endswith("-broken") else protocol
        if base == "banyan":
            return make_equivocating_banyan()
        if base == "icc":
            return make_equivocating_icc()
    return SilentReplica


def _ensure_protocol_registered(protocol: str) -> None:
    """Register test-only broken variants on demand (worker processes too)."""
    if protocol.endswith("-broken") and protocol not in available_protocols():
        from repro.chaos.broken import register_broken_protocols

        register_broken_protocols()


def run_chaos_schedule(spec: ChaosTrialSpec,
                       schedule: ChaosSchedule) -> ChaosTrialResult:
    """Run one trial under an explicit schedule and check every invariant.

    This is the single execution path shared by fresh trials
    (``schedule=spec.schedule()``), shrinking candidates, and replays.
    Every run records the tail of its commit trace in
    ``stats["commit_tail"]``, so a failing result can be serialized as a
    repro without re-simulating.
    """
    from repro.byzantine.behaviors import DelayedReplica

    _ensure_protocol_registered(spec.protocol)
    byzantine = schedule.byzantine()
    overrides = {
        replica: _byzantine_factory(spec.protocol, behavior)
        for replica, behavior in byzantine.items()
    }
    replicas = create_replicas(spec.protocol, spec.params(), overrides=overrides)
    for fault in schedule.stragglers():
        replicas[fault.replica] = DelayedReplica(
            replicas[fault.replica], extra_delay=fault.delay,
            window=(fault.start, fault.end),
        )
    network = NetworkConfig(
        latency=ConstantLatency(CHAOS_LATENCY_S),
        faults=schedule.to_fault_plan(),
        seed=spec.net_seed(),
    )
    simulation = Simulation(replicas, network)
    checker = InvariantChecker(simulation.replica_ids,
                               byzantine=byzantine).attach(simulation)
    trace = attach_commit_trace(simulation, TraceLog())
    error: Optional[BaseException] = None
    try:
        simulation.run(until=spec.duration)
    except Exception as exc:
        # A replica blowing up mid-run (e.g. the ledger refusing a
        # conflicting segment) is a finding, not a tooling error: record
        # it and judge whatever state the run reached.
        error = exc

    heal_time = schedule.heal_time()
    crashed = set(schedule.crashed_replicas())
    never_crashed = [r for r in checker.honest if r not in crashed]
    # Bounded liveness is a *model* guarantee: after GST, channels deliver
    # eventually (partitions delay, crashes silence).  A loss burst destroys
    # messages forever — outside the model, where none of the protocols
    # retransmit — so schedules containing one are checked for safety only.
    lossy = any(fault.kind == "loss" for fault in schedule.faults)
    liveness_checkable = (
        not lossy and heal_time + spec.liveness_bound() <= spec.duration
    )
    violations = list(checker.violations)
    if error is not None:
        violations.append(Violation(
            invariant="execution-error", time=simulation.now, replica=-1,
            detail=f"{type(error).__name__}: {error}",
        ))
    else:
        violations = checker.finalize(
            simulation, heal_time=heal_time,
            liveness_bound=spec.liveness_bound(), duration=spec.duration,
            never_crashed=never_crashed if liveness_checkable else (),
        )
    stats = {
        "honest_commits": sum(
            len(simulation.commits_for(replica)) for replica in checker.honest
        ),
        "messages_sent": simulation.messages_sent,
        "messages_dropped": simulation.messages_dropped,
        "heal_time": heal_time,
        "fault_count": len(schedule),
        "liveness_checked": liveness_checkable,
        "commit_tail": trace.render().splitlines()[-20:],
    }
    return ChaosTrialResult(spec=spec, schedule=schedule,
                            violations=list(violations), stats=stats)


def run_chaos_trial(spec: ChaosTrialSpec) -> ChaosTrialResult:
    """Run one trial under its generated schedule."""
    return run_chaos_schedule(spec, spec.schedule())


def _execute_trial_serialized(spec_data: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point for :func:`repro.eval.runner.run_plan`."""
    return run_chaos_trial(ChaosTrialSpec.from_dict(spec_data)).to_dict()


# --------------------------------------------------------------------- #
# Shrinking
# --------------------------------------------------------------------- #


def shrink_schedule(spec: ChaosTrialSpec, schedule: ChaosSchedule,
                    max_runs: int = 100,
                    failing_result: Optional[ChaosTrialResult] = None,
                    ) -> Tuple[ChaosSchedule, ChaosTrialResult]:
    """Greedily minimise a failing schedule; returns (schedule, its result).

    Faults are dropped one at a time; a drop is kept whenever the trial
    still fails without that fault.  The loop restarts after every
    successful drop and terminates when no single fault can be removed —
    the result is 1-minimal (within the ``max_runs`` re-execution budget).
    The returned result is the minimal schedule's own run, so its
    violations describe exactly the repro that is serialized.

    Callers that already executed ``schedule`` pass its result as
    ``failing_result`` to skip the initial verification run.
    """
    result = (failing_result if failing_result is not None
              else run_chaos_schedule(spec, schedule))
    if not result.failed:
        raise ValueError("cannot shrink a passing schedule")
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for index in range(len(schedule)):
            candidate = schedule.drop(index)
            runs += 1
            candidate_result = run_chaos_schedule(spec, candidate)
            if candidate_result.failed:
                schedule, result = candidate, candidate_result
                improved = True
                break
            if runs >= max_runs:
                break
    return schedule, result


def write_repro(path: str, result: ChaosTrialResult,
                original: Optional[ChaosSchedule] = None) -> str:
    """Serialize a (shrunk) failing trial to a replayable JSON file.

    The file contains everything needed to reproduce the failure — spec,
    minimal schedule, the violations it produced, a commit-trace tail for
    orientation — plus the original schedule it was shrunk from and the
    replay command.  The tail comes from the result's own run
    (``stats["commit_tail"]``), so nothing is re-simulated here.
    """
    data = {
        "spec": result.spec.to_dict(),
        "schedule": result.schedule.to_dict(),
        "schedule_description": result.schedule.describe(),
        "violations": [violation.to_dict() for violation in result.violations],
        "stats": dict(result.stats),
        "original_schedule": original.to_dict() if original is not None else None,
        "commit_trace_tail": list(result.stats.get("commit_tail", [])),
        "replay": f"banyan-repro chaos --replay {path}",
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
    return path


def replay_repro(path: str) -> ChaosTrialResult:
    """Re-run the trial stored in a repro JSON file, bit-for-bit."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    spec = ChaosTrialSpec.from_dict(data["spec"])
    schedule = ChaosSchedule.from_dict(data["schedule"])
    return run_chaos_schedule(spec, schedule)


# --------------------------------------------------------------------- #
# The campaign driver
# --------------------------------------------------------------------- #


@dataclass
class ChaosReport:
    """Outcome of a chaos campaign.

    Attributes:
        results: one :class:`ChaosTrialResult` per trial, in trial order.
        repro_paths: JSON files written for shrunk failures.
    """

    results: List[ChaosTrialResult] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[ChaosTrialResult]:
        """The failing trials."""
        return [result for result in self.results if result.failed]

    def summary_rows(self) -> List[Dict[str, object]]:
        """One aggregate row per protocol, for the CLI table."""
        by_protocol: Dict[str, List[ChaosTrialResult]] = {}
        for result in self.results:
            by_protocol.setdefault(result.spec.protocol, []).append(result)
        rows = []
        for protocol in sorted(by_protocol):
            results = by_protocol[protocol]
            rows.append({
                "protocol": protocol,
                "trials": len(results),
                "failures": sum(1 for r in results if r.failed),
                "faults_injected": sum(r.stats.get("fault_count", 0) for r in results),
                "liveness_checked": sum(
                    1 for r in results if r.stats.get("liveness_checked")
                ),
                "honest_commits": sum(
                    r.stats.get("honest_commits", 0) for r in results
                ),
            })
        return rows


def build_trials(trials: int, seed: int,
                 protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                 n: int = 4, f: Optional[int] = None, p: int = 1,
                 duration: float = 15.0,
                 config: Optional[ChaosConfig] = None) -> List[ChaosTrialSpec]:
    """The specs of a campaign: ``trials`` cells rotating over ``protocols``."""
    if trials < 1:
        raise ValueError("need at least one trial")
    if f is None:
        f = max(1, (n - 1) // 3)
    config = config or ChaosConfig()
    return [
        ChaosTrialSpec(protocol=protocols[trial % len(protocols)],
                       n=n, f=f, p=p, duration=duration,
                       seed=seed, trial=trial, config=config)
        for trial in range(trials)
    ]


def run_chaos(trials: int = 50, seed: int = 0,
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              n: int = 4, f: Optional[int] = None, p: int = 1,
              duration: float = 15.0, jobs: int = 1,
              cache_dir: Optional[str] = None, use_cache: bool = True,
              shrink: bool = True, repro_dir: Optional[str] = None,
              config: Optional[ChaosConfig] = None,
              progress: Optional[ProgressCallback] = None) -> ChaosReport:
    """Run a chaos campaign: generate, execute, check, and shrink.

    Trials fan out through :func:`repro.eval.runner.run_plan` — parallel
    over ``jobs`` worker processes, cached per trial content hash — and
    each failing trial is then shrunk in-process to a 1-minimal schedule
    that is serialized to ``repro_dir`` as a replayable JSON file.

    Returns the :class:`ChaosReport`; callers decide what a failure means
    (the CLI exits non-zero, CI uploads the repro files).
    """
    for protocol in protocols:
        _ensure_protocol_registered(protocol)
    specs = build_trials(trials, seed, protocols=protocols, n=n, f=f, p=p,
                         duration=duration, config=config)
    results = run_plan(
        specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress,
        execute=_execute_trial_serialized,
        decode=ChaosTrialResult.from_dict,
    )
    report = ChaosReport(results=list(results))
    if shrink and repro_dir is not None:
        for result in report.failures:
            shrunk, shrunk_result = shrink_schedule(
                result.spec, result.schedule, failing_result=result)
            path = os.path.join(
                repro_dir,
                f"chaos-repro-{result.spec.protocol}"
                f"-seed{result.spec.seed}-trial{result.spec.trial}.json",
            )
            report.repro_paths.append(
                write_repro(path, shrunk_result, original=result.schedule)
            )
    return report
