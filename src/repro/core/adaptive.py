"""Adaptive delay adjustment (Remark 4.2 of the paper).

"In the simplest implementation of the ICC protocol, we can assume that the
communication delay bound Δ is an explicit parameter.  In practice, instead,
the protocol is modified to adaptively adjust to an unknown communication
delay bound."

:class:`AdaptiveDelayEstimator` implements that practical variant: it
observes how long each round actually takes (from entering the round to
notarizing the first block) and derives the per-rank delay ``2Δ`` as a
high percentile of recent observations times a safety factor, clamped to a
configured range.  When rounds stall (e.g. a crashed leader forces the rank-1
fallback), the estimate backs off multiplicatively, restoring liveness under
an unknown or drifting delay bound; when the network is faster than assumed,
the estimate shrinks towards the observed latency so higher-rank proposers
and notarization delays do not add unnecessary slack after faults.

The estimator is deliberately protocol-agnostic: Banyan and ICC feed it round
duration samples and read back the current ``rank_delay``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class AdaptiveDelayEstimator:
    """Estimates the per-rank delay ``2Δ`` from observed round durations.

    Args:
        initial_delay: starting value of ``2Δ`` in seconds.
        min_delay: lower clamp for the estimate.
        max_delay: upper clamp for the estimate.
        window: number of recent round-duration samples considered.
        percentile: which percentile of the window drives the estimate.
        headroom: multiplicative safety factor applied to the percentile.
        backoff: multiplicative increase applied when a round times out.
    """

    def __init__(
        self,
        initial_delay: float,
        min_delay: float = 0.01,
        max_delay: float = 10.0,
        window: int = 32,
        percentile: float = 90.0,
        headroom: float = 1.5,
        backoff: float = 2.0,
    ) -> None:
        if initial_delay <= 0:
            raise ValueError("initial delay must be positive")
        if not 0 < min_delay <= max_delay:
            raise ValueError("need 0 < min_delay <= max_delay")
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if headroom < 1.0 or backoff < 1.0:
            raise ValueError("headroom and backoff must be at least 1.0")
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.window = window
        self.percentile = percentile
        self.headroom = headroom
        self.backoff = backoff
        self._samples: Deque[float] = deque(maxlen=window)
        self._current = self._clamp(initial_delay)
        self._timeouts = 0
        self._observations = 0

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #

    def observe_round(self, duration: float) -> None:
        """Record how long a successful round took (entry to notarization)."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._observations += 1
        self._samples.append(duration)
        self._recompute()

    def observe_timeout(self) -> None:
        """Record that a round made no progress within the current delay.

        The estimate backs off multiplicatively so the protocol regains
        liveness under an unknown (larger) delay bound.
        """
        self._timeouts += 1
        self._current = self._clamp(self._current * self.backoff)

    # ------------------------------------------------------------------ #
    # Estimate
    # ------------------------------------------------------------------ #

    @property
    def current_delay(self) -> float:
        """The current estimate of the per-rank delay ``2Δ`` in seconds."""
        return self._current

    @property
    def observations(self) -> int:
        """Number of successful round observations recorded."""
        return self._observations

    @property
    def timeouts(self) -> int:
        """Number of timeout observations recorded."""
        return self._timeouts

    def proposal_delay(self, rank: int) -> float:
        """``Δ_prop(r)`` using the adaptive estimate."""
        return self._current * rank

    def notarization_delay(self, rank: int) -> float:
        """``Δ_notary(r)`` using the adaptive estimate."""
        return self._current * rank

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _clamp(self, value: float) -> float:
        return min(self.max_delay, max(self.min_delay, value))

    def _recompute(self) -> None:
        ordered = sorted(self._samples)
        index = max(0, int(round(self.percentile / 100.0 * len(ordered))) - 1)
        target = ordered[index] * self.headroom
        self._current = self._clamp(target)
