"""The paper's primary contribution: the Banyan protocol.

* :mod:`repro.core.banyan` — the :class:`BanyanReplica` state machine,
  implementing Algorithms 1 and 2 of the paper as the set of changes
  (Restrictions 1–2, Additions 1–4) applied on top of the ICC slow path.
* :mod:`repro.core.fastpath` — the round-local fast-path state: fast-vote
  support tracking, the unlock conditions of Definition 7.6, and unlock-proof
  construction (Definition 7.7).
* :mod:`repro.core.adaptive` — adaptive adjustment of the per-rank delay to
  an unknown communication delay bound (Remark 4.2).
"""

from repro.core.adaptive import AdaptiveDelayEstimator
from repro.core.banyan import BanyanReplica
from repro.core.fastpath import FastPathState, UnlockDecision

__all__ = ["AdaptiveDelayEstimator", "BanyanReplica", "FastPathState", "UnlockDecision"]
