"""The Banyan protocol (Algorithms 1 and 2 of the paper).

Banyan extends the ICC slow path with an integrated fast path.  Following the
paper, the implementation is expressed as the set of changes applied to
:class:`repro.protocols.icc.ICCReplica`:

* **Restriction 1** — block proposals, notarization votes, fast votes, and
  finalization votes only refer to blocks that extend a notarized *and
  unlocked* parent (``_is_valid`` / ``_parent_candidates``).
* **Restriction 2** — a replica moves to the next round only once an
  *unlocked* block is notarized and it has sent a fast vote
  (``_advance_candidates`` / ``_can_advance``).
* **Addition 1** — on round advancement the notarization is broadcast
  together with an unlock proof (``_broadcast_round_certificates``).
* **Addition 2** — proposals carry the parent's notarization and unlock
  proof, and rank-0 proposals carry the proposer's own fast vote
  (the ``_parent_unlock_proof`` / ``_proposal_fast_vote`` /
  ``_relay_fast_vote`` attachment hooks of the shared ICC proposal/relay
  builders, plus ``_after_propose``).
* **Addition 3** — the first notarization vote of a round is accompanied by
  a fast vote for the same block (``_votes_for_block``).
* **Addition 4** — a rank-0 block that gathers ``n - p`` fast votes is
  FP-finalized; the fast votes are combined into a fast finalization and
  broadcast (``_try_fast_finalization`` / ``_broadcast_finalization``).

Quorums follow Algorithm 2: notarization and (slow) finalization use
``⌈(n+f+1)/2⌉`` votes; FP-finalization uses ``n - p`` fast votes.  The
resilience requirement is ``n ≥ max(3f + 2p - 1, 3f + 1)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.beacon import Beacon
from repro.core.fastpath import FastPathState
from repro.crypto.keys import KeyRegistry
from repro.protocols.base import ProtocolParams
from repro.protocols.icc import ICCReplica
from repro.runtime.context import ReplicaContext
from repro.smr.mempool import PayloadSource
from repro.types.blocks import Block, BlockId
from repro.types.certificates import FastFinalization, Finalization, Notarization, UnlockProof
from repro.types.messages import BlockProposal, CertificateMessage, VoteMessage
from repro.types.votes import FastVote, Vote, VoteKind


class BanyanReplica(ICCReplica):
    """A single Banyan replica: ICC plus the integrated fast path."""

    name = "banyan"

    def __init__(
        self,
        replica_id: int,
        params: ProtocolParams,
        beacon: Optional[Beacon] = None,
        payload_source: Optional[PayloadSource] = None,
        registry: Optional[KeyRegistry] = None,
    ) -> None:
        super().__init__(replica_id, params, beacon, payload_source, registry)
        params.validate_resilience(require_fast_path=True)
        #: Per-round fast-path state (fast-vote support and unlock tracking).
        self._fast: Dict[int, FastPathState] = {}
        #: Whether this replica already broadcast a fast vote in a round.
        self._fast_vote_sent: Dict[int, bool] = {}
        #: Rank-0 blocks whose proposal carried the proposer's fast vote
        #: (required by the validity rule, Algorithm 2 line 63).
        self._proposer_fast_vote_seen: set = set()
        #: Count of FP- vs SP-finalized blocks (observability).
        self.fast_finalized_count = 0
        self.slow_finalized_count = 0

    # ------------------------------------------------------------------ #
    # Quorums (Algorithm 2)
    # ------------------------------------------------------------------ #

    @property
    def notarization_quorum(self) -> int:
        """Banyan notarizes with ``⌈(n+f+1)/2⌉`` votes (Algorithm 2, line 45)."""
        return self.params.banyan_quorum

    @property
    def finalization_quorum(self) -> int:
        """Banyan SP-finalizes with ``⌈(n+f+1)/2⌉`` votes (Algorithm 2, line 56)."""
        return self.params.banyan_quorum

    @property
    def fast_quorum(self) -> int:
        """FP-finalization requires ``n - p`` fast votes (Definition 6.2)."""
        return self.params.fast_quorum

    # ------------------------------------------------------------------ #
    # Fast-path state access
    # ------------------------------------------------------------------ #

    def _fast_state(self, round_k: int) -> FastPathState:
        state = self._fast.get(round_k)
        if state is None:
            state = FastPathState(
                unlock_threshold=self.params.unlock_threshold,
                fast_quorum=self.params.fast_quorum,
            )
            self._fast[round_k] = state
        return state

    def _has_sent_fast_vote(self, round_k: int) -> bool:
        return self._fast_vote_sent.get(round_k, False)

    # ------------------------------------------------------------------ #
    # Restriction 1: validity requires an unlocked parent
    # ------------------------------------------------------------------ #

    def _is_valid(self, block: Block) -> bool:
        """A block is valid if it extends a notarized *and unlocked* parent.

        Rank-0 blocks must additionally have arrived with the proposer's own
        fast vote (Algorithm 2, line 63).
        """
        if not super()._is_valid(block):
            return False
        parent_id = block.parent_id
        if parent_id is not None and not self.tree.is_unlocked(parent_id):
            return False
        if block.rank == 0 and block.id not in self._proposer_fast_vote_seen:
            return False
        return True

    def _parent_candidates(self, round_k: int) -> List[Block]:
        """Proposals may only extend notarized and unlocked blocks."""
        return self.tree.notarized_and_unlocked_at_round(round_k - 1)

    # ------------------------------------------------------------------ #
    # Addition 2: proposals carry unlock proofs and the leader's fast vote
    # ------------------------------------------------------------------ #

    def _parent_unlock_proof(self, parent: Optional[Block]) -> Optional[UnlockProof]:
        """Proposals and relays carry the parent's unlock proof (Addition 2)."""
        if parent is None or parent.is_genesis():
            return None
        return self._fast_state(parent.round).build_unlock_proof(
            parent.round, parent.id
        )

    def _proposal_fast_vote(self, round_k: int, block: Block) -> Optional[FastVote]:
        """Rank-0 proposals carry the proposer's own fast vote (Addition 2)."""
        if block.rank == 0:
            return self._make_fast_vote(round_k, block.id)
        return None

    def _relay_fast_vote(self, round_k: int, block: Block) -> Optional[FastVote]:
        """Preserve the proposer's fast vote so a relayed block stays valid."""
        if block.rank == 0 and block.id in self._proposer_fast_vote_seen:
            return FastVote(round=round_k, block_id=block.id, voter=block.proposer)
        return None

    def _after_propose(self, ctx: ReplicaContext, round_k: int, block: Block) -> None:
        """A rank-0 proposer has broadcast its fast vote along with the block."""
        if block.rank == 0:
            self._fast_vote_sent[round_k] = True

    def _make_fast_vote(self, round_k: int, block_id: BlockId) -> FastVote:
        signature = None
        if self.params.sign_messages and self.registry is not None:
            from repro.crypto.signatures import sign

            signature = sign(
                (VoteKind.FAST.value, round_k, block_id), self.replica_id, self.registry
            )
        return FastVote(
            round=round_k, block_id=block_id, voter=self.replica_id, signature=signature
        )

    def _make_vote(self, kind: VoteKind, round_k: int, block_id: BlockId) -> Vote:
        if kind is VoteKind.FAST:
            return self._make_fast_vote(round_k, block_id)
        return super()._make_vote(kind, round_k, block_id)

    # ------------------------------------------------------------------ #
    # Proposal handling: absorb unlock proofs and the proposer's fast vote
    # ------------------------------------------------------------------ #

    def _handle_proposal(self, ctx: ReplicaContext, sender: int, proposal: BlockProposal) -> None:
        block = proposal.block
        if proposal.fast_vote is not None:
            vote = proposal.fast_vote
            if (
                vote.kind is VoteKind.FAST
                and vote.block_id == block.id
                and vote.voter == block.proposer
            ):
                self._proposer_fast_vote_seen.add(block.id)
        if proposal.parent_unlock_proof is not None:
            self._absorb_unlock_proof(ctx, proposal.parent_unlock_proof)
        super()._handle_proposal(ctx, sender, proposal)
        if proposal.fast_vote is not None and proposal.fast_vote.kind is VoteKind.FAST:
            self._handle_fast_vote(ctx, proposal.fast_vote)

    # ------------------------------------------------------------------ #
    # Addition 3: the first notarization vote carries a fast vote
    # ------------------------------------------------------------------ #

    def _votes_for_block(self, round_k: int, block: Block) -> List[Vote]:
        votes: List[Vote] = [self._make_vote(VoteKind.NOTARIZATION, round_k, block.id)]
        if not self._has_sent_fast_vote(round_k):
            self._fast_vote_sent[round_k] = True
            votes.append(self._make_fast_vote(round_k, block.id))
        return votes

    # ------------------------------------------------------------------ #
    # Fast votes, unlock conditions, FP-finalization
    # ------------------------------------------------------------------ #

    def _handle_fast_vote(self, ctx: ReplicaContext, vote: Vote) -> None:
        state = self._fast_state(vote.round)
        state.record_fast_vote(vote.block_id, vote.voter)
        self._update_fast_path(ctx, vote.round)

    def _absorb_unlock_proof(self, ctx: ReplicaContext, proof: UnlockProof) -> None:
        state = self._fast_state(proof.round)
        state.merge_unlock_proof(proof)
        self._update_fast_path(ctx, proof.round)

    def _after_block_added(self, ctx: ReplicaContext, block: Block) -> None:
        self._fast_state(block.round).record_block(block.id, block.rank)
        self._update_fast_path(ctx, block.round)
        super()._after_block_added(ctx, block)

    def _update_fast_path(self, ctx: ReplicaContext, round_k: int) -> None:
        """Re-evaluate unlock conditions and FP-finalization for ``round_k``."""
        state = self._fast_state(round_k)
        decision = state.evaluate_unlocks()
        newly_unlocked = False
        for block_id in decision.unlocked_blocks:
            if block_id in self.tree and not self.tree.is_unlocked(block_id):
                self.tree.mark_unlocked(block_id)
                newly_unlocked = True
        self._try_fast_finalization(ctx, round_k)
        if newly_unlocked:
            # Unlocking a round-k block can make round-(k+1) blocks valid,
            # enable our own deferred votes, and allow round advancement.
            self._try_notarization_votes(ctx, round_k)
            self._try_notarization_votes(ctx, round_k + 1)
            self._try_advance(ctx, round_k)

    def _try_fast_finalization(self, ctx: ReplicaContext, round_k: int) -> None:
        if round_k <= self.k_max:
            # Already finalized at or past this round; nothing a fast
            # quorum here could add (hot path: every fast vote re-checks).
            return
        state = self._fast_state(round_k)
        for block_id in state.fast_finalizable_blocks():
            if round_k > self.k_max and block_id in self.tree:
                self._finalize(ctx, round_k, block_id, kind="fast")

    # ------------------------------------------------------------------ #
    # Restriction 2: round advancement needs an unlocked notarized block
    # ------------------------------------------------------------------ #

    def _advance_candidates(self, round_k: int) -> List[Block]:
        return self.tree.notarized_and_unlocked_at_round(round_k)

    def _can_advance(self, round_k: int) -> bool:
        return bool(self._advance_candidates(round_k)) and self._has_sent_fast_vote(round_k)

    # ------------------------------------------------------------------ #
    # Addition 1: broadcast notarization together with an unlock proof
    # ------------------------------------------------------------------ #

    def _broadcast_round_certificates(self, ctx: ReplicaContext, round_k: int, block: Block) -> None:
        state = self._round(round_k)
        if block.id in state.notarization_broadcast:
            return
        state.notarization_broadcast.add(block.id)
        notarization = self._notarization_for(block)
        unlock_proof = self._fast_state(round_k).build_unlock_proof(round_k, block.id)
        ctx.broadcast(
            CertificateMessage(
                certificate=notarization,
                unlock_proof=unlock_proof,
                sender=self.replica_id,
            )
        )

    # ------------------------------------------------------------------ #
    # Addition 4: fast finalization certificates
    # ------------------------------------------------------------------ #

    def _handle_certificate(self, ctx: ReplicaContext, message: CertificateMessage) -> None:
        if message.unlock_proof is not None:
            self._absorb_unlock_proof(ctx, message.unlock_proof)
        certificate = message.certificate
        if isinstance(certificate, FastFinalization):
            if certificate.verify(None, self.fast_quorum):
                state = self._fast_state(certificate.round)
                state.merge_fast_votes(certificate.block_id, certificate.voters)
                if certificate.block_id in self.tree:
                    self._finalize(ctx, certificate.round, certificate.block_id, kind="fast")
                else:
                    self._pending_finalizations[certificate.block_id] = "fast"
            return
        super()._handle_certificate(ctx, message)

    def _broadcast_finalization(self, ctx: ReplicaContext, round_k: int,
                                block_id: BlockId, kind: str) -> None:
        if kind == "fast":
            voters = self._fast_state(round_k).support(block_id)
            if voters:
                certificate = FastFinalization(
                    round=round_k, block_id=block_id, voters=frozenset(voters)
                )
                ctx.broadcast(
                    CertificateMessage(certificate=certificate, sender=self.replica_id)
                )
            return
        super()._broadcast_finalization(ctx, round_k, block_id, kind)

    def _finalize(self, ctx: ReplicaContext, round_k: int, block_id: BlockId, kind: str) -> None:
        before = self.k_max
        super()._finalize(ctx, round_k, block_id, kind)
        if self.k_max > before:
            if kind == "fast":
                self.fast_finalized_count += 1
            else:
                self.slow_finalized_count += 1
