"""Fast-path bookkeeping: fast-vote support and the unlock conditions.

This module implements Definitions 7.1–7.7 of the paper as a self-contained,
per-round data structure so that the unlock logic can be unit- and
property-tested independently of the full protocol:

* ``supp(b)`` — the set of replicas from which a fast vote for block ``b``
  was received (Definition 7.1);
* ``max(k)`` — a rank-0 block with the largest support (Definition 7.2);
* ``nonLeaderBlocks(k)`` / ``nonMaxBlocks(k)`` (Definitions 7.4, 7.5);
* the two unlock conditions of Definition 7.6;
* unlock proofs (Definition 7.7) as per-block voter sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.smr.quorum import QuorumTracker
from repro.types.blocks import BlockId
from repro.types.certificates import UnlockProof


@dataclass(frozen=True)
class UnlockDecision:
    """Outcome of evaluating Definition 7.6 for one round.

    Attributes:
        unlocked_blocks: blocks unlocked via Condition 1 (or already known).
        all_unlocked: whether Condition 2 holds, unlocking *all* current and
            future blocks of the round.
    """

    unlocked_blocks: FrozenSet[BlockId]
    all_unlocked: bool


class FastPathState:
    """Per-round fast-vote support and unlock evaluation.

    Args:
        unlock_threshold: the value ``f + p``; support strictly above it
            triggers the unlock conditions.
        fast_quorum: the value ``n - p``; support at or above it FP-finalizes
            a rank-0 block.
    """

    def __init__(self, unlock_threshold: int, fast_quorum: int) -> None:
        if unlock_threshold < 0 or fast_quorum <= 0:
            raise ValueError("thresholds must be positive")
        self.unlock_threshold = unlock_threshold
        self.fast_quorum = fast_quorum
        #: Fast-vote support per block id (votes may precede the block),
        #: tallied by the shared quorum engine: duplicates are suppressed
        #: and a signer fast-voting for two blocks is recorded as
        #: equivocation evidence.
        self._support = QuorumTracker(fast_quorum)
        #: Rank of each *received* block (only received blocks participate in
        #: the unlock conditions, since their rank must be known).
        self._block_ranks: Dict[BlockId, int] = {}
        #: Whether Condition 2 has been met (sticky for the round).
        self._all_unlocked = False
        #: Received blocks with rank != 0 (``nonLeaderBlocks(k)`` as a set).
        self._non_leader: Set[BlockId] = set()
        #: ``supp(nonLeaderBlocks(k))`` maintained incrementally as votes
        #: and blocks arrive, so :meth:`evaluate_unlocks` — called on every
        #: fast vote — does not rebuild the union each time.
        self._non_leader_support: Set[int] = set()
        #: Blocks already unlocked via Condition 1.  Support only grows, so
        #: the condition is monotone and the set is sticky — re-evaluation
        #: skips these.
        self._unlocked: Set[BlockId] = set()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record_block(self, block_id: BlockId, rank: int) -> None:
        """Register a received round-``k`` block and its rank."""
        if block_id not in self._block_ranks:
            self._block_ranks[block_id] = rank
            if rank != 0:
                self._non_leader.add(block_id)
                # Votes may precede the block: fold its existing support in.
                self._non_leader_support |= self._support.voters(block_id)

    def record_fast_vote(self, block_id: BlockId, voter: int) -> None:
        """Register a fast vote from ``voter`` for ``block_id``."""
        if self._support.add_vote(block_id, voter) and block_id in self._non_leader:
            self._non_leader_support.add(voter)

    def merge_fast_votes(self, block_id: BlockId, voters: Iterable[int]) -> None:
        """Register a certificate's fast votes for ``block_id`` in bulk."""
        if self._support.add_voters(block_id, voters) and block_id in self._non_leader:
            self._non_leader_support |= set(voters)

    def merge_unlock_proof(self, proof: UnlockProof) -> None:
        """Merge the voter sets carried by an unlock proof (Addition 1/2)."""
        for block_id, voters in proof.votes_by_block:
            self.merge_fast_votes(block_id, voters)

    # ------------------------------------------------------------------ #
    # Queries (Definitions 7.1 – 7.5)
    # ------------------------------------------------------------------ #

    def support(self, block_id: BlockId) -> FrozenSet[int]:
        """``supp(b)``: replicas that fast-voted for ``block_id``."""
        return self._support.voters(block_id)

    def support_of(self, block_ids: Iterable[BlockId]) -> FrozenSet[int]:
        """``supp(B)``: distinct replicas that fast-voted for any block in ``B``."""
        voters: Set[int] = set()
        for block_id in block_ids:
            voters |= self._support.voters(block_id)
        return frozenset(voters)

    def equivocators(self) -> FrozenSet[int]:
        """Signers whose fast votes supported more than one block this round.

        An honest replica fast-votes at most once per round, so any replica
        in this set has produced cryptographic evidence of misbehaviour —
        the seam adversary analyses and the Byzantine tests use.
        """
        return self._support.equivocators()

    def received_blocks(self) -> List[BlockId]:
        """Blocks of the round that have been received (rank known)."""
        return list(self._block_ranks)

    def rank_zero_blocks(self) -> List[BlockId]:
        """Received blocks of rank 0 (more than one only with a Byzantine leader)."""
        return [bid for bid, rank in self._block_ranks.items() if rank == 0]

    def non_leader_blocks(self) -> List[BlockId]:
        """``nonLeaderBlocks(k)``: received blocks with rank larger than 0."""
        return [bid for bid, rank in self._block_ranks.items() if rank != 0]

    def max_block(self) -> Optional[BlockId]:
        """``max(k)``: a rank-0 block with the largest support, if any."""
        rank_zero = self.rank_zero_blocks()
        if not rank_zero:
            return None
        return max(rank_zero, key=lambda bid: (self._support.count(bid), bid))

    def non_max_blocks(self) -> List[BlockId]:
        """``nonMaxBlocks(k)``: received blocks excluding ``max(k)``."""
        best = self.max_block()
        return [bid for bid in self._block_ranks if bid != best]

    # ------------------------------------------------------------------ #
    # Decisions (Definitions 6.2 and 7.6)
    # ------------------------------------------------------------------ #

    def evaluate_unlocks(self) -> UnlockDecision:
        """Evaluate Definition 7.6 over the received blocks.

        Condition 2 is sticky: once met, all current *and future* blocks of
        the round are unlocked, so later calls keep returning
        ``all_unlocked=True``.

        Called on every fast vote and unlock-proof merge, so both
        conditions are evaluated incrementally: Condition 1 is monotone
        (support only grows) and skips already-unlocked blocks, and
        ``supp(nonLeaderBlocks)`` is the maintained running union rather
        than rebuilt per call.  In an uncontested round (one rank-0 block,
        no non-leader blocks) a call is O(1) per pending block instead of
        O(n) set unions.
        """
        non_leader_support = self._non_leader_support
        nls_size = len(non_leader_support)
        threshold = self.unlock_threshold
        unlocked = self._unlocked
        for block_id in self._block_ranks:
            if block_id in unlocked:
                continue
            if nls_size == 0:
                combined = self._support.count(block_id)
            else:
                # |supp(b) ∪ NLS| without materialising the union.
                combined = nls_size + self._support.count_outside(
                    block_id, non_leader_support
                )
            if combined > threshold:
                unlocked.add(block_id)
        if not self._all_unlocked and (
            len(self._block_ranks) > 1 or self._non_leader
        ):
            # Otherwise nonMaxBlocks(k) is empty (at most one received
            # block, of rank 0) and Condition 2 cannot hold — the
            # uncontested-round fast exit.
            non_max = self.non_max_blocks()
            if non_max and len(self.support_of(non_max)) > threshold:
                self._all_unlocked = True
        if self._all_unlocked:
            return UnlockDecision(
                unlocked_blocks=frozenset(self._block_ranks),
                all_unlocked=True,
            )
        return UnlockDecision(unlocked_blocks=frozenset(unlocked), all_unlocked=False)

    def fast_finalizable_blocks(self) -> List[BlockId]:
        """Rank-0 blocks whose support reaches the fast quorum ``n - p``."""
        if not self._support.fired_count():
            # No block has reached the fast quorum yet — skip the scan
            # (this runs on every fast vote of the round).
            return []
        return [
            block_id
            for block_id in self.rank_zero_blocks()
            if self._support.reached(block_id)
        ]

    # ------------------------------------------------------------------ #
    # Unlock proofs (Definition 7.7)
    # ------------------------------------------------------------------ #

    def build_unlock_proof(self, round: int, block_id: BlockId) -> UnlockProof:
        """Build an unlock proof from every fast vote seen this round."""
        ordered: Tuple[Tuple[BlockId, FrozenSet[int]], ...] = tuple(
            sorted((bid, self._support.voters(bid)) for bid in self._support.blocks()
                   if self._support.count(bid))
        )
        return UnlockProof(round=round, block_id=block_id, votes_by_block=ordered)
