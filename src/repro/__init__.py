"""Banyan: Fast Rotating Leader BFT — Python reproduction.

This package reproduces the system described in "Banyan: Fast Rotating
Leader BFT" (Vonlanthen, Sliwinski, Albarello, Wattenhofer; MIDDLEWARE 2024):
the Banyan protocol itself (:mod:`repro.core`), the ICC / HotStuff /
Streamlet baselines (:mod:`repro.protocols`), and every substrate needed to
run and evaluate them — simulated cryptography (:mod:`repro.crypto`), leader
rotation (:mod:`repro.beacon`), a WAN network model (:mod:`repro.net`), a
deterministic discrete-event runtime plus an asyncio runtime
(:mod:`repro.runtime`), the SMR harness (:mod:`repro.smr`), and the
evaluation scenarios reproducing every table and figure of the paper
(:mod:`repro.eval`).

Quickstart::

    from repro import BanyanReplica, ProtocolParams, Simulation, NetworkConfig
    from repro.protocols.registry import create_replicas

    params = ProtocolParams(n=4, f=1, p=1, rank_delay=0.4)
    replicas = create_replicas("banyan", params)
    sim = Simulation(replicas, NetworkConfig())
    sim.run(until=10.0)
    print(len(sim.commits_for(0)), "blocks committed at replica 0")
"""

from repro.core.banyan import BanyanReplica
from repro.eval.experiment import ExperimentConfig, run_experiment
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.icc import ICCReplica
from repro.protocols.streamlet import StreamletReplica
from repro.runtime.simulator import NetworkConfig, Simulation

__version__ = "1.0.0"

__all__ = [
    "BanyanReplica",
    "ExperimentConfig",
    "HotStuffReplica",
    "ICCReplica",
    "NetworkConfig",
    "Protocol",
    "ProtocolParams",
    "Simulation",
    "StreamletReplica",
    "__version__",
    "run_experiment",
]
