"""The finalized chain: a replica's totally ordered output.

Once a block is explicitly finalized (via the slow or the fast path), it and
all of its not-yet-finalized ancestors are appended to the finalized chain
(Algorithm 2 line 59: "output payloads of the last ``k - kMax`` blocks in the
chain ending at ``b``").  The chain is append-only and checks the consistency
properties the safety proof relies on: heights strictly increase along the
chain and each appended segment extends the previous chain head.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.types.blocks import Block, BlockId, genesis_block


class ChainConsistencyError(Exception):
    """Raised when an append would violate chain consistency."""


class FinalizedChain:
    """Append-only ordered list of finalized blocks, starting at genesis."""

    def __init__(self) -> None:
        self._blocks: List[Block] = [genesis_block()]
        self._ids = {self._blocks[0].id}

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._ids

    @property
    def head(self) -> Block:
        """The most recently finalized block."""
        return self._blocks[-1]

    @property
    def height(self) -> int:
        """Round number of the chain head."""
        return self._blocks[-1].round

    def blocks(self) -> List[Block]:
        """Return a copy of the chain, genesis first."""
        return list(self._blocks)

    def block_at(self, index: int) -> Block:
        """Return the block at chain position ``index`` (0 = genesis)."""
        return self._blocks[index]

    def append_segment(self, segment: Iterable[Block]) -> List[Block]:
        """Append a finalized segment (oldest first) extending the head.

        Blocks already in the chain are skipped, so callers may pass the full
        path from genesis.  Returns the blocks actually appended.

        Raises:
            ChainConsistencyError: if the segment does not extend the current
                head or heights do not strictly increase.
        """
        appended: List[Block] = []
        for block in segment:
            if block.id in self._ids:
                continue
            head = self._blocks[-1]
            if block.parent_id != head.id:
                raise ChainConsistencyError(
                    f"block at round {block.round} does not extend chain head "
                    f"(round {head.round})"
                )
            if block.round <= head.round:
                raise ChainConsistencyError(
                    f"non-increasing round {block.round} after {head.round}"
                )
            self._blocks.append(block)
            self._ids.add(block.id)
            appended.append(block)
        return appended

    def prefix_of(self, other: "FinalizedChain") -> bool:
        """Return whether this chain is a prefix of ``other`` (or equal)."""
        if len(self) > len(other):
            return False
        return all(mine.id == theirs.id for mine, theirs in zip(self._blocks, other._blocks))

    def common_prefix_length(self, other: "FinalizedChain") -> int:
        """Return the length of the longest common prefix with ``other``."""
        length = 0
        for mine, theirs in zip(self._blocks, other._blocks):
            if mine.id != theirs.id:
                break
            length += 1
        return length

    def consistent_with(self, other: "FinalizedChain") -> bool:
        """Return whether one of the two chains is a prefix of the other.

        This is the safety property SMR requires of honest replicas.
        """
        return self.prefix_of(other) or other.prefix_of(self)

    def last_finalized_round(self) -> int:
        """Round of the newest finalized block (0 for a fresh chain)."""
        return self._blocks[-1].round

    def find(self, block_id: BlockId) -> Optional[Block]:
        """Return the chain block with ``block_id``, if present."""
        if block_id not in self._ids:
            return None
        for block in self._blocks:
            if block.id == block_id:
                return block
        return None
