"""Block-tree storage and finalized-chain extraction.

Replicas hold a (possibly partial) view of the block tree rooted at genesis
(Section 4 of the paper).  :class:`repro.blocktree.tree.BlockTree` stores
blocks indexed by id and by round, tracks per-block status flags
(notarized / unlocked / finalized), and answers ancestry queries.
:class:`repro.blocktree.chain.FinalizedChain` maintains the totally ordered
chain of finalized blocks that constitutes the replica's output.
"""

from repro.blocktree.chain import FinalizedChain
from repro.blocktree.tree import BlockTree

__all__ = ["BlockTree", "FinalizedChain"]
