"""The per-replica block tree.

The block tree is the central data structure of ICC/Banyan: a tree of blocks
rooted at genesis, to which one or more notarized blocks are added per round
(= tree height).  Each replica has a partial view; blocks can arrive out of
order (a child before its parent), so the tree tolerates "orphan" insertions
and resolves parents lazily.

Status flags tracked per block:

* ``notarized`` — a notarization certificate is known;
* ``unlocked`` — the block satisfies Definition 7.6 (safe to extend);
* ``finalized`` — explicitly or implicitly finalized.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.types.blocks import Block, BlockId, genesis_block


class BlockTreeError(Exception):
    """Raised on structurally invalid block-tree operations."""


class BlockTree:
    """Stores the blocks a replica has received, indexed by id and round.

    The genesis block is inserted automatically and starts out notarized,
    unlocked, and finalized (base case of the deadlock-freeness induction,
    Theorem 8.2).
    """

    def __init__(self) -> None:
        genesis = genesis_block()
        self._blocks: Dict[BlockId, Block] = {genesis.id: genesis}
        self._by_round: Dict[int, List[BlockId]] = {genesis.round: [genesis.id]}
        self._children: Dict[BlockId, List[BlockId]] = {}
        self._notarized: Set[BlockId] = {genesis.id}
        self._unlocked: Set[BlockId] = {genesis.id}
        self._finalized: Set[BlockId] = {genesis.id}
        self._genesis_id = genesis.id

    # ------------------------------------------------------------------ #
    # Insertion and lookup
    # ------------------------------------------------------------------ #

    @property
    def genesis_id(self) -> BlockId:
        """Block id of the genesis block."""
        return self._genesis_id

    def add_block(self, block: Block) -> bool:
        """Insert ``block`` into the tree.

        Returns ``True`` if the block was new, ``False`` if it was already
        present.  Blocks whose parent has not arrived yet are still stored;
        ancestry queries simply stop at the missing link until it arrives.

        Raises:
            BlockTreeError: if a non-genesis block has no parent id.
        """
        if block.id in self._blocks:
            return False
        if block.parent_id is None and not block.is_genesis():
            raise BlockTreeError("non-genesis block must reference a parent")
        self._blocks[block.id] = block
        self._by_round.setdefault(block.round, []).append(block.id)
        if block.parent_id is not None:
            self._children.setdefault(block.parent_id, []).append(block.id)
        return True

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def get(self, block_id: BlockId) -> Optional[Block]:
        """Return the block with ``block_id`` or ``None`` if unknown."""
        return self._blocks.get(block_id)

    def block(self, block_id: BlockId) -> Block:
        """Return the block with ``block_id``.

        Raises:
            KeyError: if the block is unknown.
        """
        return self._blocks[block_id]

    def blocks_at_round(self, round: int) -> List[Block]:
        """Return all known blocks at ``round`` (insertion order)."""
        return [self._blocks[bid] for bid in self._by_round.get(round, [])]

    def children(self, block_id: BlockId) -> List[Block]:
        """Return the known children of ``block_id``."""
        return [self._blocks[bid] for bid in self._children.get(block_id, [])]

    def height(self) -> int:
        """Return the maximum round for which a block is known."""
        return max(self._by_round)

    def __len__(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------ #
    # Status flags
    # ------------------------------------------------------------------ #

    def mark_notarized(self, block_id: BlockId) -> None:
        """Mark ``block_id`` as notarized."""
        self._require_known(block_id)
        self._notarized.add(block_id)

    def mark_unlocked(self, block_id: BlockId) -> None:
        """Mark ``block_id`` as unlocked (Definition 7.6)."""
        self._require_known(block_id)
        self._unlocked.add(block_id)

    def mark_finalized(self, block_id: BlockId) -> None:
        """Mark ``block_id`` as finalized; finalized blocks are also unlocked."""
        self._require_known(block_id)
        self._finalized.add(block_id)
        self._unlocked.add(block_id)

    def is_notarized(self, block_id: BlockId) -> bool:
        """Return whether ``block_id`` is notarized."""
        return block_id in self._notarized

    def is_unlocked(self, block_id: BlockId) -> bool:
        """Return whether ``block_id`` is unlocked."""
        return block_id in self._unlocked

    def is_finalized(self, block_id: BlockId) -> bool:
        """Return whether ``block_id`` is finalized."""
        return block_id in self._finalized

    def notarized_at_round(self, round: int) -> List[Block]:
        """Return the notarized blocks known at ``round``."""
        return [b for b in self.blocks_at_round(round) if self.is_notarized(b.id)]

    def notarized_and_unlocked_at_round(self, round: int) -> List[Block]:
        """Return blocks at ``round`` that are both notarized and unlocked."""
        return [
            b
            for b in self.blocks_at_round(round)
            if self.is_notarized(b.id) and self.is_unlocked(b.id)
        ]

    def finalized_at_round(self, round: int) -> List[Block]:
        """Return the finalized blocks known at ``round`` (0 or 1 if safe)."""
        return [b for b in self.blocks_at_round(round) if self.is_finalized(b.id)]

    # ------------------------------------------------------------------ #
    # Ancestry
    # ------------------------------------------------------------------ #

    def parent(self, block_id: BlockId) -> Optional[Block]:
        """Return the parent block, or ``None`` if unknown or genesis."""
        block = self._blocks.get(block_id)
        if block is None or block.parent_id is None:
            return None
        return self._blocks.get(block.parent_id)

    def ancestors(self, block_id: BlockId, include_self: bool = False) -> List[Block]:
        """Return the ancestors of ``block_id`` from parent up to genesis.

        The walk stops early if a parent has not been received yet.
        """
        result: List[Block] = []
        block = self._blocks.get(block_id)
        if block is None:
            return result
        if include_self:
            result.append(block)
        current = block
        while current.parent_id is not None:
            parent = self._blocks.get(current.parent_id)
            if parent is None:
                break
            result.append(parent)
            current = parent
        return result

    def chain_to(self, block_id: BlockId) -> List[Block]:
        """Return the chain genesis → ``block_id`` (inclusive), oldest first.

        Raises:
            BlockTreeError: if some ancestor of the block has not arrived.
        """
        block = self._blocks.get(block_id)
        if block is None:
            raise BlockTreeError(f"unknown block {block_id[:8]}")
        path = self.ancestors(block_id, include_self=True)
        oldest = path[-1]
        if not oldest.is_genesis():
            raise BlockTreeError(f"chain to {block_id[:8]} is missing ancestors")
        return list(reversed(path))

    def is_ancestor(self, ancestor_id: BlockId, descendant_id: BlockId) -> bool:
        """Return whether ``ancestor_id`` lies on the path genesis → descendant."""
        if ancestor_id == descendant_id:
            return True
        return any(b.id == ancestor_id for b in self.ancestors(descendant_id))

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _require_known(self, block_id: BlockId) -> None:
        if block_id not in self._blocks:
            raise BlockTreeError(f"block {block_id[:8]} not in tree")
