"""Per-replica digital signatures (simulated).

A signature over a message is an HMAC-SHA256 tag computed with the replica's
private key over the canonical digest of the message.  Verification recomputes
the tag using the registry's copy of the signer's private key.  Forgery is not
possible without access to the registry, which protocol code treats as the
trusted PKI oracle.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyRegistry


class SignatureError(Exception):
    """Raised when signing or verification fails structurally."""


@dataclass(frozen=True)
class Signature:
    """A signature share produced by a single replica.

    Attributes:
        signer: replica id that produced the signature.
        tag: the HMAC tag bytes.
        message_digest: digest of the signed message (kept for diagnostics).
    """

    signer: int
    tag: bytes
    message_digest: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.tag, (bytes, bytearray)):
            raise SignatureError("signature tag must be bytes")


def sign(message: Any, signer: int, registry: KeyRegistry) -> Signature:
    """Sign ``message`` on behalf of ``signer``.

    Args:
        message: any canonically-encodable protocol object.
        signer: replica id whose key is used.
        registry: the PKI registry holding the key pair.

    Returns:
        A :class:`Signature` share.

    Raises:
        KeyError: if the signer is not registered.
    """
    message_digest = digest(message)
    key = registry.private_key(signer)
    tag = hmac.new(key, message_digest, hashlib.sha256).digest()
    return Signature(signer=signer, tag=tag, message_digest=message_digest)


def verify(message: Any, signature: Signature, registry: KeyRegistry) -> bool:
    """Return whether ``signature`` is a valid signature of ``message``.

    Verification fails (returns ``False``) if the signer is unknown, the tag
    does not match, or the message digest differs from the signed digest.
    """
    if signature.signer not in registry:
        return False
    message_digest = digest(message)
    if message_digest != signature.message_digest:
        return False
    key = registry.private_key(signature.signer)
    expected = hmac.new(key, message_digest, hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature.tag)
