"""Simulated cryptographic substrate.

The Banyan protocol relies on a public-key infrastructure, secure digital
signatures, collision-resistant hashing, and BLS multi-signature aggregation
(Section 3 of the paper).  This package provides functional, deterministic
stand-ins for those primitives:

* :mod:`repro.crypto.hashing` — collision-resistant hashing of protocol
  objects (SHA-256 over a canonical encoding).
* :mod:`repro.crypto.keys` — key pairs and a :class:`KeyRegistry` acting as
  the PKI.
* :mod:`repro.crypto.signatures` — per-replica signatures (HMAC-SHA256 over
  the message digest keyed by the private key) and verification against the
  registry.
* :mod:`repro.crypto.aggregate` — aggregate ("BLS-like") multi-signatures:
  a container of individual signature shares that verifies each share and
  tracks the signer set, mirroring how the paper combines notarization /
  fast / finalization votes into certificates.  Verification is memoized
  per registry and :func:`repro.crypto.aggregate.verify_many` batches
  repeated certificate checks.

The substitution is documented in DESIGN.md: the protocol only needs
unforgeable, attributable votes and the ability to combine them; the exact
pairing-based construction is irrelevant to the reproduced behaviour.
"""

from repro.crypto.aggregate import AggregateSignature, AggregationError, verify_many
from repro.crypto.hashing import digest, hash_hex
from repro.crypto.keys import KeyPair, KeyRegistry, generate_keypair
from repro.crypto.signatures import Signature, SignatureError, sign, verify

__all__ = [
    "AggregateSignature",
    "AggregationError",
    "KeyPair",
    "KeyRegistry",
    "Signature",
    "SignatureError",
    "digest",
    "generate_keypair",
    "hash_hex",
    "sign",
    "verify",
    "verify_many",
]
