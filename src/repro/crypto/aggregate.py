"""Aggregate ("BLS-like") multi-signatures.

The paper aggregates notarization votes, fast votes, and finalization votes
into compact certificates using BLS multi-signatures [Boneh et al. 2018].
This module provides an :class:`AggregateSignature` container with the same
interface properties the protocol depends on:

* shares from distinct signers over the *same* message can be combined;
* the signer set is explicit (quorum counting);
* verification checks every constituent share against the PKI;
* aggregation is idempotent and order-independent.

The compactness of real BLS aggregation (constant-size signatures) is a
bandwidth optimisation only; it does not change protocol behaviour, so the
simulation keeps the individual tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Tuple

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, verify


class AggregationError(Exception):
    """Raised when signature shares cannot be aggregated."""


@dataclass(frozen=True)
class AggregateSignature:
    """A multi-signature: shares from distinct signers over one message.

    Attributes:
        shares: mapping from signer id to its signature share (stored as a
            sorted tuple of pairs so the object is hashable and canonical).
    """

    shares: Tuple[Tuple[int, Signature], ...] = field(default_factory=tuple)

    @classmethod
    def from_shares(cls, shares: Iterable[Signature]) -> "AggregateSignature":
        """Build an aggregate from individual shares.

        Raises:
            AggregationError: if two shares from the same signer disagree or
                sign different messages.
        """
        by_signer: Dict[int, Signature] = {}
        reference_digest = None
        for share in shares:
            if reference_digest is None:
                reference_digest = share.message_digest
            elif share.message_digest != reference_digest:
                raise AggregationError("cannot aggregate signatures over different messages")
            existing = by_signer.get(share.signer)
            if existing is not None and existing.tag != share.tag:
                raise AggregationError(f"conflicting shares from signer {share.signer}")
            by_signer[share.signer] = share
        ordered = tuple(sorted(by_signer.items()))
        return cls(shares=ordered)

    def signers(self) -> FrozenSet[int]:
        """Return the set of replica ids that contributed a share."""
        return frozenset(signer for signer, _ in self.shares)

    def __len__(self) -> int:
        return len(self.shares)

    def merge(self, other: "AggregateSignature") -> "AggregateSignature":
        """Combine two aggregates over the same message.

        Raises:
            AggregationError: if the aggregates sign different messages.
        """
        return AggregateSignature.from_shares(
            [share for _, share in self.shares] + [share for _, share in other.shares]
        )

    def with_share(self, share: Signature) -> "AggregateSignature":
        """Return a new aggregate including ``share``."""
        return AggregateSignature.from_shares([s for _, s in self.shares] + [share])

    def verify(self, message: Any, registry: KeyRegistry) -> bool:
        """Verify every constituent share against ``message`` and the PKI.

        Verification is memoized per registry, keyed by ``(message digest,
        share tuple)``: protocols re-verify the same certificate on every
        receipt (e.g. ICC's ``_handle_certificate``), and a repeat check
        pays one message digest instead of one HMAC per share.  The memo
        lives on the registry and is invalidated when its key set changes.
        """
        if not self.shares:
            return False
        return self._verify_digest(message, digest(message), registry)

    def _verify_digest(self, message: Any, message_digest: bytes,
                       registry: KeyRegistry) -> bool:
        """Memoized core of :meth:`verify` (the digest is already computed)."""
        cache = registry.aggregate_verify_cache()
        key = (message_digest, self.shares)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = all(
            share.message_digest == message_digest and verify(message, share, registry)
            for _, share in self.shares
        )
        cache[key] = result
        return result

    def verify_threshold(self, message: Any, registry: KeyRegistry, threshold: int) -> bool:
        """Verify the aggregate and check it carries at least ``threshold`` signers."""
        return len(self) >= threshold and self.verify(message, registry)


def verify_many(pairs: Iterable[Tuple[Any, AggregateSignature]],
                registry: KeyRegistry) -> List[bool]:
    """Batch-verify ``(message, aggregate)`` pairs against one PKI.

    Each *distinct* message is digested once (repeated certificate checks
    over the same payload share the digest), and every verification goes
    through the registry's memo, so a batch dominated by repeats costs a
    dictionary lookup per pair instead of per-share HMAC work.  Unhashable
    messages fall back to digesting per occurrence.

    Returns:
        One boolean per pair, in input order.
    """
    digests: Dict[Any, bytes] = {}
    outcomes: List[bool] = []
    for message, aggregate in pairs:
        if not aggregate.shares:
            outcomes.append(False)
            continue
        try:
            message_digest = digests.get(message)
            if message_digest is None:
                message_digest = digest(message)
                digests[message] = message_digest
        except TypeError:
            message_digest = digest(message)
        outcomes.append(aggregate._verify_digest(message, message_digest, registry))
    return outcomes
