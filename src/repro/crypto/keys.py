"""Key pairs and the public-key infrastructure (PKI).

The paper assumes a PKI in which every replica knows every other replica's
public key (Section 3).  We model a key pair as a pair of byte strings derived
deterministically from a replica identifier and a seed, and the PKI as a
:class:`KeyRegistry` mapping replica ids to public keys.

The "private key" is the secret used to key the HMAC in
:mod:`repro.crypto.signatures`; the "public key" is a hash of the private key
so that verification can recompute the expected tag via the registry (the
registry stores the private keys privately — a modelling convenience that
keeps verification honest: a signature only verifies if it was produced with
the matching private key).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional


@dataclass(frozen=True)
class KeyPair:
    """A replica's signing key pair.

    Attributes:
        replica_id: identifier of the replica owning the key.
        private_key: secret signing key bytes.
        public_key: public verification key bytes (hash of the private key).
    """

    replica_id: int
    private_key: bytes
    public_key: bytes


def generate_keypair(replica_id: int, seed: bytes = b"banyan-repro") -> KeyPair:
    """Deterministically derive a key pair for ``replica_id`` from ``seed``."""
    private_key = hmac.new(seed, f"replica:{replica_id}".encode("utf-8"), hashlib.sha256).digest()
    public_key = hashlib.sha256(b"pub" + private_key).digest()
    return KeyPair(replica_id=replica_id, private_key=private_key, public_key=public_key)


class KeyRegistry:
    """The PKI: maps replica ids to their key pairs.

    In a deployment only the public keys would be shared; in this simulation
    the registry also holds the private keys so that signature verification
    can recompute the expected HMAC tag.  Protocol code never reads another
    replica's private key directly — it only calls
    :func:`repro.crypto.signatures.verify`.
    """

    def __init__(self, keypairs: Optional[Iterable[KeyPair]] = None) -> None:
        self._keys: Dict[int, KeyPair] = {}
        #: Memo of aggregate-signature verifications against this PKI,
        #: keyed by ``(message_digest, share_tuple)`` — see
        #: :meth:`repro.crypto.aggregate.AggregateSignature.verify`.
        self._aggregate_verify_cache: Dict[tuple, bool] = {}
        for keypair in keypairs or ():
            self.register(keypair)

    @classmethod
    def for_replicas(cls, n: int, seed: bytes = b"banyan-repro") -> "KeyRegistry":
        """Create a registry with deterministic keys for replicas ``0..n-1``."""
        return cls(generate_keypair(i, seed) for i in range(n))

    def register(self, keypair: KeyPair) -> None:
        """Add ``keypair`` to the registry, replacing any existing entry.

        Registering (or replacing) a key invalidates the aggregate
        verification memo: a share that failed against the old key set may
        verify against the new one.
        """
        self._keys[keypair.replica_id] = keypair
        self._aggregate_verify_cache.clear()

    def aggregate_verify_cache(self) -> Dict[tuple, bool]:
        """The registry's aggregate-signature verification memo."""
        return self._aggregate_verify_cache

    def keypair(self, replica_id: int) -> KeyPair:
        """Return the key pair of ``replica_id``.

        Raises:
            KeyError: if the replica is unknown.
        """
        return self._keys[replica_id]

    def public_key(self, replica_id: int) -> bytes:
        """Return the public key of ``replica_id``."""
        return self._keys[replica_id].public_key

    def private_key(self, replica_id: int) -> bytes:
        """Return the private key of ``replica_id`` (simulation-only access)."""
        return self._keys[replica_id].private_key

    def __contains__(self, replica_id: int) -> bool:
        return replica_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._keys))

    def replica_ids(self) -> list:
        """Return the sorted list of registered replica ids."""
        return sorted(self._keys)
