"""Collision-resistant hashing over protocol objects.

Protocol messages and blocks are plain dataclasses / tuples / primitives.
To hash them deterministically we define a small canonical encoding and run
SHA-256 over it.  The encoding is intentionally simple and explicit rather
than relying on ``pickle`` (whose output is not stable across interpreter
versions) or ``repr``.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any

_SEPARATOR = b"\x1f"
_LIST_OPEN = b"\x02"
_LIST_CLOSE = b"\x03"
_NONE = b"\x00N"


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into a canonical byte string.

    Supported value types are the ones protocol objects are built from:
    ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``, tuples,
    lists, frozensets/sets (sorted by their encoding), dicts (sorted by
    encoded key), and dataclasses (encoded as their field name/value pairs).

    Raises:
        TypeError: if the value contains an unsupported type.
    """
    if value is None:
        return _NONE
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return b"y" + bytes(value)
    if is_dataclass(value) and not isinstance(value, type):
        parts = [b"d" + type(value).__name__.encode("utf-8")]
        for field in fields(value):
            parts.append(
                field.name.encode("utf-8")
                + _SEPARATOR
                + canonical_encode(getattr(value, field.name))
            )
        return _LIST_OPEN + _SEPARATOR.join(parts) + _LIST_CLOSE
    if isinstance(value, (tuple, list)):
        encoded_items = [canonical_encode(item) for item in value]
        return _LIST_OPEN + b"t" + _SEPARATOR.join(encoded_items) + _LIST_CLOSE
    if isinstance(value, (set, frozenset)):
        encoded_items = sorted(canonical_encode(item) for item in value)
        return _LIST_OPEN + b"e" + _SEPARATOR.join(encoded_items) + _LIST_CLOSE
    if isinstance(value, dict):
        encoded_items = sorted(
            canonical_encode(key) + _SEPARATOR + canonical_encode(val)
            for key, val in value.items()
        )
        return _LIST_OPEN + b"m" + _SEPARATOR.join(encoded_items) + _LIST_CLOSE
    raise TypeError(f"cannot canonically encode value of type {type(value)!r}")


def digest(value: Any) -> bytes:
    """Return the 32-byte SHA-256 digest of the canonical encoding of ``value``."""
    return hashlib.sha256(canonical_encode(value)).digest()


def hash_hex(value: Any) -> str:
    """Return the hex SHA-256 digest of the canonical encoding of ``value``."""
    return hashlib.sha256(canonical_encode(value)).hexdigest()
