"""Asyncio TCP transport: real sockets behind the protocol's send seam.

One :class:`TcpTransport` serves one replica process.  It owns:

* a listening server for inbound frames (peers and workload clients);
* one *sender task* per peer, draining that peer's bounded outbound queue
  over a persistent connection, reconnecting with exponential backoff when
  the peer is down or restarting;
* the socket-level fault seam: every outbound frame is judged by the
  optional :class:`repro.cluster.faults.SocketFaultInjector` (drop, or
  delay then send), and every inbound frame is re-judged at delivery time,
  mirroring the simulator's send-time/delivery-time fault symmetry.

**Backpressure.**  Each peer's outbound queue is bounded.  When a peer is
unreachable long enough for its queue to fill, the *oldest* frame is
dropped to admit the newest — consensus messages supersede their
predecessors (a newer certificate subsumes an older vote), so freshness
beats completeness, and a slow peer can never make a replica buffer
unboundedly (the failure mode a naive ``writer.write`` loop has).

**Framing.**  Everything on the wire is a :mod:`repro.cluster.wire` frame.
Self-sends round-trip through ``encode_envelope``/``decode_envelope`` too,
so every message a protocol ever receives — local or remote — went through
the one serialization path.

The transport is deliberately sans-protocol: it moves ``(sender, message)``
envelopes and leaves meaning to the callbacks the node wires in.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.cluster.faults import SocketFaultInjector
from repro.cluster.wire import (
    ClientSubmit,
    FrameDecoder,
    Hello,
    WireError,
    decode_envelope,
    encode_envelope,
    encode_frame,
)

logger = logging.getLogger(__name__)

#: Initial reconnect backoff, seconds.
INITIAL_BACKOFF_S = 0.05

#: Backoff ceiling, seconds.
MAX_BACKOFF_S = 2.0

#: Default per-peer outbound queue depth.
DEFAULT_QUEUE_LIMIT = 4096


class TcpTransport:
    """TCP fan-out for one replica.

    Args:
        replica_id: this node's replica id.
        peers: mapping peer replica id → ``(host, port)``; may include this
            replica's own entry (self-sends never touch a socket).
        on_message: callback ``(sender, message)`` for delivered protocol
            frames; runs on the event loop.
        clock: zero-argument callable returning the cluster epoch time in
            seconds (shared across processes, used for fault windows).
        injector: optional socket-level fault injector.
        on_client_submit: optional callback for :class:`ClientSubmit`
            frames from workload clients.
        queue_limit: per-peer outbound queue depth.
    """

    def __init__(
        self,
        replica_id: int,
        peers: Mapping[int, Tuple[str, int]],
        on_message: Callable[[int, Any], None],
        clock: Callable[[], float],
        injector: Optional[SocketFaultInjector] = None,
        on_client_submit: Optional[Callable[[ClientSubmit], None]] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        self.replica_id = replica_id
        self.peers = {peer: address for peer, address in peers.items()
                      if peer != replica_id}
        self._on_message = on_message
        self._clock = clock
        self._injector = injector
        self._on_client_submit = on_client_submit
        self._queue_limit = queue_limit
        self._queues: Dict[int, asyncio.Queue] = {}
        self._sender_tasks: Dict[int, asyncio.Task] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = False
        #: Observability counters, harvested into the node's summary.
        self.stats: Dict[str, int] = {
            "sent_frames": 0, "sent_bytes": 0,
            "recv_frames": 0, "recv_bytes": 0,
            "dropped_fault": 0, "dropped_backpressure": 0,
            "reconnects": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self, host: str, port: int) -> None:
        """Bind the listening server and launch one sender task per peer."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._serve_connection,
                                                  host, port)
        for peer in sorted(self.peers):
            self._queues[peer] = asyncio.Queue(maxsize=self._queue_limit)
            self._sender_tasks[peer] = self._loop.create_task(
                self._sender_loop(peer)
            )

    async def stop(self) -> None:
        """Cancel sender tasks and close the server."""
        self._stopped = True
        for task in self._sender_tasks.values():
            task.cancel()
        if self._sender_tasks:
            await asyncio.gather(*self._sender_tasks.values(),
                                 return_exceptions=True)
        self._sender_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #

    def send(self, receiver: int, message: Any) -> None:
        """Enqueue ``message`` for ``receiver`` (callable from callbacks).

        Self-sends are delivered on the next loop iteration after a
        round-trip through the wire encoding, so the local path exercises
        the same serialization as the socket path.
        """
        if receiver == self.replica_id:
            envelope = encode_envelope(self.replica_id, message)
            if self._loop is not None:
                self._loop.call_soon(self._deliver_local, envelope)
            return
        queue = self._queues.get(receiver)
        if queue is None:
            return
        frame = encode_frame(self.replica_id, message)
        try:
            queue.put_nowait(frame)
        except asyncio.QueueFull:
            # Drop the oldest frame: the newest protocol state supersedes it.
            try:
                queue.get_nowait()
                self.stats["dropped_backpressure"] += 1
            except asyncio.QueueEmpty:  # pragma: no cover - racy corner
                pass
            try:
                queue.put_nowait(frame)
            except asyncio.QueueFull:  # pragma: no cover - racy corner
                self.stats["dropped_backpressure"] += 1

    def broadcast(self, message: Any, replica_ids) -> None:
        """Send ``message`` to every replica in ``replica_ids`` (incl. self)."""
        for receiver in replica_ids:
            self.send(receiver, message)

    def _deliver_local(self, envelope: bytes) -> None:
        sender, message = decode_envelope(envelope)
        self._dispatch(sender, message)

    async def _sender_loop(self, peer: int) -> None:
        """Drain one peer's queue over a persistent, self-healing connection."""
        host, port = self.peers[peer]
        queue = self._queues[peer]
        backoff = INITIAL_BACKOFF_S
        pending: Optional[bytes] = None
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while not self._stopped:
                if writer is None:
                    try:
                        _, writer = await asyncio.open_connection(host, port)
                    except OSError:
                        await asyncio.sleep(backoff)
                        backoff = min(backoff * 2, MAX_BACKOFF_S)
                        continue
                    backoff = INITIAL_BACKOFF_S
                    self.stats["reconnects"] += 1
                    writer.write(encode_frame(
                        self.replica_id, Hello(sender=self.replica_id)))
                try:
                    if pending is None:
                        pending = await queue.get()
                        verdict = (self._injector.outbound(peer, self._clock())
                                   if self._injector is not None else 0.0)
                        if verdict is None:
                            self.stats["dropped_fault"] += 1
                            pending = None
                            continue
                        if verdict > 0:
                            await asyncio.sleep(verdict)
                    writer.write(pending)
                    await writer.drain()
                    self.stats["sent_frames"] += 1
                    self.stats["sent_bytes"] += len(pending)
                    pending = None
                except (ConnectionError, OSError):
                    # Keep the frame; retry it once the peer is back.
                    self._close_writer(writer)
                    writer = None
        except asyncio.CancelledError:
            pass
        finally:
            self._close_writer(writer)

    @staticmethod
    def _close_writer(writer: Optional[asyncio.StreamWriter]) -> None:
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Read frames from one inbound connection until EOF or WireError."""
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                self.stats["recv_bytes"] += len(data)
                for sender, message in decoder.feed(data):
                    self.stats["recv_frames"] += 1
                    self._dispatch(sender, message)
        except WireError as exc:
            logger.warning("replica %d: dropping connection after wire error: %s",
                           self.replica_id, exc)
        except (ConnectionError, OSError):
            pass
        finally:
            self._close_writer(writer)

    def _dispatch(self, sender: int, message: Any) -> None:
        if isinstance(message, Hello):
            return
        if isinstance(message, ClientSubmit):
            if self._on_client_submit is not None:
                self._on_client_submit(message)
            return
        if self._injector is not None and not self._injector.inbound(
                sender, self._clock()):
            self.stats["dropped_fault"] += 1
            return
        self._on_message(sender, message)
