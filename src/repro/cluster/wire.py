"""Versioned, length-prefixed binary wire format for cluster traffic.

The simulator passes message *objects* between replicas; a real cluster
passes *bytes*.  This module defines the byte encoding: a small tag-based
binary format with lossless encode/decode for every type a protocol may put
on the wire — :class:`repro.types.blocks.Block`, every vote subclass, every
certificate (notarization / finalization / fast finalization / unlock
proof), signatures and aggregates, and the three top-level message shapes
(:class:`repro.types.messages.BlockProposal`,
:class:`repro.types.messages.VoteMessage`,
:class:`repro.types.messages.CertificateMessage`) — plus the two
cluster-control shapes (:class:`Hello`, :class:`ClientSubmit`).

**Framing.**  A frame is ``magic (1) | version (1) | length (4, BE) |
payload``.  The payload is an *envelope*: the sender's replica id followed
by one tagged object.  :class:`FrameDecoder` incrementally splits a TCP
byte stream back into envelopes.

**Integers** are LEB128 varints (zigzag for signed values), **strings** are
length-prefixed UTF-8, and optionals either carry a presence byte or use
the ``NONE`` tag.  Every read is bounds-checked: truncated or corrupted
input raises :class:`WireError` — never ``IndexError``/``struct.error`` —
so a node can drop a bad peer instead of crashing.

The format is deliberately independent of :mod:`pickle` (unsafe across
trust boundaries, unstable across interpreters) and of
:func:`repro.crypto.hashing.canonical_encode` (which is one-way).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.crypto.aggregate import AggregateSignature
from repro.crypto.signatures import Signature
from repro.types.blocks import Block
from repro.types.certificates import (
    Certificate,
    FastFinalization,
    Finalization,
    Notarization,
    UnlockProof,
)
from repro.types.messages import BlockProposal, CertificateMessage, VoteMessage
from repro.types.votes import Vote, VoteKind, make_vote

#: First byte of every frame.
WIRE_MAGIC = 0xB7

#: Format version; bump on any incompatible encoding change.
WIRE_VERSION = 1

#: Upper bound on a frame payload — a corrupt length prefix must not make a
#: node allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_FRAME_HEADER = struct.Struct(">BBI")

#: Frame overhead in bytes (magic + version + length prefix).
FRAME_HEADER_SIZE = _FRAME_HEADER.size


class WireError(Exception):
    """Raised for any malformed, truncated, or unsupported wire input."""


# --------------------------------------------------------------------- #
# Cluster-control message shapes
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Hello:
    """Connection handshake: who is on the other end of the socket.

    Attributes:
        sender: replica id (or client id) of the connecting endpoint.
        role: ``"replica"`` or ``"client"``.
    """

    sender: int
    role: str = "replica"


@dataclass(frozen=True)
class ClientSubmit:
    """A workload client submitting one transaction to a replica's mempool."""

    transaction: bytes
    client_id: int = 0


# --------------------------------------------------------------------- #
# Type tags
# --------------------------------------------------------------------- #

_TAG_NONE = 0x00
_TAG_BLOCK = 0x01
_TAG_VOTE = 0x02
_TAG_SIGNATURE = 0x03
_TAG_AGGREGATE = 0x04
_TAG_NOTARIZATION = 0x05
_TAG_FINALIZATION = 0x06
_TAG_FAST_FINALIZATION = 0x07
_TAG_UNLOCK_PROOF = 0x08
_TAG_BLOCK_PROPOSAL = 0x10
_TAG_VOTE_MESSAGE = 0x11
_TAG_CERTIFICATE_MESSAGE = 0x12
_TAG_HELLO = 0x20
_TAG_CLIENT_SUBMIT = 0x21

_VOTE_KIND_CODES = {
    VoteKind.NOTARIZATION: 0,
    VoteKind.FAST: 1,
    VoteKind.FINALIZATION: 2,
}
_VOTE_KINDS_BY_CODE = {code: kind for kind, code in _VOTE_KIND_CODES.items()}

_CERTIFICATE_TAGS = {
    Notarization: _TAG_NOTARIZATION,
    Finalization: _TAG_FINALIZATION,
    FastFinalization: _TAG_FAST_FINALIZATION,
}


# --------------------------------------------------------------------- #
# Primitive writers
# --------------------------------------------------------------------- #


def _w_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise WireError(f"cannot encode negative value {value} as unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _w_ivarint(out: bytearray, value: int) -> None:
    # Zigzag: small negative ints stay small on the wire.
    _w_uvarint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)


def _w_bytes(out: bytearray, value: bytes) -> None:
    _w_uvarint(out, len(value))
    out += value


def _w_str(out: bytearray, value: str) -> None:
    _w_bytes(out, value.encode("utf-8"))


def _w_bool(out: bytearray, value: bool) -> None:
    out.append(1 if value else 0)


# --------------------------------------------------------------------- #
# Bounds-checked reader
# --------------------------------------------------------------------- #


class _Reader:
    """Sequential bounds-checked reads over one payload buffer."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise WireError("truncated varint")
            byte = self._data[self._pos]
            self._pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 640:
                raise WireError("varint too long")

    def ivarint(self) -> int:
        encoded = self.uvarint()
        return (encoded >> 1) ^ -(encoded & 1)

    def bytes_(self) -> bytes:
        length = self.uvarint()
        if self._pos + length > len(self._data):
            raise WireError("truncated byte string")
        value = self._data[self._pos:self._pos + length]
        self._pos += length
        return bytes(value)

    def str_(self) -> str:
        try:
            return self.bytes_().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"invalid UTF-8 string: {exc}") from exc

    def byte(self) -> int:
        if self._pos >= len(self._data):
            raise WireError("truncated payload")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def bool_(self) -> bool:
        value = self.byte()
        if value not in (0, 1):
            raise WireError(f"invalid boolean byte {value:#x}")
        return bool(value)

    def finish(self) -> None:
        if self._pos != len(self._data):
            raise WireError(
                f"{len(self._data) - self._pos} trailing byte(s) after payload"
            )


# --------------------------------------------------------------------- #
# Per-type encoders
# --------------------------------------------------------------------- #


def _encode_optional_uint(out: bytearray, value: Optional[int]) -> None:
    if value is None:
        _w_bool(out, False)
    else:
        _w_bool(out, True)
        _w_uvarint(out, value)


def _decode_optional_uint(reader: _Reader) -> Optional[int]:
    return reader.uvarint() if reader.bool_() else None


def _encode_optional_str(out: bytearray, value: Optional[str]) -> None:
    if value is None:
        _w_bool(out, False)
    else:
        _w_bool(out, True)
        _w_str(out, value)


def _decode_optional_str(reader: _Reader) -> Optional[str]:
    return reader.str_() if reader.bool_() else None


def _encode_block(out: bytearray, block: Block) -> None:
    _w_uvarint(out, block.round)
    _w_ivarint(out, block.proposer)
    _w_uvarint(out, block.rank)
    _encode_optional_str(out, block.parent_id)
    _w_bytes(out, block.payload)
    _encode_optional_uint(out, block.payload_size)


def _decode_block(reader: _Reader) -> Block:
    return Block(
        round=reader.uvarint(),
        proposer=reader.ivarint(),
        rank=reader.uvarint(),
        parent_id=_decode_optional_str(reader),
        payload=reader.bytes_(),
        payload_size=_decode_optional_uint(reader),
    )


def _encode_vote(out: bytearray, vote: Vote) -> None:
    out.append(_VOTE_KIND_CODES[vote.kind])
    _w_uvarint(out, vote.round)
    _w_str(out, vote.block_id)
    _w_ivarint(out, vote.voter)
    _encode_obj(out, vote.signature)


def _decode_vote(reader: _Reader) -> Vote:
    code = reader.byte()
    kind = _VOTE_KINDS_BY_CODE.get(code)
    if kind is None:
        raise WireError(f"unknown vote kind code {code:#x}")
    round_k = reader.uvarint()
    block_id = reader.str_()
    voter = reader.ivarint()
    signature = _decode_obj(reader)
    if signature is not None and not isinstance(signature, Signature):
        raise WireError("vote signature field holds a non-signature object")
    return make_vote(kind, round_k, block_id, voter, signature)


def _encode_signature(out: bytearray, signature: Signature) -> None:
    _w_ivarint(out, signature.signer)
    _w_bytes(out, signature.tag)
    _w_bytes(out, signature.message_digest)


def _decode_signature(reader: _Reader) -> Signature:
    return Signature(signer=reader.ivarint(), tag=reader.bytes_(),
                     message_digest=reader.bytes_())


def _encode_aggregate(out: bytearray, aggregate: AggregateSignature) -> None:
    _w_uvarint(out, len(aggregate.shares))
    for signer, share in aggregate.shares:
        _w_ivarint(out, signer)
        _encode_signature(out, share)


def _decode_aggregate(reader: _Reader) -> AggregateSignature:
    count = reader.uvarint()
    shares = tuple(
        (reader.ivarint(), _decode_signature(reader)) for _ in range(count)
    )
    return AggregateSignature(shares=shares)


def _encode_certificate(out: bytearray, certificate: Certificate) -> None:
    _w_uvarint(out, certificate.round)
    _w_str(out, certificate.block_id)
    voters = sorted(certificate.voters)
    _w_uvarint(out, len(voters))
    for voter in voters:
        _w_ivarint(out, voter)
    _encode_obj(out, certificate.aggregate)


def _decode_certificate(reader: _Reader, cls: type) -> Certificate:
    round_k = reader.uvarint()
    block_id = reader.str_()
    voters = frozenset(reader.ivarint() for _ in range(reader.uvarint()))
    aggregate = _decode_obj(reader)
    if aggregate is not None and not isinstance(aggregate, AggregateSignature):
        raise WireError("certificate aggregate field holds a non-aggregate object")
    return cls(round=round_k, block_id=block_id, voters=voters,
               aggregate=aggregate)


def _encode_unlock_proof(out: bytearray, proof: UnlockProof) -> None:
    _w_uvarint(out, proof.round)
    _w_str(out, proof.block_id)
    _w_uvarint(out, len(proof.votes_by_block))
    for block_id, voters in proof.votes_by_block:
        _w_str(out, block_id)
        ordered = sorted(voters)
        _w_uvarint(out, len(ordered))
        for voter in ordered:
            _w_ivarint(out, voter)


def _decode_unlock_proof(reader: _Reader) -> UnlockProof:
    round_k = reader.uvarint()
    block_id = reader.str_()
    entries: List[Tuple[str, frozenset]] = []
    for _ in range(reader.uvarint()):
        entry_id = reader.str_()
        voters = frozenset(reader.ivarint() for _ in range(reader.uvarint()))
        entries.append((entry_id, voters))
    return UnlockProof(round=round_k, block_id=block_id,
                       votes_by_block=tuple(entries))


def _encode_proposal(out: bytearray, proposal: BlockProposal) -> None:
    _encode_block(out, proposal.block)
    _encode_obj(out, proposal.parent_notarization)
    _encode_obj(out, proposal.parent_unlock_proof)
    _encode_obj(out, proposal.fast_vote)
    if proposal.relayed_by is None:
        _w_bool(out, False)
    else:
        _w_bool(out, True)
        _w_ivarint(out, proposal.relayed_by)


def _decode_proposal(reader: _Reader) -> BlockProposal:
    block = _decode_block(reader)
    notarization = _decode_obj(reader)
    unlock_proof = _decode_obj(reader)
    fast_vote = _decode_obj(reader)
    relayed_by = reader.ivarint() if reader.bool_() else None
    if notarization is not None and not isinstance(notarization, Notarization):
        raise WireError("proposal parent_notarization holds a wrong type")
    if unlock_proof is not None and not isinstance(unlock_proof, UnlockProof):
        raise WireError("proposal parent_unlock_proof holds a wrong type")
    if fast_vote is not None and not isinstance(fast_vote, Vote):
        raise WireError("proposal fast_vote holds a wrong type")
    return BlockProposal(block=block, parent_notarization=notarization,
                         parent_unlock_proof=unlock_proof,
                         fast_vote=fast_vote, relayed_by=relayed_by)


def _encode_vote_message(out: bytearray, message: VoteMessage) -> None:
    _w_uvarint(out, len(message.votes))
    for vote in message.votes:
        _encode_vote(out, vote)
    _w_ivarint(out, message.sender)


def _decode_vote_message(reader: _Reader) -> VoteMessage:
    votes = tuple(_decode_vote(reader) for _ in range(reader.uvarint()))
    return VoteMessage(votes=votes, sender=reader.ivarint())


def _encode_certificate_message(out: bytearray, message: CertificateMessage) -> None:
    _encode_obj(out, message.certificate)
    _encode_obj(out, message.unlock_proof)
    _w_ivarint(out, message.sender)


def _decode_certificate_message(reader: _Reader) -> CertificateMessage:
    certificate = _decode_obj(reader)
    unlock_proof = _decode_obj(reader)
    sender = reader.ivarint()
    if certificate is not None and not isinstance(
            certificate, (Notarization, Finalization, FastFinalization)):
        raise WireError("certificate message carries a non-certificate object")
    if unlock_proof is not None and not isinstance(unlock_proof, UnlockProof):
        raise WireError("certificate message unlock_proof holds a wrong type")
    return CertificateMessage(certificate=certificate,
                              unlock_proof=unlock_proof, sender=sender)


def _encode_hello(out: bytearray, hello: Hello) -> None:
    _w_ivarint(out, hello.sender)
    _w_str(out, hello.role)


def _decode_hello(reader: _Reader) -> Hello:
    return Hello(sender=reader.ivarint(), role=reader.str_())


def _encode_client_submit(out: bytearray, submit: ClientSubmit) -> None:
    _w_bytes(out, submit.transaction)
    _w_ivarint(out, submit.client_id)


def _decode_client_submit(reader: _Reader) -> ClientSubmit:
    return ClientSubmit(transaction=reader.bytes_(), client_id=reader.ivarint())


# --------------------------------------------------------------------- #
# Tagged object dispatch
# --------------------------------------------------------------------- #


def _encode_obj(out: bytearray, obj: Any) -> None:
    """Append one tagged object (the format's recursive unit)."""
    if obj is None:
        out.append(_TAG_NONE)
    elif isinstance(obj, BlockProposal):
        out.append(_TAG_BLOCK_PROPOSAL)
        _encode_proposal(out, obj)
    elif isinstance(obj, VoteMessage):
        out.append(_TAG_VOTE_MESSAGE)
        _encode_vote_message(out, obj)
    elif isinstance(obj, CertificateMessage):
        out.append(_TAG_CERTIFICATE_MESSAGE)
        _encode_certificate_message(out, obj)
    elif isinstance(obj, Block):
        out.append(_TAG_BLOCK)
        _encode_block(out, obj)
    elif isinstance(obj, Vote):
        out.append(_TAG_VOTE)
        _encode_vote(out, obj)
    elif isinstance(obj, UnlockProof):
        out.append(_TAG_UNLOCK_PROOF)
        _encode_unlock_proof(out, obj)
    elif isinstance(obj, Signature):
        out.append(_TAG_SIGNATURE)
        _encode_signature(out, obj)
    elif isinstance(obj, AggregateSignature):
        out.append(_TAG_AGGREGATE)
        _encode_aggregate(out, obj)
    elif isinstance(obj, Hello):
        out.append(_TAG_HELLO)
        _encode_hello(out, obj)
    elif isinstance(obj, ClientSubmit):
        out.append(_TAG_CLIENT_SUBMIT)
        _encode_client_submit(out, obj)
    elif type(obj) in _CERTIFICATE_TAGS:
        out.append(_CERTIFICATE_TAGS[type(obj)])
        _encode_certificate(out, obj)
    elif isinstance(obj, Certificate):
        # A Certificate subclass the wire format does not know (e.g. a
        # test-only variant) must fail loudly, not silently mis-tag.
        raise WireError(f"cannot encode certificate type {type(obj).__name__}")
    else:
        raise WireError(f"cannot encode object of type {type(obj).__name__}")


def _decode_obj(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BLOCK_PROPOSAL:
        return _decode_proposal(reader)
    if tag == _TAG_VOTE_MESSAGE:
        return _decode_vote_message(reader)
    if tag == _TAG_CERTIFICATE_MESSAGE:
        return _decode_certificate_message(reader)
    if tag == _TAG_BLOCK:
        return _decode_block(reader)
    if tag == _TAG_VOTE:
        return _decode_vote(reader)
    if tag == _TAG_UNLOCK_PROOF:
        return _decode_unlock_proof(reader)
    if tag == _TAG_SIGNATURE:
        return _decode_signature(reader)
    if tag == _TAG_AGGREGATE:
        return _decode_aggregate(reader)
    if tag == _TAG_HELLO:
        return _decode_hello(reader)
    if tag == _TAG_CLIENT_SUBMIT:
        return _decode_client_submit(reader)
    if tag == _TAG_NOTARIZATION:
        return _decode_certificate(reader, Notarization)
    if tag == _TAG_FINALIZATION:
        return _decode_certificate(reader, Finalization)
    if tag == _TAG_FAST_FINALIZATION:
        return _decode_certificate(reader, FastFinalization)
    raise WireError(f"unknown wire tag {tag:#x}")


# --------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------- #


def encode_payload(obj: Any) -> bytes:
    """Encode a single object (no sender, no frame header)."""
    out = bytearray()
    _encode_obj(out, obj)
    return bytes(out)


def decode_payload(data: bytes) -> Any:
    """Decode a single object; trailing bytes raise :class:`WireError`."""
    reader = _Reader(data)
    obj = _decode_obj(reader)
    reader.finish()
    return obj


def encode_envelope(sender: int, message: Any) -> bytes:
    """Encode ``(sender, message)`` — the payload of one frame."""
    out = bytearray()
    _w_ivarint(out, sender)
    _encode_obj(out, message)
    return bytes(out)


def decode_envelope(data: bytes) -> Tuple[int, Any]:
    """Decode one envelope payload back into ``(sender, message)``."""
    reader = _Reader(data)
    sender = reader.ivarint()
    message = _decode_obj(reader)
    reader.finish()
    return sender, message


def encode_frame(sender: int, message: Any) -> bytes:
    """Encode ``(sender, message)`` as one self-delimiting wire frame."""
    payload = encode_envelope(sender, message)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame payload of {len(payload)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit")
    return _FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, len(payload)) + payload


class FrameDecoder:
    """Incremental splitter of a TCP byte stream into envelopes.

    Feed arbitrary chunks; complete frames come out as ``(sender, message)``
    pairs.  A partial frame simply waits for more bytes; a corrupt header
    (bad magic, unsupported version, oversized length) or a malformed
    payload raises :class:`WireError` — the caller should drop the
    connection, since the stream can no longer be re-synchronised.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered_bytes(self) -> int:
        """Bytes waiting for the rest of their frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[Tuple[int, Any]]:
        """Add ``data`` to the buffer and yield every completed envelope."""
        self._buffer += data
        while len(self._buffer) >= FRAME_HEADER_SIZE:
            magic, version, length = _FRAME_HEADER.unpack_from(self._buffer)
            if magic != WIRE_MAGIC:
                raise WireError(f"bad frame magic {magic:#x}")
            if version != WIRE_VERSION:
                raise WireError(f"unsupported wire version {version}")
            if length > MAX_FRAME_BYTES:
                raise WireError(f"frame length {length} exceeds the "
                                f"{MAX_FRAME_BYTES}-byte limit")
            end = FRAME_HEADER_SIZE + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[FRAME_HEADER_SIZE:end])
            del self._buffer[:end]
            yield decode_envelope(payload)
