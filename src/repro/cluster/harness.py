"""Local cluster harness: spawn real replica processes, load them, judge them.

This is the orchestration layer behind ``banyan-repro cluster``:

* :class:`LocalCluster` spawns one ``python -m repro.cluster.node`` process
  per replica on localhost, each with its own config file, commit log and
  summary file, and can SIGKILL / restart individual replicas mid-run.
* :func:`run_workload` drives open-loop Poisson clients over the same wire
  protocol the replicas speak (``ClientSubmit`` frames), assigning each
  transaction to one replica round-robin so blocks carry real client bytes.
* :func:`cross_validate` replays the harvested commit logs through the
  *simulator's* :class:`repro.chaos.invariants.InvariantChecker` — the real
  cluster's committed sequences must satisfy the exact agreement /
  certified-ancestry / fast-path-soundness checks the chaos engine applies
  to simulated runs, plus the same healed-network liveness rule.  Commit
  logs store every content-addressed block field, so the reconstructed
  blocks hash to the ids the replicas actually certified; the checker is
  judging the real chains, not copies of a summary.
* :func:`run_local_cluster` ties it together and produces a
  :class:`ClusterResult` with :class:`repro.smr.metrics.RunMetrics`
  harvested from the observer replica's log — the same report machinery
  the simulator feeds.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.schedule import ChaosSchedule
from repro.cluster.node import NodeConfig
from repro.cluster.wire import ClientSubmit, Hello, encode_frame
from repro.runtime.simulator import CommitRecord
from repro.smr.metrics import MetricsCollector, RunMetrics
from repro.types.blocks import Block

#: Wall-clock lead the harness gives nodes to bind sockets and connect
#: before the coordinated protocol start.
DEFAULT_START_DELAY_S = 1.0

#: Extra wall-clock slack allowed for a node process to exit after its
#: protocol horizon elapsed.
SHUTDOWN_GRACE_S = 20.0

_TX_PREFIX = b"tx:"


def encode_transaction(tx_id: int, client_id: int, size: int) -> bytes:
    """A self-describing workload transaction of ``size`` bytes.

    The ``tx:<id>:<client>:`` header lets :func:`split_transactions`
    recover submissions from committed payloads for latency accounting;
    the remainder is zero padding up to the requested size.
    """
    header = b"%s%d:%d:" % (_TX_PREFIX, tx_id, client_id)
    if len(header) >= size:
        return header
    return header + b"\x00" * (size - len(header))


def split_transactions(payload: bytes) -> List[Tuple[int, int]]:
    """Recover ``(tx_id, client_id)`` pairs from a committed payload.

    Payloads are concatenations of :func:`encode_transaction` outputs;
    non-workload payloads (synthetic tags, empty blocks) yield ``[]``.
    """
    pairs: List[Tuple[int, int]] = []
    for chunk in payload.split(_TX_PREFIX)[1:]:
        parts = chunk.split(b":", 2)
        if len(parts) < 3:
            continue
        try:
            pairs.append((int(parts[0]), int(parts[1])))
        except ValueError:
            continue
    return pairs


def pick_free_ports(count: int) -> List[int]:
    """Reserve ``count`` distinct free TCP ports on localhost."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@dataclass
class ReplicaHandle:
    """One spawned replica process and its on-disk artifacts."""

    replica_id: int
    config: NodeConfig
    config_path: Path
    commit_log: Path
    summary_path: Path
    stdio_path: Path
    process: Optional[subprocess.Popen] = None
    kills: int = 0


class LocalCluster:
    """An n-replica cluster of real processes on localhost.

    Args:
        protocol: registered protocol name.
        n / f / p: replica count, fault bound, fast-path parameter.
        duration: protocol-time horizon each node runs for.
        log_dir: directory for configs, commit logs, summaries, stdio.
        rank_delay / round_timeout / payload_size: protocol parameters.
        seed: base seed (fault RNGs).
        schedule: optional chaos schedule replayed at the socket layer.
        start_delay: wall-clock lead before the coordinated start.
        max_block_bytes: per-proposal mempool drain budget.
        base_port: first port of a contiguous range; ``None`` asks the OS
            for free ports.
    """

    def __init__(
        self,
        protocol: str,
        n: int,
        *,
        duration: float,
        log_dir: Path,
        f: Optional[int] = None,
        p: Optional[int] = None,
        rank_delay: float = 0.05,
        round_timeout: float = 1.0,
        payload_size: int = 0,
        seed: int = 0,
        schedule: Optional[ChaosSchedule] = None,
        start_delay: float = DEFAULT_START_DELAY_S,
        max_block_bytes: int = 65_536,
        base_port: Optional[int] = None,
    ) -> None:
        self.protocol = protocol
        self.n = n
        self.f = (n - 1) // 3 if f is None else f
        self.p = max(1, self.f) if p is None else p
        self.duration = duration
        self.log_dir = Path(log_dir)
        self.schedule = schedule or ChaosSchedule()
        self.start_delay = start_delay
        self.start_at: float = 0.0
        self.log_dir.mkdir(parents=True, exist_ok=True)
        if base_port is None:
            ports = pick_free_ports(n)
        else:
            ports = [base_port + rid for rid in range(n)]
        self.peers: Dict[int, Tuple[str, int]] = {
            rid: ("127.0.0.1", ports[rid]) for rid in range(n)
        }
        self.replicas: Dict[int, ReplicaHandle] = {}
        for rid in range(n):
            commit_log = self.log_dir / f"replica-{rid}.commits.jsonl"
            summary = self.log_dir / f"replica-{rid}.summary.json"
            stdio = self.log_dir / f"replica-{rid}.stdio.log"
            config = NodeConfig(
                replica_id=rid,
                protocol=protocol,
                n=n, f=self.f, p=self.p,
                peers=self.peers,
                seed=seed,
                rank_delay=rank_delay,
                round_timeout=round_timeout,
                payload_size=payload_size,
                duration=duration,
                commit_log=str(commit_log),
                summary_path=str(summary),
                schedule=self.schedule.to_dict() if len(self.schedule) else None,
                max_block_bytes=max_block_bytes,
            )
            self.replicas[rid] = ReplicaHandle(
                replica_id=rid, config=config,
                config_path=self.log_dir / f"replica-{rid}.config.json",
                commit_log=commit_log, summary_path=summary, stdio_path=stdio,
            )

    # ------------------------------------------------------------------ #
    # Process control
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Write configs and spawn every replica with a shared start instant."""
        self.start_at = time.time() + self.start_delay
        for handle in self.replicas.values():
            handle.config.start_at = self.start_at
            handle.config_path.write_text(
                json.dumps(handle.config.to_dict(), indent=2) + "\n",
                encoding="utf-8")
        for handle in self.replicas.values():
            self._spawn(handle)

    def _spawn(self, handle: ReplicaHandle) -> None:
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        stdio = open(handle.stdio_path, "a", encoding="utf-8")
        try:
            handle.process = subprocess.Popen(
                [sys.executable, "-m", "repro.cluster.node",
                 "--config", str(handle.config_path)],
                stdout=stdio, stderr=subprocess.STDOUT, env=env,
            )
        finally:
            stdio.close()

    def kill(self, replica_id: int) -> None:
        """SIGKILL one replica process (a *real* crash, not a simulated one)."""
        handle = self.replicas[replica_id]
        if handle.process is not None and handle.process.poll() is None:
            handle.process.send_signal(signal.SIGKILL)
            handle.process.wait()
        handle.kills += 1

    def restart(self, replica_id: int) -> None:
        """Respawn a killed replica with its original config.

        The restarted process re-derives the cluster epoch from the
        ``start_at`` already in the past, so its clock and fault windows
        stay aligned with the survivors; its protocol state starts fresh.
        """
        self._spawn(self.replicas[replica_id])

    def wait(self, timeout: Optional[float] = None) -> Dict[int, int]:
        """Wait for every process to exit; returns replica id → exit code.

        Processes still alive at the deadline are SIGKILLed and reported
        with their (negative) signal code.
        """
        if timeout is None:
            timeout = (self.start_at - time.time()) + self.duration + SHUTDOWN_GRACE_S
        deadline = time.time() + timeout
        codes: Dict[int, int] = {}
        for rid, handle in sorted(self.replicas.items()):
            if handle.process is None:
                continue
            remaining = max(0.0, deadline - time.time())
            try:
                codes[rid] = handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.send_signal(signal.SIGKILL)
                codes[rid] = handle.process.wait()
        return codes

    def stop(self) -> None:
        """Terminate any replica processes still running."""
        for handle in self.replicas.values():
            if handle.process is not None and handle.process.poll() is None:
                handle.process.terminate()
                try:
                    handle.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    handle.process.send_signal(signal.SIGKILL)
                    handle.process.wait()

    # ------------------------------------------------------------------ #
    # Harvest
    # ------------------------------------------------------------------ #

    def commit_records(self) -> Tuple[List[CommitRecord], List[Dict[str, object]]]:
        """Parse all commit logs into simulator-shaped records.

        Returns ``(records, errors)``: records sorted by commit time, and
        any ``error`` lines nodes wrote (protocol exceptions in a real run).
        Blocks are rebuilt from their logged fields; ids are recomputed
        from content, so invariant checks operate on the real chains.
        """
        records: List[CommitRecord] = []
        errors: List[Dict[str, object]] = []
        for handle in self.replicas.values():
            if not handle.commit_log.exists():
                continue
            with open(handle.commit_log, "r", encoding="utf-8") as lines:
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    if entry.get("type") == "error":
                        errors.append(entry)
                        continue
                    if entry.get("type") != "commit":
                        continue
                    block = Block(
                        round=int(entry["round"]),
                        proposer=int(entry["proposer"]),
                        rank=int(entry["rank"]),
                        parent_id=entry["parent_id"],
                        payload=bytes.fromhex(entry["payload"]),
                        payload_size=int(entry["payload_size"]),
                    )
                    records.append(CommitRecord(
                        replica_id=int(entry["replica"]),
                        block=block,
                        commit_time=float(entry["t"]),
                        finalization_kind=str(entry["kind"]),
                    ))
        records.sort(key=lambda record: (record.commit_time, record.replica_id))
        return records, errors

    def summaries(self) -> Dict[int, Dict[str, object]]:
        """Load every replica's end-of-run summary (missing files skipped)."""
        out: Dict[int, Dict[str, object]] = {}
        for rid, handle in sorted(self.replicas.items()):
            if handle.summary_path.exists():
                with open(handle.summary_path, "r", encoding="utf-8") as fh:
                    out[rid] = json.load(fh)
        return out


# ---------------------------------------------------------------------- #
# Workload clients
# ---------------------------------------------------------------------- #


@dataclass
class WorkloadResult:
    """What the open-loop clients did and what happened to it.

    Attributes:
        submitted: transactions sent (tx id → epoch-time of submission).
        committed: tx id → epoch-time of first commit (observer replica).
        latencies: submit→commit seconds for every committed transaction.
    """

    submitted: Dict[int, float] = field(default_factory=dict)
    committed: Dict[int, float] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)

    @property
    def commit_ratio(self) -> float:
        if not self.submitted:
            return 0.0
        return len(self.committed) / len(self.submitted)


async def _client_task(client_id: int, peers: Sequence[Tuple[str, int]],
                       rate: float, tx_size: float, start_at: float,
                       end_at: float, submitted: Dict[int, float],
                       seed: int) -> None:
    """One open-loop Poisson client: exponential gaps, round-robin targets.

    Open-loop means arrivals do not wait for commits — the schedule is
    fixed by the rate, so a slow cluster builds queueing delay instead of
    silently throttling the workload (the honest way to measure latency).
    """
    rng = random.Random((seed << 8) ^ client_id)
    writers: Dict[int, asyncio.StreamWriter] = {}
    tx_counter = 0
    target = 0
    delay = start_at - time.time()
    if delay > 0:
        await asyncio.sleep(delay)
    try:
        while time.time() < end_at:
            tx_id = client_id * 1_000_000 + tx_counter
            tx_counter += 1
            tx = encode_transaction(tx_id, client_id, int(tx_size))
            frame = encode_frame(-1 - client_id,
                                 ClientSubmit(transaction=tx,
                                              client_id=client_id))
            replica = target % len(peers)
            target += 1
            writer = writers.get(replica)
            try:
                if writer is None:
                    host, port = peers[replica]
                    _, writer = await asyncio.open_connection(host, port)
                    writer.write(encode_frame(-1 - client_id,
                                              Hello(sender=-1 - client_id,
                                                    role="client")))
                    writers[replica] = writer
                writer.write(frame)
                await writer.drain()
                submitted[tx_id] = time.time() - start_at
            except (ConnectionError, OSError):
                # Replica down (crash window / SIGKILL): drop the tx and
                # retry the connection on this client's next visit.
                stale = writers.pop(replica, None)
                if stale is not None:
                    try:
                        stale.close()
                    except Exception:
                        pass
            await asyncio.sleep(rng.expovariate(rate))
    finally:
        for writer in writers.values():
            try:
                writer.close()
            except Exception:
                pass


def run_workload(peers: Dict[int, Tuple[str, int]], *, rate: float,
                 tx_size: int, start_at: float, duration: float,
                 clients: int = 2, seed: int = 0) -> Dict[int, float]:
    """Run the open-loop clients until the horizon; returns submit times.

    ``rate`` is the aggregate transactions/second, split evenly over
    ``clients`` independent Poisson processes.
    """
    submitted: Dict[int, float] = {}
    ordered = [peers[rid] for rid in sorted(peers)]
    per_client = max(rate / max(1, clients), 1e-9)
    end_at = start_at + duration

    async def _main() -> None:
        await asyncio.gather(*(
            _client_task(cid, ordered, per_client, tx_size, start_at,
                         end_at, submitted, seed)
            for cid in range(clients)
        ))

    asyncio.run(_main())
    return submitted


# ---------------------------------------------------------------------- #
# Cross-validation and metrics
# ---------------------------------------------------------------------- #


def cross_validate(
    records: Iterable[CommitRecord],
    *,
    n: int,
    schedule: ChaosSchedule,
    duration: float,
    liveness_bound: float,
    errors: Iterable[Dict[str, object]] = (),
    exclude: Iterable[int] = (),
) -> List[Violation]:
    """Judge a real cluster's commit logs with the simulator's invariants.

    The online checks (agreement, round-agreement, certified ancestry,
    fast-path soundness) replay the merged commit stream through
    :class:`InvariantChecker` exactly as the chaos engine wires it into a
    simulation.  The liveness rule mirrors the engine: once every timed
    fault healed, each eligible replica — honest, never crash-faulted, not
    ``exclude``-d (e.g. a SIGKILLed-and-restarted process, whose fresh
    chain legitimately restarts from genesis) — must commit within the
    bound.  Loss-burst schedules are safety-only, as in the simulator.
    """
    records = list(records)
    byzantine = set(schedule.byzantine()) | set(exclude)
    checker = InvariantChecker(range(n), byzantine=byzantine)
    for record in records:
        checker.on_commit(record)
    violations = list(checker.violations)
    for entry in errors:
        violations.append(Violation(
            invariant="execution-error",
            time=float(entry.get("t", duration)),
            replica=int(entry.get("replica", -1)),
            detail=str(entry.get("detail", "protocol raised")),
        ))

    heal_time = schedule.heal_time()
    crashed = set(schedule.crashed_replicas())
    lossy = any(fault.kind == "loss" for fault in schedule.faults)
    liveness_checkable = not lossy and heal_time + liveness_bound <= duration
    if liveness_checkable:
        last_commit: Dict[int, float] = {}
        for record in records:
            last_commit[record.replica_id] = max(
                last_commit.get(record.replica_id, 0.0), record.commit_time)
        for replica in checker.honest:
            if replica in crashed:
                continue
            last = last_commit.get(replica)
            if last is None or last <= heal_time:
                violations.append(Violation(
                    invariant="liveness",
                    time=duration,
                    replica=replica,
                    detail=(f"no commit after faults healed at {heal_time:g}s "
                            f"(bound {liveness_bound:g}s)"),
                ))
    return violations


def harvest_metrics(protocol: str, records: Iterable[CommitRecord],
                    summaries: Dict[int, Dict[str, object]], *,
                    duration: float, observer: int = 0) -> RunMetrics:
    """Feed real commit logs through the simulator's metrics pipeline."""
    collector = MetricsCollector(protocol, observer=observer)
    for record in records:
        collector.on_commit(record)
    proposal_times = {
        rid: {block_id: float(t)
              for block_id, t in summary.get("proposal_times", {}).items()}
        for rid, summary in summaries.items()
    }
    return collector.finalize(duration, proposal_times)


def workload_outcome(submitted: Dict[int, float],
                     records: Iterable[CommitRecord],
                     observer: int = 0) -> WorkloadResult:
    """Match submitted transactions against one replica's committed blocks."""
    result = WorkloadResult(submitted=dict(submitted))
    for record in records:
        if record.replica_id != observer:
            continue
        for tx_id, _client in split_transactions(record.block.payload):
            if tx_id in result.committed or tx_id not in result.submitted:
                continue
            result.committed[tx_id] = record.commit_time
            result.latencies.append(record.commit_time
                                    - result.submitted[tx_id])
    return result


# ---------------------------------------------------------------------- #
# One-call orchestration
# ---------------------------------------------------------------------- #


@dataclass
class ClusterResult:
    """Everything one real-cluster run produced."""

    protocol: str
    exit_codes: Dict[int, int]
    records: List[CommitRecord]
    violations: List[Violation]
    metrics: RunMetrics
    workload: WorkloadResult
    summaries: Dict[int, Dict[str, object]]
    log_dir: Path

    @property
    def committed_blocks(self) -> int:
        return self.metrics.committed_blocks

    @property
    def ok(self) -> bool:
        """Healthy run: at least one commit and no invariant violations."""
        return self.committed_blocks > 0 and not self.violations


def run_local_cluster(
    protocol: str,
    n: int = 4,
    *,
    duration: float = 10.0,
    f: Optional[int] = None,
    p: Optional[int] = None,
    rank_delay: float = 0.05,
    round_timeout: float = 1.0,
    payload_size: int = 0,
    seed: int = 0,
    rate: float = 0.0,
    tx_size: int = 128,
    clients: int = 2,
    schedule: Optional[ChaosSchedule] = None,
    liveness_bound: Optional[float] = None,
    check_invariants: bool = True,
    log_dir: Optional[Path] = None,
    base_port: Optional[int] = None,
    exclude: Iterable[int] = (),
) -> ClusterResult:
    """Run one full real-cluster experiment and judge it.

    Spawns the cluster, optionally drives an open-loop workload, waits for
    the horizon, then harvests commit logs into metrics, matches workload
    latencies, and (when ``check_invariants``) cross-validates the real
    committed sequences against the simulator's invariant checker.
    """
    schedule = schedule or ChaosSchedule()
    if log_dir is None:
        log_dir = Path(tempfile.mkdtemp(prefix=f"banyan-cluster-{protocol}-"))
    if liveness_bound is None:
        liveness_bound = round_timeout + 2 * n * rank_delay + 2.0
    cluster = LocalCluster(
        protocol, n, duration=duration, log_dir=log_dir, f=f, p=p,
        rank_delay=rank_delay, round_timeout=round_timeout,
        payload_size=payload_size, seed=seed, schedule=schedule,
        base_port=base_port,
    )
    cluster.start()
    submitted: Dict[int, float] = {}
    try:
        if rate > 0:
            submitted = run_workload(
                cluster.peers, rate=rate, tx_size=tx_size,
                start_at=cluster.start_at, duration=duration,
                clients=clients, seed=seed,
            )
        exit_codes = cluster.wait()
    finally:
        cluster.stop()
    records, errors = cluster.commit_records()
    summaries = cluster.summaries()
    violations: List[Violation] = []
    if check_invariants:
        violations = cross_validate(
            records, n=n, schedule=schedule, duration=duration,
            liveness_bound=liveness_bound, errors=errors, exclude=exclude,
        )
    metrics = harvest_metrics(protocol, records, summaries,
                              duration=duration)
    workload = workload_outcome(submitted, records)
    return ClusterResult(
        protocol=protocol, exit_codes=exit_codes, records=records,
        violations=violations, metrics=metrics, workload=workload,
        summaries=summaries, log_dir=log_dir,
    )
