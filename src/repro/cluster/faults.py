"""Socket-level fault injection: chaos schedules against live processes.

The chaos engine (:mod:`repro.chaos`) expresses faults as data — crash
windows, partitions, loss bursts, stragglers — and the simulator interprets
them inside its event loop.  :class:`SocketFaultInjector` interprets the
*same* :class:`repro.chaos.schedule.ChaosSchedule` inside the TCP
transport, so a shrunk chaos repro JSON replays against real processes:

* **crashes** mute the replica in both directions during the crash window
  (the process stays alive — a socket-level crash is a replica that neither
  sends nor receives, which is exactly the simulator's model);
* **partitions** drop traffic between the two groups during the window
  (TCP retransmission is below our frame layer, so a dropped frame is a
  lost message, matching the sim's partition-as-asynchrony only in effect:
  the protocols re-announce state on every round, which is how they
  recover in both backends);
* **loss bursts** drop each frame with the burst's probability;
* **stragglers** add the configured extra outbound delay to every frame
  the replica sends during the window.

Time is the cluster's shared epoch clock (seconds since the coordinated
start instant), so windows line up across processes to within OS clock
skew — milliseconds on one host, where local clusters run.

Drop decisions draw from a per-process seeded RNG; real-network execution
is not bit-for-bit deterministic anyway (socket scheduling is not), so the
seed only makes the *marginal* loss rate reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.chaos.schedule import ChaosSchedule
from repro.net.faults import FaultPlan


class SocketFaultInjector:
    """Per-node interpreter of a chaos schedule at the socket layer.

    Args:
        schedule: the fault schedule to replay.
        replica_id: the replica this injector's node runs.
        seed: RNG seed for probabilistic drops (mixed with the replica id
            so nodes draw independent streams).
    """

    def __init__(self, schedule: ChaosSchedule, replica_id: int,
                 seed: int = 0) -> None:
        self.schedule = schedule
        self.replica_id = replica_id
        self._plan: FaultPlan = schedule.to_fault_plan()
        self._stragglers = [fault for fault in schedule.stragglers()
                            if fault.replica == replica_id]
        self._rng = random.Random((seed << 16) ^ (replica_id * 0x9E3779B1))

    @classmethod
    def none(cls, replica_id: int) -> "SocketFaultInjector":
        """An injector with no faults (every frame passes untouched)."""
        return cls(ChaosSchedule(), replica_id)

    def outbound(self, receiver: int, now: float) -> Optional[float]:
        """Judge one outbound frame at epoch time ``now``.

        Returns ``None`` when the frame must be dropped, otherwise the
        extra delay in seconds (0.0 for an untouched frame).
        """
        if self._plan.should_drop(self.replica_id, receiver, now, self._rng):
            return None
        if self._plan.partitions.blocks(self.replica_id, receiver, now):
            return None
        delay = 0.0
        for fault in self._stragglers:
            if fault.start <= now < (fault.end if fault.end is not None
                                     else float("inf")):
                delay += fault.delay
        return delay

    def inbound(self, sender: int, now: float) -> bool:
        """Whether an arriving frame may be delivered to the protocol.

        Mirrors the simulator's delivery-time check: a frame arriving while
        the receiver is inside a crash window is dropped even if it was
        sent before the window opened.
        """
        return not self._plan.is_crashed(self.replica_id, now)

    def self_crashed(self, now: float) -> bool:
        """Whether this node's replica is inside a crash window."""
        return self._plan.is_crashed(self.replica_id, now)
