"""One protocol replica as a real process over TCP.

``python -m repro.cluster.node --config node.json`` runs a single replica:
the same sans-io protocol object the simulator drives, served by a
:class:`ClusterContext` whose sends go through
:class:`repro.cluster.tcp_transport.TcpTransport`, whose timers are
monotonic-clock ``call_later`` callbacks, and whose commits append to a
JSONL commit log the harness harvests after the run.

**Clocks.**  All replicas share a *cluster epoch*: the coordinated start
instant (``start_at``, unix time) the harness writes into every node
config.  ``ReplicaContext.now()`` returns monotonic seconds since that
epoch — wall-clock adjustments cannot move protocol time backwards, and
fault-schedule windows line up across processes.

**Fault replay.**  A chaos schedule in the config is interpreted at the
socket layer (:class:`repro.cluster.faults.SocketFaultInjector`) and at
the dispatch layer: while this replica is inside one of its own crash
windows, inbound messages and timers are discarded — matching the
simulator's semantics, where a crashed replica executes nothing and loses
the timers that came due while it was down.  A replica crashed at time 0
with a recovery boots late, exactly like the simulator.  Byzantine plants
in the schedule swap in the same misbehaving replica factories the chaos
engine uses.

**Workload.**  Clients submit transactions as
:class:`repro.cluster.wire.ClientSubmit` frames; they land in a local
mempool drained into proposals by :class:`MempoolSource`, so committed
payloads carry real client bytes end-to-end.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.beacon import RoundRobinBeacon
from repro.chaos.schedule import ChaosSchedule
from repro.cluster.faults import SocketFaultInjector
from repro.cluster.tcp_transport import TcpTransport
from repro.cluster.wire import ClientSubmit
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.context import ReplicaContext, Timer
from repro.smr.mempool import Mempool
from repro.types.blocks import Block

#: Exit code when the protocol object raised during execution.
EXIT_PROTOCOL_ERROR = 3


@dataclass
class NodeConfig:
    """Everything one replica process needs, JSON-serialisable.

    Attributes:
        replica_id: this node's replica id.
        protocol: registered protocol name.
        n / f / p: replica count, fault bound, fast-path parameter.
        rank_delay / round_timeout / payload_size: protocol parameters.
        peers: replica id → ``(host, port)`` for every replica (self
            included; the node binds its own entry).
        seed: base seed (fault-injection RNG, synthetic payload tags).
        duration: seconds of protocol time to run after the epoch.
        start_at: unix time of the coordinated cluster start; every node
            begins its protocol at this instant.
        commit_log: path of the JSONL commit log to append to.
        summary_path: path of the end-of-run summary JSON.
        schedule: optional chaos schedule to replay at the socket layer
            (:meth:`repro.chaos.schedule.ChaosSchedule.to_dict` form).
        max_block_bytes: per-proposal byte budget drained from the mempool.
        sign_messages: attach and verify (simulated) signatures.
    """

    replica_id: int
    protocol: str
    n: int
    f: int
    p: int
    peers: Dict[int, Tuple[str, int]]
    seed: int = 0
    rank_delay: float = 0.1
    round_timeout: float = 1.5
    payload_size: int = 0
    duration: float = 10.0
    start_at: float = 0.0
    commit_log: str = "commit.log"
    summary_path: str = ""
    schedule: Optional[Dict[str, object]] = None
    max_block_bytes: int = 65_536
    sign_messages: bool = False

    def params(self) -> ProtocolParams:
        """The protocol parameters of this node."""
        return ProtocolParams(
            n=self.n, f=self.f, p=self.p, rank_delay=self.rank_delay,
            round_timeout=self.round_timeout, payload_size=self.payload_size,
            sign_messages=self.sign_messages, seed=self.seed,
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "replica_id": self.replica_id,
            "protocol": self.protocol,
            "n": self.n, "f": self.f, "p": self.p,
            "peers": {str(rid): list(addr) for rid, addr in self.peers.items()},
            "seed": self.seed,
            "rank_delay": self.rank_delay,
            "round_timeout": self.round_timeout,
            "payload_size": self.payload_size,
            "duration": self.duration,
            "start_at": self.start_at,
            "commit_log": self.commit_log,
            "summary_path": self.summary_path,
            "schedule": self.schedule,
            "max_block_bytes": self.max_block_bytes,
            "sign_messages": self.sign_messages,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            replica_id=int(data["replica_id"]),
            protocol=str(data["protocol"]),
            n=int(data["n"]), f=int(data["f"]), p=int(data["p"]),
            peers={int(rid): (str(addr[0]), int(addr[1]))
                   for rid, addr in data["peers"].items()},
            seed=int(data.get("seed", 0)),
            rank_delay=float(data.get("rank_delay", 0.1)),
            round_timeout=float(data.get("round_timeout", 1.5)),
            payload_size=int(data.get("payload_size", 0)),
            duration=float(data.get("duration", 10.0)),
            start_at=float(data.get("start_at", 0.0)),
            commit_log=str(data.get("commit_log", "commit.log")),
            summary_path=str(data.get("summary_path", "")),
            schedule=data.get("schedule"),
            max_block_bytes=int(data.get("max_block_bytes", 65_536)),
            sign_messages=bool(data.get("sign_messages", False)),
        )


class MempoolSource:
    """Payload source draining this node's client mempool into proposals.

    With no pending client transactions the node proposes a synthetic
    payload of the configured logical size (the paper's bit-vector
    workload), or an empty uniquely-tagged block when ``payload_size`` is
    0 — an idle SMR system ships cheap empty blocks.
    """

    def __init__(self, mempool: Mempool, max_block_bytes: int,
                 payload_size: int = 0) -> None:
        self.mempool = mempool
        self.max_block_bytes = max_block_bytes
        self.payload_size = payload_size

    def payload_for(self, round: int, proposer: int) -> Tuple[bytes, int]:
        """Return ``(payload_bytes, logical_size)`` for a proposal."""
        transactions = self.mempool.take(self.max_block_bytes)
        if transactions:
            payload = b"".join(transactions)
            return payload, len(payload)
        tag = f"cluster:r{round}:p{proposer}".encode("utf-8")
        return tag, self.payload_size


class ClusterContext(ReplicaContext):
    """The :class:`ReplicaContext` seam served by a live TCP node."""

    def __init__(self, node: "ClusterNode") -> None:
        self._node = node
        self._replica_ids = tuple(range(node.config.n))

    @property
    def replica_id(self) -> int:
        return self._node.config.replica_id

    @property
    def replica_ids(self) -> Tuple[int, ...]:
        return self._replica_ids

    def now(self) -> float:
        return self._node.now()

    def send(self, receiver: int, message: Any) -> None:
        self._node.transport.send(receiver, message)

    def broadcast(self, message: Any) -> None:
        self._node.transport.broadcast(message, self._replica_ids)

    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        return self._node.arm_timer(delay, name, data)

    def cancel_timer(self, timer_id: int) -> None:
        self._node.cancel_timer(timer_id)

    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        self._node.record_commit(blocks, finalization_kind)


class ClusterNode:
    """One replica process: protocol + transport + timers + commit log."""

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.schedule = (ChaosSchedule.from_dict(config.schedule)
                         if config.schedule else ChaosSchedule())
        self.injector = SocketFaultInjector(self.schedule, config.replica_id,
                                            seed=config.seed)
        self.mempool = Mempool(max_size=100_000)
        self._source = MempoolSource(self.mempool, config.max_block_bytes,
                                     config.payload_size)
        self.protocol = self._build_protocol()
        self.transport = TcpTransport(
            replica_id=config.replica_id,
            peers=config.peers,
            on_message=self._on_message,
            clock=self.now,
            injector=self.injector,
            on_client_submit=self._on_client_submit,
        )
        self._context = ClusterContext(self)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epoch_monotonic: float = 0.0
        self._timer_handles: Dict[int, asyncio.TimerHandle] = {}
        self._next_timer_id = 1
        self._log_handle = None
        self._commits = 0
        self._client_submissions = 0
        self._client_rejections = 0
        self._error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build_protocol(self):
        """Build this node's replica (honest, or a planted byzantine one)."""
        from repro.chaos.engine import _byzantine_factory, _ensure_protocol_registered

        _ensure_protocol_registered(self.config.protocol)
        overrides = {}
        behavior = self.schedule.byzantine().get(self.config.replica_id)
        if behavior:
            overrides[self.config.replica_id] = _byzantine_factory(
                self.config.protocol, behavior)
        replicas = create_replicas(
            self.config.protocol,
            self.config.params(),
            beacon=RoundRobinBeacon(list(range(self.config.n))),
            payload_source=self._source,
            replica_ids=[self.config.replica_id],
            overrides=overrides,
        )
        return replicas[self.config.replica_id]

    # ------------------------------------------------------------------ #
    # Clock and timers
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """Monotonic seconds since the cluster epoch (may be negative
        before the coordinated start)."""
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._epoch_monotonic

    def arm_timer(self, delay: float, name: str, data: Any) -> int:
        if self._loop is None:
            raise RuntimeError("node not started")
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        timer = Timer(name=name, fire_time=self.now() + delay, data=data,
                      timer_id=timer_id)
        handle = self._loop.call_later(max(0.0, delay), self._fire_timer, timer)
        self._timer_handles[timer_id] = handle
        return timer_id

    def cancel_timer(self, timer_id: int) -> None:
        handle = self._timer_handles.pop(timer_id, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, timer: Timer) -> None:
        self._timer_handles.pop(timer.timer_id, None)
        # Timers that come due inside a crash window are lost, like the
        # simulator's.
        if self.injector.self_crashed(self.now()):
            return
        self._guarded(self.protocol.on_timer, self._context, timer)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _on_message(self, sender: int, message: Any) -> None:
        if self.injector.self_crashed(self.now()):
            return
        self._guarded(self.protocol.on_message, self._context, sender, message)

    def _on_client_submit(self, submit: ClientSubmit) -> None:
        self._client_submissions += 1
        if not self.mempool.add(submit.transaction):
            self._client_rejections += 1

    def _guarded(self, callback, *args) -> None:
        """Run a protocol callback; a raise is a finding, not a crash loop."""
        if self._error is not None:
            return
        try:
            callback(*args)
        except Exception as exc:
            self._error = f"{type(exc).__name__}: {exc}"
            self._log_line({"type": "error", "t": round(self.now(), 6),
                            "replica": self.config.replica_id,
                            "detail": self._error})

    # ------------------------------------------------------------------ #
    # Commit log
    # ------------------------------------------------------------------ #

    def record_commit(self, blocks, finalization_kind: str) -> None:
        now = round(self.now(), 6)
        for block in blocks:
            self._commits += 1
            self._log_line({
                "type": "commit",
                "t": now,
                "replica": self.config.replica_id,
                "kind": finalization_kind,
                "round": block.round,
                "proposer": block.proposer,
                "rank": block.rank,
                "parent_id": block.parent_id,
                "payload": block.payload.hex(),
                "payload_size": block.payload_size,
            })

    def _log_line(self, record: Dict[str, object]) -> None:
        if self._log_handle is None:
            return
        self._log_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._log_handle.flush()

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    async def run(self) -> int:
        """Serve the replica until the configured duration; returns the
        process exit code."""
        self._loop = asyncio.get_running_loop()
        config = self.config
        start_at = config.start_at or (time.time() + 0.2)
        # Translate the shared unix start instant onto the monotonic clock
        # once; now() never consults the (steppable) wall clock again.
        self._epoch_monotonic = self._loop.time() + (start_at - time.time())
        self._log_handle = open(config.commit_log, "a", encoding="utf-8")
        host, port = config.peers[config.replica_id]
        await self.transport.start(host, port)

        delay_to_start = start_at - time.time()
        if delay_to_start > 0:
            await asyncio.sleep(delay_to_start)

        plan = self.injector.schedule.to_fault_plan()
        if plan.is_crashed(config.replica_id, 0.0):
            # Crashed from the very start: boot at the recovery instant, or
            # never (the process idles so peers see a live-but-mute socket).
            recover = plan.crash_schedule.recover_time(config.replica_id)
            if recover is not None:
                self._loop.call_later(recover, self._boot)
        else:
            self._boot()

        remaining = config.duration - self.now()
        if remaining > 0:
            await asyncio.sleep(remaining)
        await self.transport.stop()
        for handle in self._timer_handles.values():
            handle.cancel()
        self._timer_handles.clear()
        self._write_summary()
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
        return EXIT_PROTOCOL_ERROR if self._error is not None else 0

    def _boot(self) -> None:
        self._guarded(self.protocol.on_start, self._context)

    def _write_summary(self) -> None:
        if not self.config.summary_path:
            return
        protocol = self.protocol
        while hasattr(protocol, "inner"):
            protocol = protocol.inner
        summary = {
            "replica_id": self.config.replica_id,
            "protocol": self.config.protocol,
            "commits": self._commits,
            "client_submissions": self._client_submissions,
            "client_rejections": self._client_rejections,
            "proposal_times": {
                str(block_id): t
                for block_id, t in getattr(protocol, "proposal_times", {}).items()
            },
            "transport": dict(self.transport.stats),
            "error": self._error,
        }
        with open(self.config.summary_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")


def main(argv=None) -> int:
    """Entry point of ``python -m repro.cluster.node``."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.node",
        description="Run one protocol replica over real TCP sockets.",
    )
    parser.add_argument("--config", required=True,
                        help="path of the node's JSON configuration")
    args = parser.parse_args(argv)
    with open(args.config, "r", encoding="utf-8") as handle:
        config = NodeConfig.from_dict(json.load(handle))
    node = ClusterNode(config)
    return asyncio.run(node.run())


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
