"""Real-network execution: wire format, TCP runtime, and local clusters.

The simulator (:mod:`repro.runtime.simulator`) and the asyncio stub
(:mod:`repro.runtime.asyncio_runtime`) both run in one process.  This
package promotes the same sans-io protocol objects to *real processes over
real TCP sockets*:

* :mod:`repro.cluster.wire` — a versioned, length-prefixed binary wire
  format with lossless encode/decode for every protocol message, block,
  vote, and certificate type;
* :mod:`repro.cluster.tcp_transport` — an asyncio TCP transport with
  connection management (reconnect with exponential backoff), per-peer
  outbound queues with backpressure, and a socket-level fault-injection
  seam;
* :mod:`repro.cluster.faults` — replays :mod:`repro.chaos` fault schedules
  as real drops/delays/partitions inside the transport;
* :mod:`repro.cluster.node` — one replica process serving the standard
  :class:`repro.runtime.context.ReplicaContext` seam over the transport,
  with monotonic-clock timers and a JSONL commit log;
* :mod:`repro.cluster.harness` — spawns an n-replica local cluster plus
  open-loop workload clients, harvests the commit logs into
  :class:`repro.smr.metrics.RunMetrics`, and cross-validates the committed
  sequences against the chaos :class:`repro.chaos.invariants.InvariantChecker`.
"""

from repro.cluster.wire import (
    FrameDecoder,
    WireError,
    decode_envelope,
    decode_payload,
    encode_envelope,
    encode_frame,
    encode_payload,
)

__all__ = [
    "FrameDecoder",
    "WireError",
    "decode_envelope",
    "decode_payload",
    "encode_envelope",
    "encode_frame",
    "encode_payload",
]
