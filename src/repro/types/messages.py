"""Wire messages exchanged between replicas.

Protocol replicas communicate by broadcasting three message shapes:

* :class:`BlockProposal` — a block together with the parent's notarization
  and unlock proof (Algorithm 1, lines 28/31/35), and optionally the
  proposer's own fast vote (rank-0 proposals, Addition 2).
* :class:`VoteMessage` — one or more votes (a notarization vote possibly
  accompanied by a fast vote, Addition 3; or a finalization vote).
* :class:`CertificateMessage` — a notarization, finalization, fast
  finalization, or unlock proof being relayed (Additions 1 and 4).

Every message carries its logical ``wire_size`` so the network substrate can
charge bandwidth-dependent transfer time: block proposals dominate because
they carry the payload, while votes and certificates are small and constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.types.blocks import Block
from repro.types.certificates import (
    FastFinalization,
    Finalization,
    Notarization,
    UnlockProof,
)
from repro.types.votes import Vote

#: Approximate serialized size of a vote/signature share, in bytes.
VOTE_WIRE_SIZE = 96

#: Approximate fixed overhead of a block header, in bytes.
BLOCK_HEADER_SIZE = 256


@dataclass(frozen=True)
class BlockProposal:
    """A block proposal (or relay of a proposal).

    Attributes:
        block: the proposed block.
        parent_notarization: notarization of the parent block, proving it may
            be extended (omitted only when the parent is genesis).
        parent_unlock_proof: unlock proof for the parent block (Banyan only).
        fast_vote: the proposer's fast vote for its own block (rank-0 blocks
            must carry one, Algorithm 2 line 63).
        relayed_by: replica relaying someone else's proposal, if any.
    """

    block: Block
    parent_notarization: Optional[Notarization] = None
    parent_unlock_proof: Optional[UnlockProof] = None
    fast_vote: Optional[Vote] = None
    relayed_by: Optional[int] = None

    @property
    def wire_size(self) -> int:
        """Logical serialized size in bytes."""
        size = BLOCK_HEADER_SIZE + self.block.size
        if self.parent_notarization is not None:
            size += VOTE_WIRE_SIZE * max(1, len(self.parent_notarization))
        if self.parent_unlock_proof is not None:
            size += VOTE_WIRE_SIZE * max(1, len(self.parent_unlock_proof))
        if self.fast_vote is not None:
            size += VOTE_WIRE_SIZE
        return size


@dataclass(frozen=True)
class VoteMessage:
    """One or more votes from a single replica, broadcast together."""

    votes: Tuple[Vote, ...]
    sender: int

    @property
    def wire_size(self) -> int:
        """Logical serialized size in bytes."""
        return VOTE_WIRE_SIZE * len(self.votes)


@dataclass(frozen=True)
class CertificateMessage:
    """A certificate being relayed between replicas.

    Attributes:
        certificate: the notarization / finalization / fast finalization.
        unlock_proof: unlock proof forwarded alongside (Addition 1).
        sender: the relaying replica.
    """

    certificate: Union[Notarization, Finalization, FastFinalization, None]
    unlock_proof: Optional[UnlockProof] = None
    sender: int = -1

    @property
    def wire_size(self) -> int:
        """Logical serialized size in bytes."""
        size = 0
        if self.certificate is not None:
            size += VOTE_WIRE_SIZE * max(1, len(self.certificate))
        if self.unlock_proof is not None:
            size += VOTE_WIRE_SIZE * max(1, len(self.unlock_proof))
        return max(size, VOTE_WIRE_SIZE)


#: Union of all message shapes a protocol may receive.
Message = Union[BlockProposal, VoteMessage, CertificateMessage]
