"""Certificates: aggregated votes proving protocol facts.

The paper aggregates vote multisets into four kinds of certificates:

* **Notarization** (Section 4) — proof that a quorum notarization-voted for a
  block; required before a block may be extended and gates round advancement.
* **Finalization** (Section 4) — proof that a quorum finalization-voted for a
  block; the block is *SP-finalized* (explicitly finalized via the slow path).
* **Fast finalization** (Definition 6.2 / Addition 4) — proof that ``n - p``
  replicas fast-voted for a rank-0 block; the block is *FP-finalized*.
* **Unlock proof** (Definition 7.7) — a collection of fast votes proving a
  block is *unlocked* according to Definition 7.6, i.e. safe to extend.

Certificates are value objects: the voter set is explicit so quorum sizes are
checked by the recipient (``verify``), and the optional aggregate signature
carries the simulated BLS multi-signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.crypto.aggregate import AggregateSignature
from repro.crypto.keys import KeyRegistry
from repro.types.blocks import BlockId
from repro.types.votes import Vote, VoteKind


class CertificateError(Exception):
    """Raised when a certificate is constructed from inconsistent votes."""


@dataclass(frozen=True)
class Certificate:
    """Base certificate: a set of voters attesting something about a block.

    Attributes:
        round: round of the certified block.
        block_id: identifier of the certified block.
        voters: the replicas whose votes are aggregated.
        aggregate: the aggregated signature shares (may be ``None`` when the
            experiment runs with signatures disabled for speed).
    """

    round: int
    block_id: BlockId
    voters: FrozenSet[int]
    aggregate: Optional[AggregateSignature] = None

    #: Vote kind this certificate aggregates; overridden by subclasses.
    VOTE_KIND = VoteKind.NOTARIZATION

    @classmethod
    def from_votes(cls, votes: Iterable[Vote]) -> "Certificate":
        """Aggregate ``votes`` (all of this certificate's kind, same block).

        Raises:
            CertificateError: if the votes are empty, of mixed kind, or refer
                to different blocks/rounds.
        """
        votes = list(votes)
        if not votes:
            raise CertificateError("cannot build a certificate from zero votes")
        rounds = {vote.round for vote in votes}
        blocks = {vote.block_id for vote in votes}
        kinds = {vote.kind for vote in votes}
        if kinds != {cls.VOTE_KIND}:
            raise CertificateError(
                f"{cls.__name__} expects {cls.VOTE_KIND.value} votes, got {sorted(k.value for k in kinds)}"
            )
        if len(rounds) != 1 or len(blocks) != 1:
            raise CertificateError("votes refer to different blocks or rounds")
        signatures = [vote.signature for vote in votes if vote.signature is not None]
        aggregate = AggregateSignature.from_shares(signatures) if signatures else None
        return cls(
            round=rounds.pop(),
            block_id=blocks.pop(),
            voters=frozenset(vote.voter for vote in votes),
            aggregate=aggregate,
        )

    def __len__(self) -> int:
        return len(self.voters)

    def verify(self, registry: Optional[KeyRegistry], threshold: int) -> bool:
        """Check the certificate carries at least ``threshold`` distinct voters.

        When a PKI ``registry`` is supplied and the certificate carries an
        aggregate signature, the signature shares are verified as well.
        """
        if len(self.voters) < threshold:
            return False
        if registry is not None and self.aggregate is not None:
            payload = (self.VOTE_KIND.value, self.round, self.block_id)
            if not self.aggregate.verify(payload, registry):
                return False
            if not self.aggregate.signers() >= self.voters:
                return False
        return True


@dataclass(frozen=True)
class Notarization(Certificate):
    """Proof that a quorum notarization-voted for the block."""

    VOTE_KIND = VoteKind.NOTARIZATION


@dataclass(frozen=True)
class Finalization(Certificate):
    """Proof of SP-finalization: a quorum of finalization votes."""

    VOTE_KIND = VoteKind.FINALIZATION


@dataclass(frozen=True)
class FastFinalization(Certificate):
    """Proof of FP-finalization: ``n - p`` fast votes for a rank-0 block."""

    VOTE_KIND = VoteKind.FAST


@dataclass(frozen=True)
class UnlockProof:
    """Proof that a block is unlocked (Definition 7.7).

    Unlike the other certificates, an unlock proof may aggregate fast votes
    for *several different* blocks of the same round: Condition 2 of
    Definition 7.6 unlocks every block of the round once more than ``f + p``
    fast-vote support exists outside the best rank-0 block.

    Attributes:
        round: the round whose block(s) are unlocked.
        block_id: the block the proof is attached to (the notarized block the
            sender extends / forwards).
        votes_by_block: fast-vote voter sets keyed by the block they support.
    """

    round: int
    block_id: BlockId
    votes_by_block: Tuple[Tuple[BlockId, FrozenSet[int]], ...] = field(default_factory=tuple)

    @classmethod
    def from_fast_votes(cls, round: int, block_id: BlockId,
                        votes: Iterable[Vote]) -> "UnlockProof":
        """Build an unlock proof from a collection of fast votes of ``round``."""
        by_block: dict = {}
        for vote in votes:
            if vote.kind is not VoteKind.FAST:
                raise CertificateError("unlock proofs aggregate fast votes only")
            if vote.round != round:
                raise CertificateError("unlock proof votes must belong to one round")
            by_block.setdefault(vote.block_id, set()).add(vote.voter)
        ordered = tuple(sorted((bid, frozenset(voters)) for bid, voters in by_block.items()))
        return cls(round=round, block_id=block_id, votes_by_block=ordered)

    def support(self, block_id: BlockId) -> FrozenSet[int]:
        """Return the fast-vote support recorded for ``block_id``."""
        for bid, voters in self.votes_by_block:
            if bid == block_id:
                return voters
        return frozenset()

    def total_voters(self) -> FrozenSet[int]:
        """Return all distinct voters across every block in the proof."""
        voters: set = set()
        for _, block_voters in self.votes_by_block:
            voters |= block_voters
        return frozenset(voters)

    def __len__(self) -> int:
        return len(self.total_voters())
