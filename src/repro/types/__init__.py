"""Common protocol data types shared by Banyan and the baseline protocols.

* :mod:`repro.types.blocks` — blocks, block identifiers, the genesis block.
* :mod:`repro.types.votes` — notarization, fast, and finalization votes.
* :mod:`repro.types.certificates` — notarizations, finalizations, fast
  finalizations, and unlock proofs built by aggregating votes.
* :mod:`repro.types.messages` — wire messages exchanged between replicas.
"""

from repro.types.blocks import Block, BlockId, genesis_block
from repro.types.certificates import (
    Certificate,
    FastFinalization,
    Finalization,
    Notarization,
    UnlockProof,
)
from repro.types.messages import (
    BlockProposal,
    CertificateMessage,
    Message,
    VoteMessage,
)
from repro.types.votes import (
    FastVote,
    FinalizationVote,
    NotarizationVote,
    Vote,
    VoteKind,
)

__all__ = [
    "Block",
    "BlockId",
    "BlockProposal",
    "Certificate",
    "CertificateMessage",
    "FastFinalization",
    "FastVote",
    "Finalization",
    "FinalizationVote",
    "Message",
    "Notarization",
    "NotarizationVote",
    "UnlockProof",
    "Vote",
    "VoteKind",
    "VoteMessage",
    "genesis_block",
]
