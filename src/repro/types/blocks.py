"""Blocks and block identifiers.

A block (Algorithm 1, line 25) is ``(k, u, hash(b_p), payload, signature_u)``:
the round number, the proposer, the hash of the extended parent block, the
payload, and the proposer's signature.  We additionally carry the proposer's
rank in the round (derived from the beacon permutation) because several
protocol rules — the fast path in particular — treat rank-0 blocks specially.

Payloads are opaque byte strings; their size drives the bandwidth component
of the network model used in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.hashing import hash_hex

#: Hex digest string uniquely identifying a block.
BlockId = str

#: Conventional identifier used as the genesis block's proposer.
GENESIS_PROPOSER = -1

#: Round number of the genesis block.
GENESIS_ROUND = 0


@dataclass(frozen=True)
class Block:
    """A proposed block in the block-tree.

    Attributes:
        round: the round (block-tree height) the block belongs to.
        proposer: replica id of the proposer.
        rank: the proposer's rank in this round's leader permutation
            (0 = leader).  The genesis block has rank 0 by convention.
        parent_id: block id of the parent this block extends (``None`` only
            for genesis).
        payload: opaque transaction payload bytes.
        payload_size: logical payload size in bytes used by the bandwidth
            model.  For synthetic workloads the actual ``payload`` bytes may
            be a short placeholder while ``payload_size`` carries the size the
            experiment sweeps over; when left at ``None`` it defaults to
            ``len(payload)``.
    """

    round: int
    proposer: int
    rank: int
    parent_id: Optional[BlockId]
    payload: bytes = b""
    payload_size: Optional[int] = None

    @property
    def size(self) -> int:
        """Logical size of the block payload in bytes."""
        return self.payload_size if self.payload_size is not None else len(self.payload)

    @property
    def id(self) -> BlockId:
        """The block identifier (hash of the block contents)."""
        return _block_id(self)

    def is_genesis(self) -> bool:
        """Return whether this is the genesis block."""
        return self.parent_id is None and self.round == GENESIS_ROUND

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(round={self.round}, proposer={self.proposer}, rank={self.rank}, "
            f"id={self.id[:8]}, parent={(self.parent_id or 'None')[:8]}, size={self.size})"
        )


# Block ids are pure functions of the (immutable) block contents, so they can
# be memoised.  The cache lives outside the dataclass to keep Block frozen and
# hashable by value.
_BLOCK_ID_CACHE: dict = {}


def _block_id(block: Block) -> BlockId:
    key = (
        block.round,
        block.proposer,
        block.rank,
        block.parent_id,
        block.payload,
        block.payload_size,
    )
    cached = _BLOCK_ID_CACHE.get(key)
    if cached is None:
        cached = hash_hex(key)
        _BLOCK_ID_CACHE[key] = cached
    return cached


_GENESIS = Block(
    round=GENESIS_ROUND,
    proposer=GENESIS_PROPOSER,
    rank=0,
    parent_id=None,
    payload=b"genesis",
)


def genesis_block() -> Block:
    """Return the canonical genesis block shared by all replicas."""
    return _GENESIS
