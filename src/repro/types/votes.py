"""Votes cast by replicas over blocks.

Banyan uses three vote kinds (Sections 4, 6, 7 of the paper):

* **Notarization vote** — "I validated block *b* in round *k*"; ``n - f`` of
  them (ICC) or ``ceil((n+f+1)/2)`` (Banyan, Algorithm 2 line 45) make the
  block *notarized*.
* **Fast vote** — broadcast for the *first* block a replica notarization-votes
  for in a round (Definition 6.2 / Addition 3); ``n - p`` fast votes for a
  rank-0 block FP-finalize it, and fast votes also drive the *unlock*
  conditions of Definition 7.6.
* **Finalization vote** — sent when a replica notarization-voted for no other
  block in the round (Algorithm 2 line 51); a quorum of them SP-finalizes the
  block.

The baseline protocols reuse the same vote objects where applicable (e.g.
HotStuff votes are modelled as notarization votes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.crypto.signatures import Signature
from repro.types.blocks import BlockId


class VoteKind(enum.Enum):
    """The kind of a vote."""

    NOTARIZATION = "notarization"
    FAST = "fast"
    FINALIZATION = "finalization"


@dataclass(frozen=True, kw_only=True)
class Vote:
    """Base class for all votes.

    Attributes:
        kind: the vote kind.
        round: round number the voted block belongs to.
        block_id: identifier of the voted block.
        voter: replica id casting the vote.
        signature: the voter's signature share over
            ``(kind, round, block_id)``; optional so that unit tests and
            analytic code can construct votes without a PKI.
    """

    kind: VoteKind
    round: int
    block_id: BlockId
    voter: int
    signature: Optional[Signature] = None

    def signed_payload(self) -> tuple:
        """Return the tuple that the vote's signature covers."""
        return (self.kind.value, self.round, self.block_id)


@dataclass(frozen=True, kw_only=True)
class NotarizationVote(Vote):
    """A notarization vote; ``kind`` is fixed to :attr:`VoteKind.NOTARIZATION`."""

    kind: VoteKind = VoteKind.NOTARIZATION


@dataclass(frozen=True, kw_only=True)
class FastVote(Vote):
    """A fast vote; ``kind`` is fixed to :attr:`VoteKind.FAST`."""

    kind: VoteKind = VoteKind.FAST


@dataclass(frozen=True, kw_only=True)
class FinalizationVote(Vote):
    """A finalization vote; ``kind`` is fixed to :attr:`VoteKind.FINALIZATION`."""

    kind: VoteKind = VoteKind.FINALIZATION


def make_vote(kind: VoteKind, round: int, block_id: BlockId, voter: int,
              signature: Optional[Signature] = None) -> Vote:
    """Construct the concrete vote subclass for ``kind``."""
    if kind is VoteKind.NOTARIZATION:
        return NotarizationVote(round=round, block_id=block_id, voter=voter, signature=signature)
    if kind is VoteKind.FAST:
        return FastVote(round=round, block_id=block_id, voter=voter, signature=signature)
    if kind is VoteKind.FINALIZATION:
        return FinalizationVote(round=round, block_id=block_id, voter=voter, signature=signature)
    raise ValueError(f"unknown vote kind: {kind!r}")
