"""Chained HotStuff with a round-robin pacemaker.

One of the two baselines the paper compares against (Yin et al., PODC 2019,
as implemented in the Bamboo framework).  This is the classic 3-phase chained
variant:

* Views rotate round-robin.  The leader of view ``v`` proposes a block
  extending the highest known quorum certificate (QC) and carrying that QC as
  its *justify*.
* Replicas vote for at most one block per view, provided the block is
  *safe*: it extends the locked block, or its justify is newer than the
  lock.  Votes are broadcast (rather than sent only to the next leader) so
  quorum certificates also form when the next leader is faulty.
* A QC forms from ``n - f`` votes.  The 3-chain commit rule applies: when a
  block has a QC and its parent and grandparent have QCs in consecutive
  views, the grandparent (and all its ancestors) are committed.
* Pacemaker: a per-view timeout; on expiry replicas advance to the next view
  and send their highest QC to its leader, which may then propose.

The resulting fault-free proposer latency is several message delays longer
than ICC/Banyan (votes travel leader-to-leader rather than all-to-all), which
is exactly the effect Table 1 and Figure 6 of the paper illustrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.beacon import Beacon, RoundRobinBeacon
from repro.blocktree import BlockTree, FinalizedChain
from repro.crypto.keys import KeyRegistry
from repro.protocols.base import Protocol, ProtocolParams
from repro.runtime.context import ReplicaContext, Timer
from repro.smr.mempool import PayloadSource
from repro.smr.quorum import CertificateCollector, QuorumTracker
from repro.types.blocks import Block, BlockId
from repro.types.certificates import Notarization
from repro.types.messages import BlockProposal, Message, VoteMessage
from repro.types.votes import NotarizationVote, Vote, VoteKind


@dataclass(frozen=True)
class NewViewMessage:
    """Pacemaker message: a replica's highest QC, sent to the next leader."""

    view: int
    high_qc: Optional[Notarization]
    sender: int

    @property
    def wire_size(self) -> int:
        """Logical size in bytes (a QC plus a small header)."""
        if self.high_qc is None:
            return 96
        return 96 * max(1, len(self.high_qc))


class HotStuffReplica(Protocol):
    """A single chained-HotStuff replica."""

    name = "hotstuff"

    def __init__(
        self,
        replica_id: int,
        params: ProtocolParams,
        beacon: Optional[Beacon] = None,
        payload_source: Optional[PayloadSource] = None,
        registry: Optional[KeyRegistry] = None,
    ) -> None:
        super().__init__(replica_id, params, registry)
        params.validate_resilience(require_fast_path=False)
        self.beacon = beacon or RoundRobinBeacon(list(range(params.n)))
        self.payload_source = payload_source or PayloadSource(params.payload_size)
        self.tree = BlockTree()
        self.chain = FinalizedChain()
        self.current_view = 0
        self.last_voted_view = 0
        self.committed_round = 0
        #: QC per block id.
        self._qc_by_block: Dict[BlockId, Notarization] = {}
        self.high_qc: Optional[Notarization] = None
        self.locked_qc: Optional[Notarization] = None
        #: Vote tallies per view, shared quorum engine.
        self.votes = CertificateCollector()
        #: New-view senders per view (pacemaker quorum).
        self._new_views: Dict[int, Set[int]] = {}
        self._proposed_views: Set[int] = set()
        self._view_timer: Optional[int] = None
        #: Proposals whose parent has not arrived yet, keyed by parent id.
        self._pending_proposals: Dict[BlockId, List[BlockProposal]] = {}

    # ------------------------------------------------------------------ #
    # Quorum
    # ------------------------------------------------------------------ #

    @property
    def quorum(self) -> int:
        """Votes needed to form a QC (``n - f``)."""
        return self.params.bft_quorum

    def _vote_tracker(self, view: int) -> QuorumTracker:
        """The view's QC-vote tally (created on first use)."""
        return self.votes.tracker(view, VoteKind.NOTARIZATION, self.quorum)

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #

    def on_start(self, ctx: ReplicaContext) -> None:
        """Enter view 1; its leader proposes on top of genesis."""
        genesis = self.tree.block(self.tree.genesis_id)
        self.high_qc = Notarization(
            round=0, block_id=genesis.id, voters=frozenset(ctx.replica_ids)
        )
        self._qc_by_block[genesis.id] = self.high_qc
        self._enter_view(ctx, 1)

    def on_message(self, ctx: ReplicaContext, sender: int, message: Message) -> None:
        """Dispatch proposals, votes, and pacemaker messages."""
        if isinstance(message, BlockProposal):
            self._handle_proposal(ctx, sender, message)
        elif isinstance(message, VoteMessage):
            for vote in message.votes:
                self._handle_vote(ctx, vote)
        elif isinstance(message, NewViewMessage):
            self._handle_new_view(ctx, message)

    def on_messages(self, ctx: ReplicaContext, batch) -> None:
        """Batched delivery: tally same-block QC-vote waves in one pass.

        Runs of consecutive single-vote ``VoteMessage`` deliveries for
        the same ``(view, block)`` are tallied through one
        :meth:`repro.smr.quorum.QuorumTracker.add_votes` pass; everything
        else takes the exact scalar path in order.  See
        :meth:`_tally_vote_run` for the byte-identity argument.
        """
        n = len(batch)
        i = 0
        while i < n:
            sender, message = batch[i]
            if not isinstance(message, VoteMessage):
                self.on_message(ctx, sender, message)
                i += 1
                continue
            votes = message.votes
            if len(votes) == 1 and votes[0].kind is VoteKind.NOTARIZATION:
                vote = votes[0]
                view = vote.round
                block_id = vote.block_id
                voters = [vote.voter]
                j = i + 1
                while j < n:
                    nxt = batch[j][1]
                    if not isinstance(nxt, VoteMessage) or len(nxt.votes) != 1:
                        break
                    nxt = nxt.votes[0]
                    if (nxt.kind is not VoteKind.NOTARIZATION
                            or nxt.round != view or nxt.block_id != block_id):
                        break
                    voters.append(nxt.voter)
                    j += 1
                self._tally_vote_run(ctx, view, block_id, voters)
                i = j
                continue
            for vote in votes:
                self._handle_vote(ctx, vote)
            i += 1

    def _tally_vote_run(self, ctx: ReplicaContext, view: int,
                        block_id: BlockId, voters: List[int]) -> None:
        """Tally a run of same-``(view, block)`` QC votes at once.

        Scalar delivery calls :meth:`_try_form_qc` after every vote:
        before the quorum that call is a guarded no-op, at the crossing
        it forms the QC (and may propose), and after the crossing each
        call *re-forms* the QC with the grown voter set — every effect of
        those re-forms except the ``_qc_by_block`` rewrite is idempotent,
        so they collapse into one call.  The batched pass therefore stops
        at the crossing to form the QC with exactly the crossing voter
        set (``high_qc`` keeps its as-of-crossing voters, which sizes
        pacemaker messages), tallies the remainder, and re-forms once so
        the final ``_qc_by_block`` entry carries the same voters the
        scalar path would have left.
        """
        tracker = self._vote_tracker(view)
        before = tracker.fired_count()
        consumed = tracker.add_votes(block_id, voters)
        if tracker.fired_count() != before:
            self._try_form_qc(ctx, view, block_id)
            if consumed < len(voters):
                tracker.add_votes(block_id, voters[consumed:])
                self._try_form_qc(ctx, view, block_id)
        elif tracker.reached(block_id):
            # Quorum was already reached before this run: scalar delivery
            # re-formed the QC per vote; one re-form leaves the same state.
            self._try_form_qc(ctx, view, block_id)

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        """View timeout: advance the pacemaker."""
        if timer.name != "view-timeout":
            return
        view = timer.data
        if view != self.current_view:
            return
        next_view = view + 1
        self._send_new_view(ctx, next_view)
        self._enter_view(ctx, next_view)

    # ------------------------------------------------------------------ #
    # Pacemaker
    # ------------------------------------------------------------------ #

    def _leader_of(self, view: int) -> int:
        return self.beacon.leader(view)

    def _enter_view(self, ctx: ReplicaContext, view: int) -> None:
        if view <= self.current_view and self.current_view != 0:
            return
        self.current_view = view
        if self._view_timer is not None:
            ctx.cancel_timer(self._view_timer)
        self._view_timer = ctx.set_timer(self.params.round_timeout, "view-timeout", view)
        if self._leader_of(view) == self.replica_id:
            self._try_propose(ctx, view)

    def _send_new_view(self, ctx: ReplicaContext, view: int) -> None:
        message = NewViewMessage(view=view, high_qc=self.high_qc, sender=self.replica_id)
        ctx.send(self._leader_of(view), message)

    def _handle_new_view(self, ctx: ReplicaContext, message: NewViewMessage) -> None:
        if message.high_qc is not None:
            self._update_high_qc(ctx, message.high_qc)
        senders = self._new_views.setdefault(message.view, set())
        senders.add(message.sender)
        if message.view > self.current_view:
            # A quorum of new-view messages is evidence the view has moved on.
            if len(senders) >= self.quorum:
                self._enter_view(ctx, message.view)
        if (
            self._leader_of(message.view) == self.replica_id
            and len(senders) >= self.quorum
        ):
            self._enter_view(ctx, message.view)
            self._try_propose(ctx, message.view)

    # ------------------------------------------------------------------ #
    # Proposing
    # ------------------------------------------------------------------ #

    def _try_propose(self, ctx: ReplicaContext, view: int) -> None:
        if view in self._proposed_views or self._leader_of(view) != self.replica_id:
            return
        if self.high_qc is None:
            return
        parent = self.tree.get(self.high_qc.block_id)
        if parent is None:
            return
        self._proposed_views.add(view)
        payload, logical_size = self.payload_source.payload_for(view, self.replica_id)
        block = Block(
            round=view,
            proposer=self.replica_id,
            rank=0,
            parent_id=parent.id,
            payload=payload,
            payload_size=logical_size,
        )
        self.proposal_times[block.id] = ctx.now()
        ctx.broadcast(BlockProposal(block=block, parent_notarization=self.high_qc))

    # ------------------------------------------------------------------ #
    # Proposal handling and voting
    # ------------------------------------------------------------------ #

    def _handle_proposal(self, ctx: ReplicaContext, sender: int, proposal: BlockProposal) -> None:
        block = proposal.block
        justify = proposal.parent_notarization
        if block.round <= 0 or justify is None:
            return
        if block.proposer != self._leader_of(block.round):
            return
        if justify.block_id != block.parent_id:
            return
        if not justify.verify(None, self.quorum) and justify.round != 0:
            return
        if block.parent_id not in self.tree:
            # Without the parent we cannot evaluate safety.  Leaders always
            # extend a QC block, but deliveries from *different* senders can
            # reorder (e.g. a partition healing unevenly per link), so park
            # the proposal until its parent arrives — dropping it here wedges
            # the replica forever, since every later block descends from the
            # missing one.
            pending = self._pending_proposals.setdefault(block.parent_id, [])
            if all(parked.block.id != block.id for parked in pending):
                pending.append(proposal)
            return
        self.tree.add_block(block)
        self._qc_by_block.setdefault(justify.block_id, justify)
        self._update_high_qc(ctx, justify)
        self._recheck_votes(ctx, block)
        if block.round > self.current_view:
            self._enter_view(ctx, block.round)
        if self._is_safe(block, justify) and block.round > self.last_voted_view:
            self.last_voted_view = block.round
            vote = NotarizationVote(round=block.round, block_id=block.id, voter=self.replica_id)
            # Votes are broadcast rather than sent only to the next leader so
            # that a QC still forms when that leader is crashed; the next
            # correct leader can then extend it after its timeout.  This keeps
            # the 3-chain commit rule live under round-robin rotation with a
            # periodically recurring faulty leader.
            ctx.broadcast(VoteMessage(votes=(vote,), sender=self.replica_id))
        for parked in self._pending_proposals.pop(block.id, []):
            self._handle_proposal(ctx, parked.block.proposer, parked)

    def _is_safe(self, block: Block, justify: Notarization) -> bool:
        """HotStuff safety rule: extend the lock, or justify is newer than it."""
        if self.locked_qc is None:
            return True
        if justify.round > self.locked_qc.round:
            return True
        return self.tree.is_ancestor(self.locked_qc.block_id, block.id)

    def _handle_vote(self, ctx: ReplicaContext, vote: Vote) -> None:
        if vote.kind is not VoteKind.NOTARIZATION:
            return
        self._vote_tracker(vote.round).add_vote(vote.block_id, vote.voter)
        self._try_form_qc(ctx, vote.round, vote.block_id)

    def _recheck_votes(self, ctx: ReplicaContext, block: Block) -> None:
        """A QC may have been waiting for this block to arrive."""
        if self._vote_tracker(block.round).count(block.id):
            self._try_form_qc(ctx, block.round, block.id)

    def _try_form_qc(self, ctx: ReplicaContext, view: int, block_id: BlockId) -> None:
        tracker = self._vote_tracker(view)
        if not tracker.reached(block_id) or block_id not in self.tree:
            return
        qc = Notarization(round=view, block_id=block_id, voters=tracker.voters(block_id))
        self._qc_by_block[block_id] = qc
        self._update_high_qc(ctx, qc)
        next_view = view + 1
        if self._leader_of(next_view) == self.replica_id:
            self._enter_view(ctx, next_view)
            self._try_propose(ctx, next_view)

    # ------------------------------------------------------------------ #
    # QC tracking, locking, and the 3-chain commit rule
    # ------------------------------------------------------------------ #

    def _update_high_qc(self, ctx: ReplicaContext, qc: Notarization) -> None:
        self._qc_by_block.setdefault(qc.block_id, qc)
        if self.high_qc is None or qc.round > self.high_qc.round:
            self.high_qc = qc
        self._update_lock_and_commit(ctx, qc)

    def _update_lock_and_commit(self, ctx: ReplicaContext, qc: Notarization) -> None:
        block = self.tree.get(qc.block_id)
        if block is None or block.parent_id is None:
            return
        parent = self.tree.get(block.parent_id)
        if parent is None:
            return
        parent_qc = self._qc_by_block.get(parent.id)
        if parent_qc is None:
            return
        # 2-chain: lock on the parent QC.
        if self.locked_qc is None or parent_qc.round > self.locked_qc.round:
            self.locked_qc = parent_qc
        if parent.parent_id is None:
            return
        grandparent = self.tree.get(parent.parent_id)
        if grandparent is None or grandparent.id not in self._qc_by_block:
            return
        # 3-chain with consecutive views commits the grandparent.
        if block.round == parent.round + 1 and parent.round == grandparent.round + 1:
            self._commit(ctx, grandparent)

    def _commit(self, ctx: ReplicaContext, block: Block) -> None:
        if block.round <= self.committed_round:
            return
        try:
            path = self.tree.chain_to(block.id)
        except Exception:
            return
        segment = [b for b in path if b.round > self.committed_round]
        for b in segment:
            self.tree.mark_notarized(b.id)
            self.tree.mark_finalized(b.id)
        appended = self.chain.append_segment(segment)
        if appended:
            ctx.commit(appended, finalization_kind="slow")
        self.committed_round = block.round
