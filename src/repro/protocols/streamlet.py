"""Streamlet (Chan & Shi, AFT 2020).

The second baseline of the paper's evaluation.  Streamlet is deliberately
simple:

* Time is divided into fixed-length epochs (the paper's timeout parameter;
  every epoch has a round-robin leader).
* At the start of its epoch, the leader proposes a block extending the tip
  of a longest *notarized* chain it has seen.
* Every replica votes (broadcast) for the first valid proposal of the epoch
  from the epoch's leader, provided it extends a longest notarized chain.
* A block with votes from ``≥ 2n/3`` replicas is notarized.
* Finality: when three blocks with *consecutive* epoch numbers are notarized
  on one chain, the first two of them (and all earlier blocks on that chain)
  are final.

The fault-free proposer latency is therefore roughly three epochs, i.e. the
``6Δ`` of Table 1, which is why Streamlet trails the other protocols in the
reproduced figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.beacon import Beacon, RoundRobinBeacon
from repro.blocktree import BlockTree, FinalizedChain
from repro.crypto.keys import KeyRegistry
from repro.protocols.base import Protocol, ProtocolParams
from repro.runtime.context import ReplicaContext, Timer
from repro.smr.mempool import PayloadSource
from repro.smr.quorum import CertificateCollector, QuorumTracker
from repro.types.blocks import Block, BlockId
from repro.types.messages import BlockProposal, Message, VoteMessage
from repro.types.votes import NotarizationVote, Vote, VoteKind


class StreamletReplica(Protocol):
    """A single Streamlet replica."""

    name = "streamlet"

    def __init__(
        self,
        replica_id: int,
        params: ProtocolParams,
        beacon: Optional[Beacon] = None,
        payload_source: Optional[PayloadSource] = None,
        registry: Optional[KeyRegistry] = None,
        epoch_duration: Optional[float] = None,
    ) -> None:
        super().__init__(replica_id, params, registry)
        params.validate_resilience(require_fast_path=False)
        self.beacon = beacon or RoundRobinBeacon(list(range(params.n)))
        self.payload_source = payload_source or PayloadSource(params.payload_size)
        #: Epoch length (``2Δ``); defaults to the shared rank delay.
        self.epoch_duration = epoch_duration if epoch_duration is not None else params.rank_delay
        if self.epoch_duration <= 0:
            raise ValueError("epoch duration must be positive")
        self.tree = BlockTree()
        self.chain = FinalizedChain()
        self.current_epoch = 0
        self.finalized_epoch = 0
        #: Per-epoch vote tallies, shared quorum engine.
        self.votes = CertificateCollector()
        #: Epochs in which this replica already voted.
        self._voted_epochs: Set[int] = set()
        self._proposed_epochs: Set[int] = set()
        #: Memoised notarized-chain length per notarized block (genesis = 1).
        self._notarized_length: Dict[BlockId, int] = {self.tree.genesis_id: 1}
        #: Tip of the longest notarized chain seen so far.
        self._best_tip: Block = self.tree.block(self.tree.genesis_id)
        #: Proposals whose parent has not arrived yet, keyed by parent id.
        self._pending_proposals: Dict[BlockId, List[BlockProposal]] = {}

    # ------------------------------------------------------------------ #
    # Quorum
    # ------------------------------------------------------------------ #

    @property
    def quorum(self) -> int:
        """Streamlet notarizes with ``≥ 2n/3`` votes."""
        return math.ceil(2 * self.params.n / 3)

    def _vote_tracker(self, epoch: int) -> QuorumTracker:
        """The epoch's notarization-vote tally (created on first use)."""
        return self.votes.tracker(epoch, VoteKind.NOTARIZATION, self.quorum)

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #

    def on_start(self, ctx: ReplicaContext) -> None:
        """Start the epoch clock."""
        self._begin_epoch(ctx, 1)

    def on_message(self, ctx: ReplicaContext, sender: int, message: Message) -> None:
        """Dispatch proposals and votes."""
        if isinstance(message, BlockProposal):
            self._handle_proposal(ctx, sender, message)
        elif isinstance(message, VoteMessage):
            for vote in message.votes:
                self._handle_vote(ctx, vote)

    def on_messages(self, ctx: ReplicaContext, batch) -> None:
        """Batched delivery: tally same-block vote waves in one pass.

        Runs of consecutive single-vote ``VoteMessage`` deliveries for
        the same ``(epoch, block)`` are tallied through one
        :meth:`repro.smr.quorum.QuorumTracker.add_votes` pass; everything
        else takes the exact scalar path in order.  Byte-identity: the
        scalar per-vote :meth:`_try_notarize` is a pure no-op both before
        the quorum (``reached`` guard) and after it (``is_notarized``
        guard, and the tree cannot change mid-run), so only the crossing
        call — made here at exactly the crossing vote — has any effect.
        """
        n = len(batch)
        i = 0
        while i < n:
            sender, message = batch[i]
            if not isinstance(message, VoteMessage):
                self.on_message(ctx, sender, message)
                i += 1
                continue
            votes = message.votes
            if len(votes) == 1 and votes[0].kind is VoteKind.NOTARIZATION:
                vote = votes[0]
                epoch = vote.round
                block_id = vote.block_id
                voters = [vote.voter]
                j = i + 1
                while j < n:
                    nxt = batch[j][1]
                    if not isinstance(nxt, VoteMessage) or len(nxt.votes) != 1:
                        break
                    nxt = nxt.votes[0]
                    if (nxt.kind is not VoteKind.NOTARIZATION
                            or nxt.round != epoch or nxt.block_id != block_id):
                        break
                    voters.append(nxt.voter)
                    j += 1
                tracker = self._vote_tracker(epoch)
                before = tracker.fired_count()
                consumed = tracker.add_votes(block_id, voters)
                if tracker.fired_count() != before:
                    self._try_notarize(ctx, epoch, block_id)
                    if consumed < len(voters):
                        tracker.add_votes(block_id, voters[consumed:])
                i = j
                continue
            for vote in votes:
                self._handle_vote(ctx, vote)
            i += 1

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        """Epoch boundary."""
        if timer.name == "epoch":
            self._begin_epoch(ctx, timer.data)

    # ------------------------------------------------------------------ #
    # Epochs and proposing
    # ------------------------------------------------------------------ #

    def _begin_epoch(self, ctx: ReplicaContext, epoch: int) -> None:
        self.current_epoch = epoch
        ctx.set_timer(self.epoch_duration, "epoch", epoch + 1)
        if self.beacon.leader(epoch) == self.replica_id:
            self._propose(ctx, epoch)

    def _notarized_chain_length(self, block: Block) -> int:
        """Length of the notarized chain ending at ``block`` (memoised)."""
        cached = self._notarized_length.get(block.id)
        if cached is not None:
            return cached
        if not self.tree.is_notarized(block.id):
            return 0
        # Walk towards genesis until a memoised ancestor (or a gap) is found.
        walk: List[Block] = []
        current: Optional[Block] = block
        base = 0
        while current is not None and self.tree.is_notarized(current.id):
            cached = self._notarized_length.get(current.id)
            if cached is not None:
                base = cached
                break
            walk.append(current)
            current = self.tree.parent(current.id)
        length = base
        for b in reversed(walk):
            length += 1
            self._notarized_length[b.id] = length
        return self._notarized_length[block.id]

    def _best_chain_length(self) -> int:
        """Length of the longest notarized chain this replica has seen."""
        return self._notarized_chain_length(self._best_tip)

    def _propose(self, ctx: ReplicaContext, epoch: int) -> None:
        if epoch in self._proposed_epochs:
            return
        parent = self._best_tip
        self._proposed_epochs.add(epoch)
        payload, logical_size = self.payload_source.payload_for(epoch, self.replica_id)
        block = Block(
            round=epoch,
            proposer=self.replica_id,
            rank=0,
            parent_id=parent.id,
            payload=payload,
            payload_size=logical_size,
        )
        self.proposal_times[block.id] = ctx.now()
        ctx.broadcast(BlockProposal(block=block))

    # ------------------------------------------------------------------ #
    # Voting and notarization
    # ------------------------------------------------------------------ #

    def _handle_proposal(self, ctx: ReplicaContext, sender: int, proposal: BlockProposal) -> None:
        block = proposal.block
        if block.round <= 0:
            return
        if block.proposer != self.beacon.leader(block.round):
            return
        if block.parent_id is None:
            return
        if block.parent_id not in self.tree:
            # Deliveries from different senders can reorder (e.g. a partition
            # healing unevenly per link); park the proposal until its parent
            # arrives — dropping it would wedge this replica forever, since
            # every later block descends from the missing one.
            pending = self._pending_proposals.setdefault(block.parent_id, [])
            if all(parked.block.id != block.id for parked in pending):
                pending.append(proposal)
            return
        if block.id not in self.tree:
            self.tree.add_block(block)
            self._try_notarize(ctx, block.round, block.id)
            for parked in self._pending_proposals.pop(block.id, []):
                self._handle_proposal(ctx, parked.block.proposer, parked)
        if block.round != self.current_epoch or block.round in self._voted_epochs:
            return
        parent = self.tree.block(block.parent_id)
        if self._notarized_chain_length(parent) < self._best_chain_length():
            return
        self._voted_epochs.add(block.round)
        vote = NotarizationVote(round=block.round, block_id=block.id, voter=self.replica_id)
        ctx.broadcast(VoteMessage(votes=(vote,), sender=self.replica_id))

    def _handle_vote(self, ctx: ReplicaContext, vote: Vote) -> None:
        if vote.kind is not VoteKind.NOTARIZATION:
            return
        self._vote_tracker(vote.round).add_vote(vote.block_id, vote.voter)
        self._try_notarize(ctx, vote.round, vote.block_id)

    def _try_notarize(self, ctx: ReplicaContext, epoch: int, block_id: BlockId) -> None:
        if block_id not in self.tree or self.tree.is_notarized(block_id):
            return
        if not self._vote_tracker(epoch).reached(block_id):
            return
        self.tree.mark_notarized(block_id)
        block = self.tree.block(block_id)
        if self._notarized_chain_length(block) > self._best_chain_length():
            self._best_tip = block
        self._try_finalize(ctx, block)

    # ------------------------------------------------------------------ #
    # Finality: three consecutive notarized epochs
    # ------------------------------------------------------------------ #

    def _try_finalize(self, ctx: ReplicaContext, block: Block) -> None:
        parent = self.tree.parent(block.id)
        if parent is None:
            return
        grandparent = self.tree.parent(parent.id)
        if grandparent is None:
            return
        consecutive = (
            block.round == parent.round + 1 and parent.round == grandparent.round + 1
        )
        if not consecutive:
            return
        if not (self.tree.is_notarized(parent.id) and self.tree.is_notarized(grandparent.id)):
            return
        self._commit(ctx, parent)

    def _commit(self, ctx: ReplicaContext, block: Block) -> None:
        if block.round <= self.finalized_epoch:
            return
        try:
            path = self.tree.chain_to(block.id)
        except Exception:
            return
        segment = [b for b in path if b.round > self.finalized_epoch]
        for b in segment:
            self.tree.mark_notarized(b.id)
            self.tree.mark_finalized(b.id)
        appended = self.chain.append_segment(segment)
        if appended:
            ctx.commit(appended, finalization_kind="slow")
        self.finalized_epoch = block.round
