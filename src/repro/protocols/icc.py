"""Internet Computer Consensus (ICC) — the slow path Banyan builds on.

This is the protocol of Section 4 of the Banyan paper (after Camenisch et
al., PODC 2022), implemented as a sans-io state machine:

* Rounds: in round ``k`` each replica may propose a block extending a
  notarized round ``k-1`` block.  A random-beacon (here: round-robin)
  permutation assigns each replica a rank; rank 0 is the leader.
* Proposal delay ``Δ_prop(r) = 2Δ·r`` and notarization delay
  ``Δ_notary(r) = 2Δ·r`` ensure that in synchronous, fault-free rounds only
  the leader's block is notarized.
* A block is **notarized** once ``n - f`` notarization votes are received;
  replicas then stop notarization-voting in the round, broadcast the
  notarization, and move to the next round.
* A replica that notarization-voted for no other block additionally sends a
  **finalization vote**; ``n - f`` of them explicitly finalize the block and
  implicitly finalize its ancestors (three message delays end to end).

The implementation tolerates out-of-order delivery: blocks whose parent has
not arrived, votes for unknown blocks, and certificates for future rounds are
buffered and re-evaluated when their prerequisites arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.beacon import Beacon, RoundRobinBeacon
from repro.blocktree import BlockTree, FinalizedChain
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.protocols.base import Protocol, ProtocolParams
from repro.runtime.context import ReplicaContext, Timer
from repro.smr.mempool import PayloadSource
from repro.smr.quorum import CertificateCollector, QuorumTracker
from repro.types.blocks import Block, BlockId
from repro.types.certificates import Finalization, Notarization, UnlockProof
from repro.types.messages import BlockProposal, CertificateMessage, Message, VoteMessage
from repro.types.votes import FinalizationVote, NotarizationVote, Vote, VoteKind


@dataclass
class _RoundState:
    """Per-round bookkeeping for ICC.

    Vote tallies live in the replica-wide
    :class:`repro.smr.quorum.CertificateCollector`; this state carries only
    the round-lifecycle flags.
    """

    t0: float = 0.0
    entered: bool = False
    proposed: bool = False
    advanced: bool = False
    finalization_vote_sent: bool = False
    #: Block ids this replica sent a notarization vote for (the set ``N``).
    notarization_voted: Set[BlockId] = field(default_factory=set)
    #: Block ids whose notarization certificate we have broadcast already.
    notarization_broadcast: Set[BlockId] = field(default_factory=set)
    #: Block ids this replica relayed (tip forwarding).
    relayed: Set[BlockId] = field(default_factory=set)
    #: Pending notarization-delay timer target times already armed.
    armed_vote_timers: Set[float] = field(default_factory=set)
    #: Tracker fired-count already processed by ``_try_notarizations`` —
    #: with ``notarization_deferred`` this lets the (very hot) re-check
    #: exit in O(1) when nothing reached the quorum since the last look.
    notarization_fired_seen: int = 0
    #: Whether a quorum-reached block was skipped because it has not been
    #: received yet (forces a re-scan on the next call).
    notarization_deferred: bool = False


class ICCReplica(Protocol):
    """A single ICC replica."""

    name = "icc"

    def __init__(
        self,
        replica_id: int,
        params: ProtocolParams,
        beacon: Optional[Beacon] = None,
        payload_source: Optional[PayloadSource] = None,
        registry: Optional[KeyRegistry] = None,
    ) -> None:
        super().__init__(replica_id, params, registry)
        params.validate_resilience(require_fast_path=False)
        self.beacon = beacon or RoundRobinBeacon(list(range(params.n)))
        self.payload_source = payload_source or PayloadSource(params.payload_size)
        #: Adaptive 2Δ estimator (Remark 4.2); ``None`` when delays are fixed.
        self.delay_estimator = None
        if params.adaptive_delays:
            from repro.core.adaptive import AdaptiveDelayEstimator

            self.delay_estimator = AdaptiveDelayEstimator(initial_delay=params.rank_delay)
        self.tree = BlockTree()
        self.chain = FinalizedChain()
        self.current_round = 0
        self.k_max = 0
        #: Shared vote tallies: one tracker per (round, vote kind).
        self.votes = CertificateCollector()
        self._rounds: Dict[int, _RoundState] = {}
        #: Blocks waiting for their parent to arrive, keyed by parent id.
        self._orphans: Dict[BlockId, List[Block]] = {}
        #: Finalizations (block ids) waiting for the block/ancestors to arrive.
        self._pending_finalizations: Dict[BlockId, str] = {}
        #: Quorum thresholds resolved once (the properties derive them from
        #: immutable params; tracker lookups are per-message hot paths).
        self._notarization_quorum = self.notarization_quorum
        self._finalization_quorum = self.finalization_quorum

    # ------------------------------------------------------------------ #
    # Quorums (overridden by Banyan)
    # ------------------------------------------------------------------ #

    def _proposal_delay(self, rank: int) -> float:
        """``Δ_prop(r)``, using the adaptive estimate when enabled."""
        if self.delay_estimator is not None:
            return self.delay_estimator.proposal_delay(rank)
        return self.params.proposal_delay(rank)

    def _notarization_delay(self, rank: int) -> float:
        """``Δ_notary(r)``, using the adaptive estimate when enabled."""
        if self.delay_estimator is not None:
            return self.delay_estimator.notarization_delay(rank)
        return self.params.notarization_delay(rank)

    @property
    def notarization_quorum(self) -> int:
        """Votes needed to notarize a block (``n - f`` in ICC)."""
        return self.params.icc_quorum

    @property
    def finalization_quorum(self) -> int:
        """Votes needed to SP-finalize a block (``n - f`` in ICC)."""
        return self.params.icc_quorum

    def _notarization_tracker(self, round_k: int) -> QuorumTracker:
        """The round's notarization tally (created on first use)."""
        return self.votes.tracker(round_k, VoteKind.NOTARIZATION,
                                  self._notarization_quorum)

    def _finalization_tracker(self, round_k: int) -> QuorumTracker:
        """The round's finalization tally (created on first use)."""
        return self.votes.tracker(round_k, VoteKind.FINALIZATION,
                                  self._finalization_quorum)

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #

    def on_start(self, ctx: ReplicaContext) -> None:
        """Enter round 1 on top of the genesis block."""
        self.current_round = 1
        self._enter_round(ctx, 1)

    def on_message(self, ctx: ReplicaContext, sender: int, message: Message) -> None:
        """Dispatch on the message shape."""
        if isinstance(message, BlockProposal):
            self._handle_proposal(ctx, sender, message)
        elif isinstance(message, VoteMessage):
            for vote in message.votes:
                self._handle_vote(ctx, vote)
        elif isinstance(message, CertificateMessage):
            self._handle_certificate(ctx, message)

    def on_messages(self, ctx: ReplicaContext, batch) -> None:
        """Batched delivery: tally same-target vote waves in one pass.

        A fused sweep is dominated by runs of single-vote ``VoteMessage``
        broadcasts from different senders supporting the same block (a
        vote wave).  Each run is tallied through one
        :meth:`repro.smr.quorum.QuorumTracker.add_votes` pass instead of
        per-vote handler calls; anything else in the batch (proposals,
        certificates, multi-vote or fast-vote messages) takes the exact
        scalar path in order.  Byte-identity with per-message delivery
        holds because the scalar per-vote re-evaluations are guarded
        no-ops except at a threshold crossing, and the batched pass stops
        at the crossing to run the same re-evaluation there (see
        :meth:`_tally_vote_run`).
        """
        n = len(batch)
        i = 0
        while i < n:
            sender, message = batch[i]
            if not isinstance(message, VoteMessage):
                self.on_message(ctx, sender, message)
                i += 1
                continue
            votes = message.votes
            if len(votes) == 1:
                vote = votes[0]
                kind = vote.kind
                if kind is VoteKind.NOTARIZATION or kind is VoteKind.FINALIZATION:
                    round_k = vote.round
                    block_id = vote.block_id
                    voters = [vote.voter]
                    j = i + 1
                    while j < n:
                        nxt = batch[j][1]
                        if not isinstance(nxt, VoteMessage) or len(nxt.votes) != 1:
                            break
                        nxt = nxt.votes[0]
                        if (nxt.kind is not kind or nxt.round != round_k
                                or nxt.block_id != block_id):
                            break
                        voters.append(nxt.voter)
                        j += 1
                    self._tally_vote_run(ctx, kind, round_k, block_id, voters)
                    i = j
                    continue
            for vote in votes:
                self._handle_vote(ctx, vote)
            i += 1

    def _tally_vote_run(self, ctx: ReplicaContext, kind: "VoteKind",
                        round_k: int, block_id: BlockId,
                        voters: List[int]) -> None:
        """Tally a run of same-``(kind, round, block)`` votes at once.

        Byte-identical to per-vote :meth:`_handle_vote` calls: the
        per-vote re-evaluation (``_try_notarizations`` /
        ``_try_slow_finalization``) only does observable work when this
        vote crossed the quorum threshold — otherwise it exits on its
        fired-count / ``reached`` guards, and any rescan it does rewrites
        identical state (the tree cannot change mid-run).  So the run is
        tallied in one tracker pass that stops exactly at the crossing,
        the re-evaluation fires there (same sends/commits at the same
        vote as scalar delivery), and the remainder — which can never
        cross again — is tallied without further calls.
        """
        if kind is VoteKind.NOTARIZATION:
            tracker = self._notarization_tracker(round_k)
        else:
            tracker = self._finalization_tracker(round_k)
        before = tracker.fired_count()
        consumed = tracker.add_votes(block_id, voters)
        if tracker.fired_count() != before:
            if kind is VoteKind.NOTARIZATION:
                self._try_notarizations(ctx, round_k)
            else:
                self._try_slow_finalization(ctx, round_k, block_id)
            if consumed < len(voters):
                tracker.add_votes(block_id, voters[consumed:])

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        """Handle proposal and notarization-delay timers."""
        if timer.name == "propose":
            round_k = timer.data
            if round_k == self.current_round and not self._round(round_k).proposed:
                self._propose(ctx, round_k)
        elif timer.name == "notarize":
            round_k = timer.data
            self._try_notarization_votes(ctx, round_k)

    # ------------------------------------------------------------------ #
    # Round lifecycle
    # ------------------------------------------------------------------ #

    def _round(self, round_k: int) -> _RoundState:
        state = self._rounds.get(round_k)
        if state is None:
            state = _RoundState()
            self._rounds[round_k] = state
        return state

    def _enter_round(self, ctx: ReplicaContext, round_k: int) -> None:
        state = self._round(round_k)
        state.t0 = ctx.now()
        state.entered = True
        rank = self.beacon.rank(round_k, self.replica_id)
        if rank == 0:
            self._propose(ctx, round_k)
        else:
            ctx.set_timer(self._proposal_delay(rank), "propose", round_k)
        # Blocks and votes for this round may have arrived before we entered.
        self._try_notarization_votes(ctx, round_k)
        self._try_notarizations(ctx, round_k)
        self._try_advance(ctx, round_k)

    def _parent_candidates(self, round_k: int) -> List[Block]:
        """Blocks at height ``round_k - 1`` that are safe to extend."""
        return self.tree.notarized_at_round(round_k - 1)

    def _propose(self, ctx: ReplicaContext, round_k: int) -> None:
        state = self._round(round_k)
        if state.proposed or state.advanced:
            return
        candidates = self._parent_candidates(round_k)
        if not candidates:
            return
        parent = min(candidates, key=lambda b: (b.rank, b.id))
        payload, logical_size = self.payload_source.payload_for(round_k, self.replica_id)
        rank = self.beacon.rank(round_k, self.replica_id)
        block = Block(
            round=round_k,
            proposer=self.replica_id,
            rank=rank,
            parent_id=parent.id,
            payload=payload,
            payload_size=logical_size,
        )
        state.proposed = True
        self.proposal_times[block.id] = ctx.now()
        proposal = self._make_proposal(round_k, block, parent)
        ctx.broadcast(proposal)
        self._after_propose(ctx, round_k, block)

    def _make_proposal(self, round_k: int, block: Block, parent: Block) -> BlockProposal:
        """Build the proposal message for our own block.

        ICC attaches the parent's notarization; Banyan's hooks additionally
        attach the parent's unlock proof and, for rank-0 proposals, the
        proposer's own fast vote (Addition 2).
        """
        return BlockProposal(
            block=block,
            parent_notarization=self._notarization_for(parent),
            parent_unlock_proof=self._parent_unlock_proof(parent),
            fast_vote=self._proposal_fast_vote(round_k, block),
        )

    def _parent_unlock_proof(self, parent: Optional[Block]) -> Optional[UnlockProof]:
        """Unlock proof attached to proposals/relays (Banyan overrides)."""
        return None

    def _proposal_fast_vote(self, round_k: int, block: Block) -> Optional[Vote]:
        """Fast vote attached to our own proposal (Banyan overrides)."""
        return None

    def _relay_fast_vote(self, round_k: int, block: Block) -> Optional[Vote]:
        """Fast vote attached to a relayed proposal (Banyan overrides)."""
        return None

    def _after_propose(self, ctx: ReplicaContext, round_k: int, block: Block) -> None:
        """Hook invoked after broadcasting our own proposal (no-op for ICC)."""

    def _notarization_for(self, block: Block) -> Optional[Notarization]:
        """Build a notarization certificate for ``block`` from received votes."""
        if block.is_genesis() or not self.tree.is_notarized(block.id):
            return None
        voters = self._notarization_tracker(block.round).voters(block.id)
        if not voters:
            return None
        return Notarization(round=block.round, block_id=block.id, voters=voters)

    # ------------------------------------------------------------------ #
    # Proposal handling
    # ------------------------------------------------------------------ #

    def _handle_proposal(self, ctx: ReplicaContext, sender: int, proposal: BlockProposal) -> None:
        block = proposal.block
        if block.round <= 0:
            return
        if block.rank != self.beacon.rank(block.round, block.proposer):
            return  # rank does not match the beacon permutation — invalid
        self._absorb_parent_certificates(ctx, proposal)
        self._ingest_block(ctx, block)

    def _absorb_parent_certificates(self, ctx: ReplicaContext, proposal: BlockProposal) -> None:
        notarization = proposal.parent_notarization
        if notarization is not None and notarization.verify(None, self._notarization_quorum):
            self._register_notarization(ctx, notarization)

    def _ingest_block(self, ctx: ReplicaContext, block: Block) -> None:
        if block.id in self.tree:
            return
        if block.parent_id is not None and block.parent_id not in self.tree:
            self._orphans.setdefault(block.parent_id, []).append(block)
            return
        self.tree.add_block(block)
        self._after_block_added(ctx, block)
        # Re-ingest any orphans waiting for this block.
        for orphan in self._orphans.pop(block.id, []):
            self._ingest_block(ctx, orphan)

    def _after_block_added(self, ctx: ReplicaContext, block: Block) -> None:
        round_k = block.round
        self._try_notarization_votes(ctx, round_k)
        self._try_notarizations(ctx, round_k)
        self._try_pending_finalizations(ctx)
        self._try_advance(ctx, round_k)

    # ------------------------------------------------------------------ #
    # Voting
    # ------------------------------------------------------------------ #

    def _is_valid(self, block: Block) -> bool:
        """Validity condition for voting/extension (parent notarized)."""
        if block.parent_id is None:
            return block.is_genesis()
        parent = self.tree.get(block.parent_id)
        if parent is None or parent.round != block.round - 1:
            return False
        return self.tree.is_notarized(parent.id)

    def _valid_blocks(self, round_k: int) -> List[Block]:
        return [b for b in self.tree.blocks_at_round(round_k) if self._is_valid(b)]

    def _should_stop_voting(self, round_k: int) -> bool:
        """ICC stops notarization-voting once the round has a notarized block."""
        return self._round(round_k).advanced

    def _try_notarization_votes(self, ctx: ReplicaContext, round_k: int) -> None:
        state = self._round(round_k)
        if not state.entered or round_k != self.current_round or self._should_stop_voting(round_k):
            return
        valid_blocks = self._valid_blocks(round_k)
        if not valid_blocks:
            return
        min_rank = min(b.rank for b in valid_blocks)
        now = ctx.now()
        for block in valid_blocks:
            if block.rank != min_rank or block.id in state.notarization_voted:
                continue
            vote_time = state.t0 + self._notarization_delay(block.rank)
            if now + 1e-12 < vote_time:
                if vote_time not in state.armed_vote_timers:
                    state.armed_vote_timers.add(vote_time)
                    ctx.set_timer(vote_time - now, "notarize", round_k)
                continue
            self._cast_votes_for(ctx, round_k, block)

    def _cast_votes_for(self, ctx: ReplicaContext, round_k: int, block: Block) -> None:
        """Relay the block (tip forwarding) and broadcast a notarization vote."""
        state = self._round(round_k)
        state.notarization_voted.add(block.id)
        if (
            self.params.relay_proposals
            and block.proposer != self.replica_id
            and block.id not in state.relayed
        ):
            state.relayed.add(block.id)
            ctx.broadcast(self._relay_message(round_k, block))
        votes = self._votes_for_block(round_k, block)
        ctx.broadcast(VoteMessage(votes=tuple(votes), sender=self.replica_id))
        # Casting a vote can satisfy the round-advance condition (e.g. Banyan's
        # fast-vote requirement) when the block was already notarized.
        self._try_advance(ctx, round_k)

    def _relay_message(self, round_k: int, block: Block) -> BlockProposal:
        """The message used to forward someone else's block to the others.

        Shared by ICC and Banyan: the protocols differ only in which
        certificates/votes they attach, expressed through the
        ``_parent_unlock_proof`` / ``_relay_fast_vote`` hooks.
        """
        parent = self.tree.get(block.parent_id) if block.parent_id else None
        return BlockProposal(
            block=block,
            parent_notarization=self._notarization_for(parent) if parent else None,
            parent_unlock_proof=self._parent_unlock_proof(parent) if parent else None,
            fast_vote=self._relay_fast_vote(round_k, block),
            relayed_by=self.replica_id,
        )

    def _votes_for_block(self, round_k: int, block: Block) -> List[Vote]:
        """The votes broadcast when notarization-voting for ``block``.

        ICC sends only the notarization vote; Banyan overrides this to attach
        a fast vote the first time in a round (Addition 3).
        """
        return [self._make_vote(VoteKind.NOTARIZATION, round_k, block.id)]

    def _make_vote(self, kind: VoteKind, round_k: int, block_id: BlockId) -> Vote:
        signature = None
        if self.params.sign_messages and self.registry is not None:
            signature = sign((kind.value, round_k, block_id), self.replica_id, self.registry)
        if kind is VoteKind.NOTARIZATION:
            return NotarizationVote(
                round=round_k, block_id=block_id, voter=self.replica_id, signature=signature
            )
        if kind is VoteKind.FINALIZATION:
            return FinalizationVote(
                round=round_k, block_id=block_id, voter=self.replica_id, signature=signature
            )
        raise ValueError(f"unsupported vote kind for ICC: {kind}")

    def _handle_vote(self, ctx: ReplicaContext, vote: Vote) -> None:
        if vote.kind is VoteKind.NOTARIZATION:
            self._notarization_tracker(vote.round).add_vote(vote.block_id, vote.voter)
            self._try_notarizations(ctx, vote.round)
        elif vote.kind is VoteKind.FINALIZATION:
            self._finalization_tracker(vote.round).add_vote(vote.block_id, vote.voter)
            self._try_slow_finalization(ctx, vote.round, vote.block_id)
        elif vote.kind is VoteKind.FAST:
            self._handle_fast_vote(ctx, vote)

    def _handle_fast_vote(self, ctx: ReplicaContext, vote: Vote) -> None:
        """ICC has no fast path; fast votes are ignored (Banyan overrides)."""

    # ------------------------------------------------------------------ #
    # Notarization
    # ------------------------------------------------------------------ #

    def _try_notarizations(self, ctx: ReplicaContext, round_k: int) -> None:
        tracker = self._notarization_tracker(round_k)
        state = self._round(round_k)
        # O(1) exit for the per-vote hot path: nothing new reached the
        # quorum since the last scan, and no reached block is still waiting
        # for its proposal to arrive.
        if (tracker.fired_count() == state.notarization_fired_seen
                and not state.notarization_deferred):
            return
        deferred = False
        for block_id in tracker.reached_blocks():
            if block_id not in self.tree:
                deferred = True
                continue
            if self.tree.is_notarized(block_id):
                continue
            self.tree.mark_notarized(block_id)
            self._on_block_notarized(ctx, round_k, block_id)
        state.notarization_fired_seen = tracker.fired_count()
        state.notarization_deferred = deferred

    def _on_block_notarized(self, ctx: ReplicaContext, round_k: int, block_id: BlockId) -> None:
        self._try_advance(ctx, round_k)
        # Children of this block may now be valid to vote for.
        self._try_notarization_votes(ctx, round_k + 1)

    def _register_notarization(self, ctx: ReplicaContext, notarization: Notarization) -> None:
        self._notarization_tracker(notarization.round).add_voters(
            notarization.block_id, notarization.voters
        )
        self._try_notarizations(ctx, notarization.round)

    # ------------------------------------------------------------------ #
    # Round advancement
    # ------------------------------------------------------------------ #

    def _advance_candidates(self, round_k: int) -> List[Block]:
        """Blocks that allow the replica to move to the next round."""
        return self.tree.notarized_at_round(round_k)

    def _can_advance(self, round_k: int) -> bool:
        return bool(self._advance_candidates(round_k))

    def _try_advance(self, ctx: ReplicaContext, round_k: int) -> None:
        if round_k != self.current_round:
            return
        state = self._round(round_k)
        if state.advanced or not state.entered or not self._can_advance(round_k):
            return
        block = min(self._advance_candidates(round_k), key=lambda b: (b.rank, b.id))
        state.advanced = True
        if self.delay_estimator is not None:
            # Remark 4.2: learn the delay bound from how long rounds actually
            # take.  A round won by a non-leader block means the leader was
            # slow or faulty, so the estimate backs off instead.
            if block.rank == 0:
                self.delay_estimator.observe_round(ctx.now() - state.t0)
            else:
                self.delay_estimator.observe_timeout()
        self._broadcast_round_certificates(ctx, round_k, block)
        if not state.finalization_vote_sent and state.notarization_voted <= {block.id}:
            state.finalization_vote_sent = True
            vote = self._make_vote(VoteKind.FINALIZATION, round_k, block.id)
            ctx.broadcast(VoteMessage(votes=(vote,), sender=self.replica_id))
        self.current_round = round_k + 1
        self._enter_round(ctx, round_k + 1)

    def _broadcast_round_certificates(self, ctx: ReplicaContext, round_k: int, block: Block) -> None:
        """Broadcast the notarization of the block we advance with."""
        state = self._round(round_k)
        if block.id in state.notarization_broadcast:
            return
        state.notarization_broadcast.add(block.id)
        notarization = self._notarization_for(block)
        if notarization is not None:
            ctx.broadcast(CertificateMessage(certificate=notarization, sender=self.replica_id))

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #

    def _try_slow_finalization(self, ctx: ReplicaContext, round_k: int, block_id: BlockId) -> None:
        if not self._finalization_tracker(round_k).reached(block_id):
            return
        self._finalize(ctx, round_k, block_id, kind="slow")

    def _handle_certificate(self, ctx: ReplicaContext, message: CertificateMessage) -> None:
        certificate = message.certificate
        if certificate is None:
            return
        if isinstance(certificate, Notarization):
            if certificate.verify(None, self._notarization_quorum):
                self._register_notarization(ctx, certificate)
        elif isinstance(certificate, Finalization):
            if certificate.verify(None, self._finalization_quorum):
                self._finalization_tracker(certificate.round).add_voters(
                    certificate.block_id, certificate.voters
                )
                self._finalize(ctx, certificate.round, certificate.block_id, kind="slow")

    def _finalize(self, ctx: ReplicaContext, round_k: int, block_id: BlockId, kind: str) -> None:
        """Explicitly finalize ``block_id`` and output the chain up to it."""
        if round_k <= self.k_max:
            return
        if block_id not in self.tree:
            self._pending_finalizations[block_id] = kind
            return
        block = self.tree.block(block_id)
        try:
            path = self.tree.chain_to(block_id)
        except Exception:
            self._pending_finalizations[block_id] = kind
            return
        self._pending_finalizations.pop(block_id, None)
        self._broadcast_finalization(ctx, round_k, block_id, kind)
        segment = [b for b in path if b.round > self.k_max]
        for b in segment:
            self.tree.mark_notarized(b.id)
            self.tree.mark_finalized(b.id)
        appended = self.chain.append_segment(segment)
        if appended:
            ctx.commit(appended, finalization_kind=kind)
        self.k_max = block.round
        # Explicit finalization of a later round also lets us advance if the
        # slow path stalled (catch-up after asynchrony).
        self._try_advance(ctx, self.current_round)

    def _broadcast_finalization(self, ctx: ReplicaContext, round_k: int,
                                block_id: BlockId, kind: str) -> None:
        voters = self._finalization_tracker(round_k).voters(block_id)
        if not voters:
            return
        finalization = Finalization(round=round_k, block_id=block_id, voters=voters)
        ctx.broadcast(CertificateMessage(certificate=finalization, sender=self.replica_id))

    def _try_pending_finalizations(self, ctx: ReplicaContext) -> None:
        for block_id, kind in list(self._pending_finalizations.items()):
            block = self.tree.get(block_id)
            if block is not None:
                self._finalize(ctx, block.round, block_id, kind)
