"""The protocol interface and shared parameters.

Every protocol in this repository is a *sans-io* state machine implementing
:class:`Protocol`: it is driven exclusively through ``on_start``,
``on_message``, and ``on_timer`` callbacks and acts on the world only through
the :class:`repro.runtime.context.ReplicaContext` it receives.  This makes the
same object runnable under the deterministic simulator and the asyncio
runtime, and trivially unit-testable with a fake context.
"""

from __future__ import annotations

import dataclasses
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.keys import KeyRegistry
from repro.runtime.context import ReplicaContext, Timer
from repro.types.blocks import BlockId
from repro.types.messages import Message


@dataclass
class ProtocolParams:
    """Parameters shared by the protocol implementations.

    Attributes:
        n: total number of replicas.
        f: maximum number of Byzantine replicas tolerated.
        p: Banyan's fast-path parameter ``p* ∈ [1, f]`` — the number of
            replicas whose cooperation is *not* needed for the fast path
            (ignored by the baselines).
        rank_delay: the per-rank delay ``2Δ`` used for both the proposal delay
            ``Δ_prop(r) = 2Δ·r`` and the notarization delay
            ``Δ_notary(r) = 2Δ·r`` (Section 4), in seconds.
        round_timeout: view/epoch timeout used by HotStuff and Streamlet, and
            as the crash-fault recovery timeout, in seconds.
        payload_size: logical payload size of proposed blocks, in bytes.
        sign_messages: attach and verify (simulated) signatures.  Disabled by
            default in benchmarks because it only adds constant CPU cost.
        relay_proposals: forward proposals that extend the tip of the chain
            (the Bamboo improvement described in Section 9.1).
        adaptive_delays: adaptively adjust the per-rank delay from observed
            round durations instead of treating ``rank_delay`` as a fixed
            bound (Remark 4.2); ``rank_delay`` is then only the initial value.
        seed: seed for leader permutations when a seeded beacon is used.
    """

    n: int
    f: int
    p: int = 1
    rank_delay: float = 0.4
    round_timeout: float = 3.0
    payload_size: int = 0
    sign_messages: bool = False
    relay_proposals: bool = True
    adaptive_delays: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.f < 0:
            raise ValueError("f must be non-negative")
        if self.p < 0:
            raise ValueError("p must be non-negative")
        if self.rank_delay < 0 or self.round_timeout < 0:
            raise ValueError("delays must be non-negative")

    # ------------------------------------------------------------------ #
    # Quorum arithmetic
    # ------------------------------------------------------------------ #

    @property
    def icc_quorum(self) -> int:
        """ICC's notarization/finalization quorum, ``n - f`` (Section 4)."""
        return self.n - self.f

    @property
    def banyan_quorum(self) -> int:
        """Banyan's notarization/finalization quorum ``⌈(n+f+1)/2⌉`` (Alg. 2)."""
        return math.ceil((self.n + self.f + 1) / 2)

    @property
    def fast_quorum(self) -> int:
        """Banyan's fast-path quorum ``n - p`` (Definition 6.2)."""
        return self.n - self.p

    @property
    def unlock_threshold(self) -> int:
        """Support strictly above which Definition 7.6 unlocks, ``f + p``."""
        return self.f + self.p

    @property
    def bft_quorum(self) -> int:
        """The classic ``2f + 1``-style quorum, ``n - f`` (used by baselines)."""
        return self.n - self.f

    def validate_resilience(self, require_fast_path: bool = False) -> None:
        """Check the replica-count bound of the paper's model section.

        Raises:
            ValueError: if ``n < max(3f + 2p - 1, 3f + 1)`` (Banyan) or
                ``n < 3f + 1`` (baselines).
        """
        if require_fast_path:
            bound = max(3 * self.f + 2 * self.p - 1, 3 * self.f + 1)
        else:
            bound = 3 * self.f + 1
        if self.n < bound:
            raise ValueError(
                f"n={self.n} violates the resilience bound n >= {bound} "
                f"(f={self.f}, p={self.p})"
            )

    def proposal_delay(self, rank: int) -> float:
        """``Δ_prop(r) = 2Δ·r`` — the delay before a rank-``r`` replica proposes."""
        return self.rank_delay * rank

    def notarization_delay(self, rank: int) -> float:
        """``Δ_notary(r) = 2Δ·r`` — the wait before voting for a rank-``r`` block."""
        return self.rank_delay * rank

    # ------------------------------------------------------------------ #
    # Serialization (for experiment plans and result caches)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProtocolParams":
        """Rebuild parameters from :meth:`to_dict` output.

        Unknown keys are ignored so caches written by newer versions with
        additional fields still load.
        """
        names = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})


class Protocol(ABC):
    """Sans-io protocol state machine.

    Concrete protocols additionally expose two attributes used by the
    measurement harness:

    * ``proposal_times`` — mapping block id → time the replica proposed it;
    * ``name`` — human-readable protocol name.
    """

    #: Human-readable protocol name; overridden by subclasses.
    name = "abstract"

    def __init__(self, replica_id: int, params: ProtocolParams,
                 registry: Optional[KeyRegistry] = None) -> None:
        self.replica_id = replica_id
        self.params = params
        self.registry = registry
        #: Block id → time this replica proposed the block (for latency metrics).
        self.proposal_times: Dict[BlockId, float] = {}

    @abstractmethod
    def on_start(self, ctx: ReplicaContext) -> None:
        """Called once when the replica starts."""

    @abstractmethod
    def on_message(self, ctx: ReplicaContext, sender: int, message: Message) -> None:
        """Called for every delivered message."""

    def on_messages(self, ctx: ReplicaContext, batch) -> None:
        """Called with a batch of same-instant deliveries to this replica.

        The simulator's batched dispatch fuses consecutive deliveries that
        arrive at the same simulation time into one call; ``batch`` is a
        list of ``(sender, message)`` pairs in the exact order the scalar
        loop would have delivered them.  The default simply replays them
        through :meth:`on_message`, so protocols only override this when a
        batch can be handled cheaper than k scalar calls (e.g. tallying k
        quorum votes in one pass) — and any override must leave the
        replica in the byte-identical state the per-message replay would
        produce, including the order of any sends it triggers.
        """
        on_message = self.on_message
        for sender, message in batch:
            on_message(ctx, sender, message)

    @abstractmethod
    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        """Called when a previously armed timer fires."""
