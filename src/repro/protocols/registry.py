"""Protocol registry: build a full replica set for a named protocol.

The evaluation harness, benchmarks, and CLI select protocols by name
(``"banyan"``, ``"icc"``, ``"hotstuff"``, ``"streamlet"``).  This module maps
names to factories and builds the ``{replica_id: Protocol}`` dictionary the
runtime expects, wiring in a shared beacon, key registry, and payload source.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.beacon import Beacon, RoundRobinBeacon
from repro.crypto.keys import KeyRegistry
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.icc import ICCReplica
from repro.protocols.streamlet import StreamletReplica
from repro.smr.mempool import PayloadSource

#: A protocol factory builds one replica.
ProtocolFactory = Callable[..., Protocol]

_REGISTRY: Dict[str, ProtocolFactory] = {
    "icc": ICCReplica,
    "hotstuff": HotStuffReplica,
    "streamlet": StreamletReplica,
}


def _ensure_core_registered() -> None:
    """Register the Banyan protocol lazily.

    ``repro.core`` imports the protocol base classes from this package, so
    importing it at module load time would be circular; the registry resolves
    it on first use instead.
    """
    if "banyan" not in _REGISTRY:
        from repro.core.banyan import BanyanReplica

        _REGISTRY["banyan"] = BanyanReplica


def available_protocols() -> List[str]:
    """Return the names of all registered protocols."""
    _ensure_core_registered()
    return sorted(_REGISTRY)


def protocol_factory(name: str) -> ProtocolFactory:
    """Return the factory for ``name``.

    Raises:
        KeyError: if the protocol is unknown.
    """
    _ensure_core_registered()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        ) from exc


def register_protocol(name: str, factory: ProtocolFactory) -> None:
    """Register an additional protocol factory (e.g. a Byzantine variant)."""
    _REGISTRY[name] = factory


def create_replicas(
    name: str,
    params: ProtocolParams,
    beacon: Optional[Beacon] = None,
    payload_source: Optional[PayloadSource] = None,
    registry: Optional[KeyRegistry] = None,
    replica_ids: Optional[Iterable[int]] = None,
    overrides: Optional[Dict[int, ProtocolFactory]] = None,
) -> Dict[int, Protocol]:
    """Build a full replica set for protocol ``name``.

    Args:
        name: registered protocol name.
        params: shared protocol parameters.
        beacon: leader-rotation beacon (defaults to round-robin over
            ``0..n-1``).
        payload_source: workload payload source (defaults to the parameter's
            payload size).
        registry: PKI; created automatically when ``params.sign_messages``.
        replica_ids: ids to instantiate (defaults to ``0..n-1``).
        overrides: per-replica factory overrides, used to plant Byzantine or
            otherwise misbehaving replicas.

    Returns:
        Mapping replica id → protocol instance, ready for a runtime.
    """
    ids = list(replica_ids) if replica_ids is not None else list(range(params.n))
    beacon = beacon or RoundRobinBeacon(ids)
    payload_source = payload_source or PayloadSource(params.payload_size)
    if registry is None and params.sign_messages:
        registry = KeyRegistry.for_replicas(params.n)
    factory = protocol_factory(name)
    overrides = overrides or {}
    replicas: Dict[int, Protocol] = {}
    for replica_id in ids:
        chosen = overrides.get(replica_id, factory)
        replicas[replica_id] = chosen(
            replica_id=replica_id,
            params=params,
            beacon=beacon,
            payload_source=payload_source,
            registry=registry,
        )
    return replicas
