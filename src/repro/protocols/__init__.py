"""Protocol implementations: the Banyan baselines and the shared interface.

* :mod:`repro.protocols.base` — the sans-io :class:`Protocol` interface and
  :class:`ProtocolParams` shared by all protocols.
* :mod:`repro.protocols.icc` — Internet Computer Consensus (the slow path
  Banyan builds on; Section 4 of the paper).
* :mod:`repro.protocols.hotstuff` — chained HotStuff with a round-robin
  pacemaker.
* :mod:`repro.protocols.streamlet` — Streamlet.
* :mod:`repro.protocols.registry` — name → factory registry used by the
  evaluation harness and the CLI.

The paper's own contribution, Banyan, lives in :mod:`repro.core`.
"""

from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.icc import ICCReplica
from repro.protocols.registry import available_protocols, create_replicas, protocol_factory
from repro.protocols.streamlet import StreamletReplica

__all__ = [
    "HotStuffReplica",
    "ICCReplica",
    "Protocol",
    "ProtocolParams",
    "StreamletReplica",
    "available_protocols",
    "create_replicas",
    "protocol_factory",
]
