"""Fluid (aggregated-flow) client workload for million-user simulations.

The exact workload model (:mod:`repro.workload.clients`) schedules one
simulator event per transaction: at 1e6 clients and WAN rates, submission
events alone dwarf the protocol traffic and the event loop spends its time
bookkeeping arrivals instead of consensus.  The fluid model replaces the
per-transaction stream with aggregated *flows*: once per tick it draws the
number of transactions that arrived at each replica during the tick from a
Poisson distribution matched to the arrival process's instantaneous rate,
and appends a single batch ``[count, submit_mid]`` to that replica's
:class:`FlowQueue`.  One event per (replica, tick) regardless of how many
million clients are behind it.

What is preserved versus the exact model:

* **offered load** — per-tick counts are Poisson with mean
  ``rate(t_mid) * tick / n_replicas``, so the aggregate arrival process has
  the same mean (and, for Poisson arrivals, the same distribution, by
  Poisson thinning/superposition).  Time-varying processes (diurnal,
  flash-crowd) are sampled at the tick midpoint.
* **backpressure** — flow queues enforce the same per-replica capacity
  (transaction count and optional byte limit) as the exact mempools;
  overflow is counted as dropped.
* **proposal building** — :class:`FluidPayloadSource` drains the
  proposer's flow up to the block-byte budget, splitting the head batch if
  needed, exactly as :meth:`repro.smr.mempool.Mempool.drain_batch` does
  for individual transactions.
* **reclaim semantics** — batches drained into a proposal that never
  commits return to the *front* of the flow once the chain has committed
  past the proposal's round (the same gate as
  :meth:`repro.workload.clients.ClientPool.reclaim_uncommitted`).
* **latency accounting** — each committed batch contributes one latency
  sample ``commit_time - submit_mid`` with weight ``count``; the resulting
  :class:`repro.smr.metrics.WorkloadMetrics` carries ``latency_weights``
  and its percentiles are transaction-weighted.

What is approximated: individual submit times collapse to the tick
midpoint (a ±tick/2 error per transaction — keep ``tick`` well below the
commit latency being measured), all transactions share the configured
logical size, and arrivals of non-Poisson processes acquire per-tick
Poisson variance.  ``tests/test_fluid.py`` pins the exact-vs-fluid
agreement on overlapping configurations.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.runtime.simulator import CommitRecord, Simulation
from repro.smr.metrics import OccupancySample, WorkloadMetrics
from repro.workload.arrivals import ArrivalProcess

#: Switch-over mean between Knuth's product method (exact, O(mean) draws)
#: and the rounded-normal approximation (O(1), relative error < 1% at this
#: scale) for Poisson sampling.
_POISSON_NORMAL_CUTOVER = 30.0


def poisson_sample(rng: random.Random, mean: float) -> int:
    """Draw a Poisson-distributed count with the given mean.

    ``random.Random`` has no Poisson sampler and the core library stays
    dependency-free, so: Knuth's product-of-uniforms method for small
    means, and a rounded normal (clamped at zero) above
    ``_POISSON_NORMAL_CUTOVER``, where the normal approximation's error is
    far below the workload's own sampling noise.
    """
    if mean <= 0.0:
        return 0
    if mean < _POISSON_NORMAL_CUTOVER:
        threshold = math.exp(-mean)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count
    value = int(round(rng.gauss(mean, math.sqrt(mean))))
    return value if value > 0 else 0


class FlowQueue:
    """A replica's pending transactions as aggregated FIFO batches.

    Each batch is a mutable ``[count, submit_mid]`` pair: ``count``
    same-size transactions that arrived around simulation time
    ``submit_mid``.  All byte math derives from the uniform ``tx_size``,
    so occupancy and drain budgeting are O(1) in the number of
    transactions (only O(batches) in the worst case for a drain).

    Args:
        tx_size: logical size in bytes of every transaction in the flow.
        capacity: maximum pending transaction count (backpressure bound).
    """

    __slots__ = ("tx_size", "_capacity", "_batches", "_count")

    def __init__(self, tx_size: int, capacity: int) -> None:
        if tx_size <= 0:
            raise ValueError("tx_size must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.tx_size = tx_size
        self._capacity = capacity
        self._batches: Deque[List] = deque()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def total_bytes(self) -> int:
        """Total pending bytes (O(1))."""
        return self._count * self.tx_size

    @property
    def capacity(self) -> int:
        """Maximum pending transaction count."""
        return self._capacity

    def inject(self, count: int, submit_mid: float) -> int:
        """Append a batch of ``count`` arrivals; returns how many fit.

        The overflow beyond capacity is shed (the caller counts it as
        dropped), mirroring :meth:`repro.smr.mempool.Mempool.add` returning
        ``False`` at a full pool.
        """
        if count <= 0:
            return 0
        space = self._capacity - self._count
        accepted = count if count <= space else space
        if accepted > 0:
            self._batches.append([accepted, submit_mid])
            self._count += accepted
        return accepted

    def drain(self, max_bytes: int) -> Tuple[List[List], int, int]:
        """Pop up to ``max_bytes`` worth of transactions, FIFO.

        Returns ``(groups, count, total_bytes)`` where each group is a
        ``[count, submit_mid]`` batch (the head batch is split if only part
        of it fits).  The groups list is what
        :meth:`FluidClientPool.register_payload` tracks for commit
        matching.
        """
        budget = max_bytes // self.tx_size
        if budget <= 0:
            return [], 0, 0
        batches = self._batches
        groups: List[List] = []
        drained = 0
        while batches and budget > 0:
            head = batches[0]
            head_count = head[0]
            if head_count <= budget:
                batches.popleft()
                groups.append(head)
                drained += head_count
                budget -= head_count
            else:
                groups.append([budget, head[1]])
                head[0] = head_count - budget
                drained += budget
                budget = 0
        self._count -= drained
        return groups, drained, drained * self.tx_size

    def requeue(self, groups: List[List]) -> None:
        """Push drained groups back to the *front* of the flow, in order.

        Capacity is bypassed: the transactions were already accepted once
        and dropping them here would lose them (same contract as
        :meth:`repro.smr.mempool.Mempool.requeue`).
        """
        for group in reversed(groups):
            self._batches.appendleft(group)
            self._count += group[0]


class FluidClientPool:
    """Aggregated-flow counterpart of :class:`~repro.workload.clients.ClientPool`.

    Models an arbitrarily large open-loop client population as per-replica
    fluid flows: one injection event per (replica, tick) instead of one per
    transaction.  Exposes the same seams the experiment harness uses —
    ``attach(simulation, stop_time)``, ``payload_source(...)``,
    ``metrics(duration, warmup)`` — so :func:`repro.eval.experiment.run_experiment`
    treats both pools identically.

    Args:
        arrivals: arrival process whose instantaneous ``rate(now)`` (tx/s,
            aggregate across the population) drives per-tick injections.
        num_clients: modeled population size (metadata only — clients are
            not individually simulated).
        tx_size: logical size in bytes of each transaction.
        mempool_capacity: per-replica pending-transaction limit.
        mempool_max_bytes: optional per-replica pending-byte limit
            (tightens the count limit via the uniform transaction size).
        sample_interval: occupancy sampling period in seconds (``0``
            disables sampling).
        seed: RNG seed for the per-tick Poisson draws.
        tick: injection period in seconds; also the submit-time resolution
            of latency samples.  Keep well below the commit latency.
    """

    def __init__(
        self,
        arrivals: ArrivalProcess,
        num_clients: int = 8,
        tx_size: int = 256,
        mempool_capacity: int = 10_000,
        mempool_max_bytes: Optional[int] = None,
        sample_interval: float = 0.5,
        seed: int = 0,
        tick: float = 0.1,
    ) -> None:
        if arrivals is None:
            raise ValueError("fluid workload requires an arrival process (open loop)")
        if tick <= 0:
            raise ValueError("tick must be positive")
        if tx_size <= 0:
            raise ValueError("tx_size must be positive")
        if mempool_capacity <= 0:
            raise ValueError("mempool_capacity must be positive")
        self.arrivals = arrivals
        self.num_clients = num_clients
        self.tx_size = tx_size
        self.tick = tick
        self.sample_interval = sample_interval
        capacity = mempool_capacity
        if mempool_max_bytes is not None:
            capacity = min(capacity, max(1, mempool_max_bytes // tx_size))
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._flows: Dict[int, FlowQueue] = {}
        self._simulation: Optional[Simulation] = None
        self._stop_time: Optional[float] = None
        #: payload bytes → (drained groups, proposal round); removed on
        #: first commit or reclaim, so bounded by in-flight proposals.
        self._payloads: Dict[bytes, Tuple[List[List], int]] = {}
        #: proposer → unresolved (payload, round) proposals.
        self._in_flight: Dict[int, List[Tuple[bytes, int]]] = {}
        #: Highest committed round observed; gates reclaiming exactly as in
        #: the exact pool.
        self._max_committed_round = 0
        #: per-tick (submit_mid, submitted, dropped) tallies — kept
        #: per-tick (not just totals) so warm-up filtering works.
        self._tick_log: List[Tuple[float, int, int]] = []
        #: committed batches as (latency, count, submit_mid).
        self._committed_groups: List[Tuple[float, int, float]] = []
        self._submitted = 0
        self._committed = 0
        self.dropped = 0
        self._occupancy: List[OccupancySample] = []

    # ------------------------------------------------------------------ #
    # Flows and proposal building (used by FluidPayloadSource)
    # ------------------------------------------------------------------ #

    @property
    def is_open_loop(self) -> bool:
        """Always ``True``: the fluid model is open-loop by construction."""
        return True

    @property
    def submitted(self) -> int:
        """Transactions injected so far (including dropped ones)."""
        return self._submitted

    @property
    def committed(self) -> int:
        """Transactions observed committed so far."""
        return self._committed

    def flow(self, replica_id: int) -> FlowQueue:
        """Return (creating on first use) the flow queue of ``replica_id``."""
        flow = self._flows.get(replica_id)
        if flow is None:
            flow = FlowQueue(self.tx_size, self._capacity)
            self._flows[replica_id] = flow
        return flow

    def register_payload(self, payload: bytes, groups: List[List],
                         proposer: int, round: int) -> None:
        """Remember which flow batches a proposal payload carries."""
        self._payloads[payload] = (groups, round)
        self._in_flight.setdefault(proposer, []).append((payload, round))

    def reclaim_uncommitted(self, proposer: int) -> int:
        """Re-queue the proposer's abandoned batches; returns the tx count.

        Same gate as the exact pool: a proposal is only abandoned once the
        chain has committed at or past its round without including it.
        """
        batches = self._in_flight.get(proposer)
        if not batches:
            return 0
        undecided: List[Tuple[bytes, int]] = []
        reclaimed = 0
        for payload, round in batches:
            entry = self._payloads.get(payload)
            if entry is None:
                continue  # committed: resolved
            if self._max_committed_round < round:
                undecided.append((payload, round))
                continue
            groups, _ = self._payloads.pop(payload)
            self.flow(proposer).requeue(groups)
            reclaimed += sum(group[0] for group in groups)
        if undecided:
            self._in_flight[proposer] = undecided
        else:
            self._in_flight.pop(proposer, None)
        return reclaimed

    def payload_source(self, max_block_bytes: int = 65_536) -> "FluidPayloadSource":
        """Build the payload source that drains this pool's flows."""
        return FluidPayloadSource(self, max_block_bytes=max_block_bytes)

    # ------------------------------------------------------------------ #
    # Attachment and event scheduling
    # ------------------------------------------------------------------ #

    def attach(self, simulation: Simulation, stop_time: float) -> None:
        """Wire the pool into ``simulation`` and start injecting flows."""
        if self._simulation is not None:
            raise RuntimeError("client pool is already attached to a simulation")
        if stop_time <= 0:
            raise ValueError("stop_time must be positive")
        self._simulation = simulation
        self._stop_time = stop_time
        simulation.add_commit_listener(self._on_commit)
        if simulation.now + self.tick <= stop_time:
            simulation.schedule_external(self.tick, self._on_tick)
        if self.sample_interval > 0:
            simulation.schedule_external(self.sample_interval, self._sample_occupancy)

    def _on_tick(self) -> None:
        """Inject one tick's worth of aggregated arrivals at every replica."""
        assert self._simulation is not None
        now = self._simulation.now
        mid = now - self.tick / 2.0
        replica_ids = self._simulation.replica_ids
        mean_per_replica = self.arrivals.rate(mid) * self.tick / len(replica_ids)
        rng = self._rng
        submitted = 0
        dropped = 0
        for replica_id in replica_ids:
            count = poisson_sample(rng, mean_per_replica)
            if count == 0:
                continue
            accepted = self.flow(replica_id).inject(count, mid)
            submitted += count
            dropped += count - accepted
        if submitted:
            self._submitted += submitted
            self.dropped += dropped
            self._tick_log.append((mid, submitted, dropped))
        if now + self.tick <= self._stop_time:
            self._simulation.schedule_external(self.tick, self._on_tick)

    # ------------------------------------------------------------------ #
    # Commit tracking
    # ------------------------------------------------------------------ #

    def _on_commit(self, record: CommitRecord) -> None:
        if record.block.round > self._max_committed_round:
            self._max_committed_round = record.block.round
        entry = self._payloads.pop(record.block.payload, None)
        if entry is None:
            return
        groups, _round = entry
        commit_time = record.commit_time
        for count, submit_mid in groups:
            self._committed_groups.append(
                (commit_time - submit_mid, count, submit_mid)
            )
            self._committed += count

    def _sample_occupancy(self) -> None:
        assert self._simulation is not None
        per_replica = {rid: len(flow) for rid, flow in sorted(self._flows.items())}
        self._occupancy.append(
            OccupancySample(
                time=self._simulation.now,
                transactions=sum(per_replica.values()),
                total_bytes=sum(flow.total_bytes for flow in self._flows.values()),
                per_replica=per_replica,
            )
        )
        if self._simulation.now + self.sample_interval <= self._stop_time:
            self._simulation.schedule_external(self.sample_interval, self._sample_occupancy)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def metrics(self, duration: float, warmup: float = 0.0) -> WorkloadMetrics:
        """Build the weighted :class:`WorkloadMetrics` of the run so far.

        Batches are filtered by their *submit* midpoint against ``warmup``,
        matching the exact pool's per-transaction filter; latency samples
        carry their transaction counts as weights.
        """
        submitted = 0
        dropped = 0
        for mid, tick_submitted, tick_dropped in self._tick_log:
            if mid >= warmup:
                submitted += tick_submitted
                dropped += tick_dropped
        latencies: List[float] = []
        weights: List[float] = []
        committed = 0
        for latency, count, submit_mid in self._committed_groups:
            if submit_mid >= warmup:
                latencies.append(latency)
                weights.append(float(count))
                committed += count
        return WorkloadMetrics(
            duration=max(duration, 1e-9),
            submitted=submitted,
            committed=committed,
            dropped=dropped,
            committed_tx_bytes=committed * self.tx_size,
            latencies=latencies,
            latency_weights=weights,
            occupancy=list(self._occupancy),
        )


class FluidPayloadSource:
    """Builds block payloads from the proposer's pending flow.

    The fluid counterpart of
    :class:`repro.workload.payloads.MempoolPayloadSource`: drains the
    proposer's :class:`FlowQueue` up to the block-byte budget and registers
    the drained batches for commit matching.  The payload bytes are a short
    unique tag (the per-source sequence number keeps tags distinct even if
    a Byzantine proposer reuses a round); the logical size carried by the
    block is the drained transaction mass, which is what the bandwidth
    model charges.

    Args:
        pool: the fluid pool owning the per-replica flows.
        max_block_bytes: byte budget per proposal; must fit at least one
            transaction or proposals could never drain the flows.
    """

    def __init__(self, pool: FluidClientPool, max_block_bytes: int = 65_536) -> None:
        if max_block_bytes < pool.tx_size:
            raise ValueError("max_block_bytes must fit at least one transaction")
        self.pool = pool
        self.max_block_bytes = max_block_bytes
        self._seq = 0

    def payload_for(self, round: int, proposer: int) -> Tuple[bytes, int]:
        """Return ``(payload_bytes, logical_size)`` for a proposal."""
        self.pool.reclaim_uncommitted(proposer)
        groups, count, total_bytes = self.pool.flow(proposer).drain(self.max_block_bytes)
        if count == 0:
            return f"fluid:empty:r{round}:p{proposer}".encode("utf-8"), 0
        tag = f"fluid:r{round}:p{proposer}:{self._seq}".encode("utf-8")
        self._seq += 1
        self.pool.register_payload(tag, groups, proposer, round)
        return tag, total_bytes
