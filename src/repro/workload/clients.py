"""Client pools: open- and closed-loop traffic injected into a simulation.

:class:`ClientPool` models the population of clients that submit
transactions to the replicated service.  It plugs into a
:class:`repro.runtime.simulator.Simulation` through two seams:

* **submission** — transaction-submission events are scheduled on the
  simulator's event queue via :meth:`Simulation.schedule_external`, so
  client traffic interleaves deterministically with protocol messages;
* **completion** — a commit listener watches every replica's commit stream
  and matches committed block payloads back to the pool's transactions,
  yielding true end-to-end submit→commit latency.

Two client models are supported:

* **open loop** — an :class:`repro.workload.arrivals.ArrivalProcess` drives
  submissions regardless of commit progress (offered load is external, the
  system must absorb it or shed it via mempool backpressure);
* **closed loop** — a fixed population of clients each submit one
  transaction, wait for it to commit, think for an exponentially
  distributed time, and submit the next (offered load is self-clocked).

Each transaction is routed to one replica's mempool round-robin — the
"clients talk to their local replica" deployment — so a crashed replica's
pending transactions sit in its mempool exactly as they would in practice
(no client-side retry against another replica is modelled; such
transactions stay ``pending`` in the metrics).  Transactions drained into a
proposal that never commits are not lost either: the next time the same
replica proposes, its previous uncommitted batch is re-queued at the front
of its mempool (see :meth:`ClientPool.reclaim_uncommitted`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.runtime.simulator import CommitRecord, Simulation
from repro.smr.mempool import Mempool
from repro.smr.metrics import OccupancySample, WorkloadMetrics
from repro.workload.arrivals import ArrivalProcess
from repro.workload.transactions import TxRecord, encode_transaction

#: Minimum delay before a closed-loop client retries a rejected submission.
#: A zero-delay retry at a full mempool would re-enqueue an event at the
#: same simulation timestamp forever, starving the (later) proposal events
#: that would drain the pool — a livelock.  The floor guarantees time
#: advances between retries even with ``think_time = 0``.
MIN_RETRY_DELAY = 1e-3


class ClientPool:
    """A population of clients submitting transactions to the replica set.

    Args:
        arrivals: open-loop arrival process; ``None`` selects the
            closed-loop model.
        num_clients: number of distinct clients.  In the closed-loop model
            this is the concurrency (each client has one transaction in
            flight); in the open-loop model it only labels submissions.
        think_time: closed-loop mean think time between a commit and the
            client's next submission (exponentially distributed; ``0`` means
            immediate resubmission).
        tx_size: logical size in bytes of each encoded transaction.
        mempool_capacity: per-replica mempool transaction-count limit.
        mempool_max_bytes: optional per-replica mempool byte limit.
        sample_interval: period of the mempool occupancy probe in seconds
            (``0`` disables sampling).
        seed: RNG seed for arrivals, think times, and client labelling.
    """

    def __init__(
        self,
        arrivals: Optional[ArrivalProcess] = None,
        num_clients: int = 8,
        think_time: float = 0.5,
        tx_size: int = 256,
        mempool_capacity: int = 10_000,
        mempool_max_bytes: Optional[int] = None,
        sample_interval: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if tx_size <= 0:
            raise ValueError("tx_size must be positive")
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self.arrivals = arrivals
        self.num_clients = num_clients
        self.think_time = think_time
        self.tx_size = tx_size
        self.sample_interval = sample_interval
        self._mempool_capacity = mempool_capacity
        self._mempool_max_bytes = mempool_max_bytes
        self._rng = random.Random(seed)
        self._mempools: Dict[int, Mempool] = {}
        self._simulation: Optional[Simulation] = None
        self._stop_time: Optional[float] = None
        self._next_tx_id = 0
        self._next_client = 0
        self._next_replica_index = 0
        #: tx id → lifecycle record.
        self._records: Dict[int, TxRecord] = {}
        #: block payload bytes → ids of the transactions batched into it.
        #: Entries are removed on first commit (or when reclaimed), so the
        #: map stays bounded by the number of in-flight proposals.
        self._payload_txs: Dict[bytes, Tuple[int, ...]] = {}
        #: proposer → unresolved proposed batches as (payload, tx ids,
        #: round); entries leave the list when committed or reclaimed.
        self._in_flight: Dict[int, List[Tuple[bytes, Tuple[int, ...], int]]] = {}
        #: Highest block round observed committed at any replica; gates
        #: reclaiming (a proposal is only abandoned once the chain has
        #: committed past its round without including it).
        self._max_committed_round = 0
        self._committed: set = set()
        self._occupancy: List[OccupancySample] = []
        self.dropped = 0

    # ------------------------------------------------------------------ #
    # Mempools and proposal building (used by MempoolPayloadSource)
    # ------------------------------------------------------------------ #

    @property
    def is_open_loop(self) -> bool:
        """Whether this pool runs the open-loop (arrival-driven) model."""
        return self.arrivals is not None

    @property
    def submitted(self) -> int:
        """Transactions submitted so far (including dropped ones)."""
        return len(self._records)

    @property
    def committed(self) -> int:
        """Transactions observed committed so far (deduplicated)."""
        return len(self._committed)

    def mempool(self, replica_id: int) -> Mempool:
        """Return (creating on first use) the mempool of ``replica_id``."""
        pool = self._mempools.get(replica_id)
        if pool is None:
            pool = Mempool(max_size=self._mempool_capacity,
                           max_bytes=self._mempool_max_bytes)
            self._mempools[replica_id] = pool
        return pool

    def register_payload(self, payload: bytes, tx_ids: Tuple[int, ...],
                         proposer: int, round: int) -> None:
        """Remember which transactions a proposal payload carries."""
        self._payload_txs[payload] = tx_ids
        self._in_flight.setdefault(proposer, []).append((payload, tx_ids, round))

    def reclaim_uncommitted(self, proposer: int) -> int:
        """Re-queue the proposer's *abandoned* batches, if any.

        A proposal can fail to commit (leader crash mid-round, losing rank,
        asynchrony), and its transactions were already drained from the
        mempool.  Called right before the proposer builds its next payload,
        this pushes the still-uncommitted transactions of its abandoned
        proposals back to the front of its mempool so they are re-proposed
        instead of silently lost.  Returns how many were re-queued.

        A batch counts as abandoned only once some replica has committed a
        block at or past the proposal's round without it — before that the
        block may simply be finalizing late (slow path, lagging commits),
        and reclaiming it would commit the same transactions twice.  Batches
        still under that gate stay tracked for the proposer's next turn.
        """
        batches = self._in_flight.get(proposer)
        if not batches:
            return 0
        undecided: List[Tuple[bytes, Tuple[int, ...], int]] = []
        reclaimed: List[int] = []
        for payload, tx_ids, round in batches:
            stale = [tx_id for tx_id in tx_ids if tx_id not in self._committed]
            if not stale:
                continue  # fully committed: resolved
            if self._max_committed_round < round:
                undecided.append((payload, tx_ids, round))
                continue
            self._payload_txs.pop(payload, None)
            reclaimed.extend(stale)
        if undecided:
            self._in_flight[proposer] = undecided
        else:
            self._in_flight.pop(proposer, None)
        if not reclaimed:
            return 0
        self.mempool(proposer).requeue(
            encode_transaction(tx_id, self._records[tx_id].client_id,
                               self._records[tx_id].size)
            for tx_id in reclaimed
        )
        return len(reclaimed)

    def payload_source(self, max_block_bytes: int = 65_536):
        """Build the payload source that drains this pool's mempools.

        Mirrors :meth:`repro.workload.fluid.FluidClientPool.payload_source`
        so the experiment harness builds either pool's source through the
        same seam.
        """
        # Imported lazily: payloads.py imports this module.
        from repro.workload.payloads import MempoolPayloadSource

        return MempoolPayloadSource(self, max_block_bytes=max_block_bytes)

    # ------------------------------------------------------------------ #
    # Attachment and event scheduling
    # ------------------------------------------------------------------ #

    def attach(self, simulation: Simulation, stop_time: float) -> None:
        """Wire the pool into ``simulation`` and start generating traffic.

        Args:
            simulation: the simulation to inject submission events into.
            stop_time: simulation time after which no further submissions or
                occupancy samples are scheduled (commits are still tracked).
        """
        if self._simulation is not None:
            raise RuntimeError("client pool is already attached to a simulation")
        if stop_time <= 0:
            raise ValueError("stop_time must be positive")
        self._simulation = simulation
        self._stop_time = stop_time
        simulation.add_commit_listener(self._on_commit)
        if self.is_open_loop:
            self._schedule_next_arrival()
        else:
            for client_id in range(self.num_clients):
                self._schedule_client_submit(client_id, self._think_delay())
        if self.sample_interval > 0:
            simulation.schedule_external(self.sample_interval, self._sample_occupancy)

    def _think_delay(self) -> float:
        if self.think_time <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.think_time)

    def _schedule_next_arrival(self) -> None:
        assert self._simulation is not None and self.arrivals is not None
        delay = self.arrivals.next_interarrival(self._simulation.now, self._rng)
        if self._simulation.now + delay > self._stop_time:
            return
        self._simulation.schedule_external(delay, self._on_arrival)

    def _on_arrival(self) -> None:
        client_id = self._next_client
        self._next_client = (self._next_client + 1) % self.num_clients
        self._submit(client_id)
        self._schedule_next_arrival()

    def _schedule_client_submit(self, client_id: int, delay: float) -> None:
        assert self._simulation is not None
        if self._simulation.now + delay > self._stop_time:
            return
        self._simulation.schedule_external(delay, lambda: self._closed_loop_submit(client_id))

    def _closed_loop_submit(self, client_id: int) -> None:
        accepted = self._submit(client_id)
        if not accepted:
            # The local mempool pushed back; the client retries after
            # another think period instead of deadlocking the loop.
            self._schedule_client_submit(
                client_id, max(self._think_delay(), MIN_RETRY_DELAY)
            )

    def _submit(self, client_id: int) -> bool:
        """Submit one transaction for ``client_id``; returns acceptance."""
        assert self._simulation is not None
        replica_ids = self._simulation.replica_ids
        replica_id = replica_ids[self._next_replica_index % len(replica_ids)]
        self._next_replica_index += 1
        tx_id = self._next_tx_id
        self._next_tx_id += 1
        encoded = encode_transaction(tx_id, client_id, self.tx_size)
        record = TxRecord(
            tx_id=tx_id,
            client_id=client_id,
            replica_id=replica_id,
            size=len(encoded),
            submit_time=self._simulation.now,
        )
        self._records[tx_id] = record
        if not self.mempool(replica_id).add(encoded):
            record.dropped = True
            self.dropped += 1
            return False
        return True

    # ------------------------------------------------------------------ #
    # Commit tracking
    # ------------------------------------------------------------------ #

    def _on_commit(self, record: CommitRecord) -> None:
        if record.block.round > self._max_committed_round:
            self._max_committed_round = record.block.round
        # Every replica commits every block; the first one resolves the
        # payload and the entry is dropped so the map stays bounded by the
        # number of in-flight proposals rather than growing with the chain.
        tx_ids = self._payload_txs.pop(record.block.payload, None)
        if not tx_ids:
            return
        for tx_id in tx_ids:
            if tx_id in self._committed:
                continue
            self._committed.add(tx_id)
            tx = self._records[tx_id]
            tx.commit_time = record.commit_time
            if not self.is_open_loop:
                self._schedule_client_submit(tx.client_id, self._think_delay())

    def _sample_occupancy(self) -> None:
        assert self._simulation is not None
        per_replica = {rid: len(pool) for rid, pool in sorted(self._mempools.items())}
        self._occupancy.append(
            OccupancySample(
                time=self._simulation.now,
                transactions=sum(per_replica.values()),
                total_bytes=sum(pool.total_bytes for pool in self._mempools.values()),
                per_replica=per_replica,
            )
        )
        if self._simulation.now + self.sample_interval <= self._stop_time:
            self._simulation.schedule_external(self.sample_interval, self._sample_occupancy)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def records(self) -> List[TxRecord]:
        """All transaction records in submission order."""
        # tx ids are assigned from a monotonic counter into an
        # insertion-ordered dict, so the values are already in order.
        return list(self._records.values())

    def metrics(self, duration: float, warmup: float = 0.0) -> WorkloadMetrics:
        """Build the :class:`WorkloadMetrics` summary of the run so far.

        Args:
            duration: measured duration in seconds (excluding warm-up), the
                denominator of the goodput figures.
            warmup: transactions *submitted* before this time are excluded
                from all counts and latency percentiles, mirroring the
                warm-up handling of :class:`repro.smr.metrics.RunMetrics`.
                Occupancy samples always cover the full run (the warm-up
                transient is part of the occupancy story).
        """
        records = [record for record in self._records.values()
                   if record.submit_time >= warmup]
        committed = [r for r in records if r.commit_time is not None]
        return WorkloadMetrics(
            duration=max(duration, 1e-9),
            submitted=len(records),
            committed=len(committed),
            dropped=sum(1 for r in records if r.dropped),
            committed_tx_bytes=sum(r.size for r in committed),
            latencies=[r.latency for r in committed],
            occupancy=list(self._occupancy),
        )
