"""Client transactions: identity, wire encoding, and lifecycle tracking.

A client transaction is an opaque byte string from the protocols' point of
view — it travels through a :class:`repro.smr.mempool.Mempool`, into a block
payload, and out of the commit stream.  The workload layer needs to
recognise its own transactions on the way out, so each one is encoded with a
small self-describing header (``tx:<tx_id>:<client_id>:``) padded to the
configured logical size.

:class:`TxRecord` is the submission-side bookkeeping the
:class:`repro.workload.clients.ClientPool` keeps per transaction: when it
was submitted, which replica it was routed to, and when (if ever) it was
first observed committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

_HEADER_PREFIX = b"tx:"
_PAD_BYTE = b"\x00"

#: Upper bound on the encoded size of any transaction with a tiny logical
#: size: prefix + two decimal ids (< 2**63 each, 19 digits) + separators.
#: ``len(encode_transaction(...)) <= max(size, MAX_HEADER_BYTES)`` always
#: holds, which is what block-budget validation must bound against.
MAX_HEADER_BYTES = len(_HEADER_PREFIX) + 19 + 1 + 19 + 1


def encode_transaction(tx_id: int, client_id: int, size: int) -> bytes:
    """Encode a transaction as self-identifying bytes of ``size`` bytes.

    The header carries the transaction and client ids; the rest is zero
    padding up to the logical size.  If ``size`` is smaller than the header,
    the header alone is returned (the transaction is then slightly larger
    than requested — ids must survive the trip through a block payload).
    """
    header = b"%s%d:%d:" % (_HEADER_PREFIX, tx_id, client_id)
    if len(header) >= size:
        return header
    return header + _PAD_BYTE * (size - len(header))


def decode_tx_id(data: bytes) -> Optional[int]:
    """Return the transaction id encoded in ``data``, or ``None``.

    Tolerates arbitrary payload bytes (the synthetic bit-vector workload and
    the ledger examples share the same pipeline), returning ``None`` for
    anything that is not a workload transaction.
    """
    if not data.startswith(_HEADER_PREFIX):
        return None
    parts = data.split(b":", 2)
    if len(parts) < 3:
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


@dataclass
class TxRecord:
    """Lifecycle record of one submitted transaction.

    Attributes:
        tx_id: globally unique transaction id (assigned by the pool).
        client_id: the submitting client.
        replica_id: the replica whose mempool received the transaction.
        size: encoded size in bytes.
        submit_time: simulation time of submission.
        commit_time: simulation time of the first observed commit of a block
            containing the transaction (``None`` while pending).
        dropped: whether the submission was rejected by mempool
            backpressure (such a transaction never commits).
    """

    tx_id: int
    client_id: int
    replica_id: int
    size: int
    submit_time: float
    commit_time: Optional[float] = None
    dropped: bool = False

    @property
    def latency(self) -> Optional[float]:
        """Submit→commit latency in seconds (``None`` while pending)."""
        if self.commit_time is None:
            return None
        return self.commit_time - self.submit_time
