"""Declarative workload configuration for the experiment harness and CLI.

:class:`WorkloadSpec` is the serialisable description of a client workload:
which client model (open or closed loop), which arrival process and rate,
transaction size, block budget, and mempool limits.  The experiment layer
(:mod:`repro.eval.experiment`) turns a spec into a live
:class:`repro.workload.clients.ClientPool` plus
:class:`repro.workload.payloads.MempoolPayloadSource` pair, keeping the
protocol and runtime layers unaware of how traffic is generated.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.workload.arrivals import (
    ArrivalProcess,
    ConstantRate,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.workload.clients import ClientPool
from repro.workload.transactions import MAX_HEADER_BYTES

#: Arrival process names accepted by :attr:`WorkloadSpec.arrival`.
ARRIVAL_KINDS = ("poisson", "constant", "diurnal", "flash-crowd")

#: Client models accepted by :attr:`WorkloadSpec.mode`.
MODES = ("open", "closed")


@dataclass
class WorkloadSpec:
    """Configuration of one client workload.

    Attributes:
        mode: ``"open"`` (arrival-process-driven) or ``"closed"``
            (fixed client population with think times).
        arrival: arrival process kind for the open-loop model, one of
            :data:`ARRIVAL_KINDS`.
        rate: mean arrival rate in tx/s (open loop).
        num_clients: client population size.
        think_time: mean think time in seconds (closed loop).
        tx_size: logical transaction size in bytes.
        max_block_bytes: per-proposal byte budget drained from the mempool.
        mempool_capacity: per-replica mempool transaction-count limit.
        mempool_max_bytes: optional per-replica mempool byte limit.
        sample_interval: mempool occupancy sampling period in seconds.
        seed: workload RNG seed (arrivals, think times).
        period: diurnal cycle length in seconds.
        amplitude: diurnal relative swing in ``[0, 1]``.
        burst_rate: flash-crowd rate during the burst window, in tx/s.
        burst_start: flash-crowd burst start time in seconds.
        burst_duration: flash-crowd burst length in seconds.
        fluid: use the aggregated-flow client model
            (:class:`repro.workload.fluid.FluidClientPool`) instead of
            per-transaction simulation — one injection event per
            (replica, tick) regardless of population size.  Open-loop only.
        fluid_tick: injection period in seconds for the fluid model; also
            the submit-time resolution of its latency samples.
    """

    mode: str = "open"
    arrival: str = "poisson"
    rate: float = 50.0
    num_clients: int = 8
    think_time: float = 0.5
    tx_size: int = 256
    max_block_bytes: int = 65_536
    mempool_capacity: int = 10_000
    mempool_max_bytes: Optional[int] = None
    sample_interval: float = 0.5
    seed: int = 0
    period: float = 30.0
    amplitude: float = 0.8
    burst_rate: float = 400.0
    burst_start: float = 8.0
    burst_duration: float = 4.0
    fluid: bool = False
    fluid_tick: float = 0.1

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.mode == "open" and self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_KINDS}, got {self.arrival!r}"
            )
        if self.tx_size <= 0:
            raise ValueError("tx_size must be positive")
        if max(self.tx_size, MAX_HEADER_BYTES) > self.max_block_bytes:
            # An oversized head-of-queue transaction would wedge the mempool
            # forever (take() refuses transactions above the budget).  The
            # bound is on the worst-case *encoded* size: a tiny tx_size still
            # yields a header of up to MAX_HEADER_BYTES bytes.
            raise ValueError(
                "max_block_bytes must be at least "
                f"max(tx_size, {MAX_HEADER_BYTES}) to fit every transaction"
            )
        if self.fluid and self.mode != "open":
            raise ValueError("fluid workload requires the open-loop mode")
        if self.fluid_tick <= 0:
            raise ValueError("fluid_tick must be positive")

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`).

        The fluid fields are emitted only when the fluid model is selected,
        so pre-existing exact-mode specs keep their serialised shape (and
        content hashes).
        """
        data = dataclasses.asdict(self)
        if not self.fluid:
            del data["fluid"]
            del data["fluid_tick"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys ignored)."""
        names = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})

    def build_arrivals(self) -> Optional[ArrivalProcess]:
        """Build the arrival process (``None`` for the closed-loop model)."""
        if self.mode != "open":
            return None
        if self.arrival == "poisson":
            return PoissonArrivals(self.rate)
        if self.arrival == "constant":
            return ConstantRate(self.rate)
        if self.arrival == "diurnal":
            return DiurnalArrivals(self.rate, amplitude=self.amplitude,
                                   period=self.period)
        return FlashCrowdArrivals(self.rate, burst_rate=self.burst_rate,
                                  burst_start=self.burst_start,
                                  burst_duration=self.burst_duration)

    def build_pool(self):
        """Build a fresh client pool for one run of this spec.

        Returns a :class:`repro.workload.fluid.FluidClientPool` when
        :attr:`fluid` is set, else a :class:`ClientPool`.  Both expose the
        ``attach`` / ``payload_source`` / ``metrics`` seams the experiment
        harness drives.
        """
        if self.fluid:
            from repro.workload.fluid import FluidClientPool

            return FluidClientPool(
                arrivals=self.build_arrivals(),
                num_clients=self.num_clients,
                tx_size=self.tx_size,
                mempool_capacity=self.mempool_capacity,
                mempool_max_bytes=self.mempool_max_bytes,
                sample_interval=self.sample_interval,
                seed=self.seed,
                tick=self.fluid_tick,
            )
        return ClientPool(
            arrivals=self.build_arrivals(),
            num_clients=self.num_clients,
            think_time=self.think_time,
            tx_size=self.tx_size,
            mempool_capacity=self.mempool_capacity,
            mempool_max_bytes=self.mempool_max_bytes,
            sample_interval=self.sample_interval,
            seed=self.seed,
        )
