"""Transaction arrival processes for open-loop workload generation.

An :class:`ArrivalProcess` answers one question: given the current
simulation time, how long until the next client transaction arrives?  All
randomness flows through the caller-supplied :class:`random.Random`, so a
seeded generator produces the same arrival schedule on every run.

Four processes cover the workload shapes the evaluation needs:

* :class:`ConstantRate` — a fixed inter-arrival time (deterministic offered
  load, the open-loop analogue of the paper's fixed payload sweep).
* :class:`PoissonArrivals` — memoryless arrivals at a fixed mean rate, the
  standard open-loop saturation workload.
* :class:`DiurnalArrivals` — a sine-modulated Poisson process mimicking a
  day/night demand cycle.
* :class:`FlashCrowdArrivals` — a baseline Poisson rate with a burst window
  at a much higher rate (a "flash crowd" spike).

The time-varying processes are non-homogeneous Poisson processes sampled by
thinning (Lewis & Shedler): candidate arrivals are drawn at the peak rate
and accepted with probability ``rate(t) / peak_rate``.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


def _check_rate(value: float, what: str = "arrival rate") -> float:
    """Validate a rate parameter: finite and strictly positive."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{what} must be a finite positive number, got {value!r}")
    return value


class ArrivalProcess(ABC):
    """An arrival process: produces successive transaction inter-arrival times."""

    @abstractmethod
    def next_interarrival(self, now: float, rng: random.Random) -> float:
        """Return the time from ``now`` until the next arrival (seconds)."""

    @abstractmethod
    def rate(self, now: float) -> float:
        """Return the instantaneous arrival rate at ``now`` (tx/s)."""


class ConstantRate(ArrivalProcess):
    """Arrivals at exactly ``rate`` transactions per second, evenly spaced."""

    def __init__(self, rate: float) -> None:
        self._rate = _check_rate(rate)

    def next_interarrival(self, now: float, rng: random.Random) -> float:
        return 1.0 / self._rate

    def rate(self, now: float) -> float:
        return self._rate


class PoissonArrivals(ArrivalProcess):
    """Memoryless (exponential inter-arrival) arrivals at a fixed mean rate."""

    def __init__(self, rate: float) -> None:
        self._rate = _check_rate(rate)

    def next_interarrival(self, now: float, rng: random.Random) -> float:
        return rng.expovariate(self._rate)

    def rate(self, now: float) -> float:
        return self._rate


class _ModulatedPoisson(ArrivalProcess):
    """Non-homogeneous Poisson process sampled by thinning.

    Subclasses define :meth:`rate` and the peak rate bound; candidates are
    drawn at the peak rate and accepted with probability ``rate / peak``.
    """

    def __init__(self, peak_rate: float) -> None:
        self._peak_rate = _check_rate(peak_rate, "peak rate")

    def next_interarrival(self, now: float, rng: random.Random) -> float:
        elapsed = 0.0
        while True:
            elapsed += rng.expovariate(self._peak_rate)
            if rng.random() * self._peak_rate <= self.rate(now + elapsed):
                return elapsed


class DiurnalArrivals(_ModulatedPoisson):
    """Sine-modulated Poisson arrivals: a synthetic day/night demand cycle.

    The instantaneous rate is::

        base_rate * (1 + amplitude * sin(2π * (t + phase) / period))

    clamped at zero, so ``amplitude = 1`` swings from silence to twice the
    base rate over one period.

    Args:
        base_rate: mean arrival rate in tx/s.
        amplitude: relative swing in ``[0, 1]``.
        period: cycle length in (simulated) seconds.
        phase: offset into the cycle at ``t = 0``, in seconds.
    """

    def __init__(self, base_rate: float, amplitude: float = 0.8,
                 period: float = 60.0, phase: float = 0.0) -> None:
        _check_rate(base_rate, "base rate")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period <= 0:
            raise ValueError("period must be positive")
        super().__init__(base_rate * (1.0 + amplitude))
        self._base_rate = base_rate
        self._amplitude = amplitude
        self._period = period
        self._phase = phase

    def rate(self, now: float) -> float:
        angle = 2.0 * math.pi * (now + self._phase) / self._period
        return max(0.0, self._base_rate * (1.0 + self._amplitude * math.sin(angle)))


class FlashCrowdArrivals(_ModulatedPoisson):
    """Poisson arrivals with a burst window at a much higher rate.

    Outside ``[burst_start, burst_start + burst_duration)`` the process runs
    at ``base_rate``; inside the window it runs at ``burst_rate``.  Used to
    drive the flash-crowd scenario where mempools fill during the spike and
    drain afterwards.
    """

    def __init__(self, base_rate: float, burst_rate: float,
                 burst_start: float, burst_duration: float) -> None:
        _check_rate(base_rate, "base rate")
        _check_rate(burst_rate, "burst rate")
        if burst_duration <= 0:
            raise ValueError("burst duration must be positive")
        super().__init__(max(base_rate, burst_rate))
        self._base_rate = base_rate
        self._burst_rate = burst_rate
        self._burst_start = burst_start
        self._burst_end = burst_start + burst_duration

    def rate(self, now: float) -> float:
        if self._burst_start <= now < self._burst_end:
            return self._burst_rate
        return self._base_rate
