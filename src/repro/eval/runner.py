"""Plan execution: serial or process-parallel, with a JSON result cache.

``run_plan`` is the single engine behind every figure, ablation, and sweep:
it takes an :class:`repro.eval.plan.ExperimentPlan` (or a bare list of
specs) and returns one :class:`repro.eval.experiment.ExperimentResult` per
spec **in plan order**, regardless of execution order.  Three orthogonal
features:

* **parallelism** — ``jobs=N`` fans uncached specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; each simulation is
  deterministic given its spec, so parallel results are byte-identical to
  serial ones;
* **caching** — with a ``cache_dir``, each finished spec is written to
  ``<cache_dir>/<content_hash>.json`` (atomically) and re-running a plan
  skips every completed cell, making sweep invocations resumable;
* **progress** — an optional callback receives a :class:`ProgressEvent`
  per completed spec (cached or executed), for CLI progress lines.

The engine is deliberately duck-typed over its spec/result types: a spec
needs ``to_dict()`` and ``content_hash()`` (plus ``resolved_label``,
``cell``, ``replication`` for progress lines), and the ``execute`` /
``decode`` hooks translate between spec dictionaries and result objects.
The defaults run :class:`repro.eval.plan.ExperimentSpec` cells; the chaos
engine (:mod:`repro.chaos.engine`) reuses the same parallelism, caching,
and ordering for its fault-schedule trials by passing its own hooks.
"""

from __future__ import annotations

import json
import os
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.eval.experiment import ExperimentResult, run_experiment
from repro.eval.plan import ExperimentPlan, ExperimentSpec

#: Signature of the progress callback accepted by :func:`run_plan`.
ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed spec, reported to the progress callback.

    Attributes:
        completed: specs finished so far (cached + executed).
        total: total specs in the plan.
        spec: the spec that just finished.
        cached: whether the result came from the cache.
    """

    completed: int
    total: int
    spec: ExperimentSpec
    cached: bool


def execute_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Run one spec to completion (deterministic given the spec)."""
    return run_experiment(spec.to_config())


def _execute_serialized(spec_data: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: dict in, dict out, so only JSON-ready data crosses
    the process boundary and every parallel result passes through the same
    serialisation layer the cache uses."""
    result = execute_spec(ExperimentSpec.from_dict(spec_data))
    return result.to_dict()


def cache_path(cache_dir: str, spec) -> str:
    """The cache file that holds (or would hold) the spec's result."""
    return os.path.join(cache_dir, f"{spec.content_hash()}.json")


def _cache_load(cache_dir: str, spec, decode):
    """Load a cached result; ``None`` on miss or an unreadable/corrupt file."""
    path = cache_path(cache_dir, spec)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return decode(data)
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _cache_store(cache_dir: str, spec, data: Dict[str, object]) -> None:
    """Atomically write a result record (temp file + rename), best-effort."""
    path = cache_path(cache_dir, spec)
    try:
        os.makedirs(cache_dir, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=cache_dir, suffix=".tmp", delete=False
        )
        with handle:
            json.dump(data, handle)
        os.replace(handle.name, path)
    except OSError:
        # A read-only or full cache directory degrades to uncached operation.
        pass


def run_plan(
    plan: Union[ExperimentPlan, Sequence[ExperimentSpec]],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
    execute: Optional[Callable[[Dict[str, object]], Dict[str, object]]] = None,
    decode: Optional[Callable[[Dict[str, object]], object]] = None,
) -> List[ExperimentResult]:
    """Execute every spec of ``plan`` and return results in plan order.

    Args:
        plan: an :class:`ExperimentPlan` or a plain spec sequence.
        jobs: worker processes; 1 executes in-process (no pool).
        cache_dir: directory of per-spec JSON result files; ``None``
            disables caching entirely.
        use_cache: when False, cached results are ignored (they are still
            rewritten after execution, refreshing the cache).
        progress: optional per-spec completion callback.
        execute: worker entry point — a picklable, module-level callable
            taking a spec dictionary and returning a result dictionary.
            Defaults to running the spec as an experiment.  Custom spec
            types (e.g. chaos trials) supply their own.
        decode: rebuilds a result object from a result dictionary (cache
            hits and worker returns both pass through it).  Defaults to
            :meth:`ExperimentResult.from_dict`.

    Returns:
        One result object per spec, ordered like the plan — identical for
        any ``jobs`` value.
    """
    specs = list(plan.specs if isinstance(plan, ExperimentPlan) else plan)
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if execute is None:
        execute = _execute_serialized
    if decode is None:
        decode = ExperimentResult.from_dict
    total = len(specs)
    results: List[Optional[object]] = [None] * total
    completed = 0

    def report(index: int, cached: bool) -> None:
        if progress is not None:
            progress(ProgressEvent(
                completed=completed, total=total, spec=specs[index], cached=cached,
            ))

    pending: List[int] = []
    for index, spec in enumerate(specs):
        cached = None
        if cache_dir is not None and use_cache:
            cached = _cache_load(cache_dir, spec, decode)
        if cached is not None:
            results[index] = cached
            completed += 1
            report(index, cached=True)
        else:
            pending.append(index)

    def finish(index: int, data: Dict[str, object]) -> None:
        nonlocal completed
        if cache_dir is not None:
            _cache_store(cache_dir, specs[index], data)
        results[index] = decode(data)
        completed += 1
        report(index, cached=False)

    if jobs == 1 or len(pending) <= 1:
        for index in pending:
            finish(index, execute(specs[index].to_dict()))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(execute, specs[index].to_dict()): index
                for index in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(futures[future], future.result())

    return [result for result in results if result is not None]
