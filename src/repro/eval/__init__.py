"""Evaluation harness: plans, the sweep runner, scenarios, Table 1.

* :mod:`repro.eval.experiment` — a single experiment run: protocol +
  topology + workload → :class:`repro.smr.metrics.RunMetrics`.
* :mod:`repro.eval.plan` — declarative, picklable experiment descriptions
  (:class:`ExperimentSpec` / :class:`ExperimentPlan`) with content hashing
  and deterministic per-replication sub-seeds.
* :mod:`repro.eval.runner` — the engine executing any plan serially or in
  parallel, with a per-spec JSON result cache and progress callbacks.
* :mod:`repro.eval.table1` — the analytic protocol-comparison table
  (Table 1 of the paper).
* :mod:`repro.eval.scenarios` — one plan builder + runner wrapper per
  evaluation figure (6a–6e) plus the ablations and workload scenarios,
  returning the series the paper plots with mean ± 95% CI columns when
  replicated.
"""

from repro.eval.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    sweep_payload_sizes,
)
from repro.eval.plan import (
    ExperimentPlan,
    ExperimentSpec,
    derive_subseed,
    payload_sweep_plan,
)
from repro.eval.runner import ProgressEvent, run_plan
from repro.eval.scenarios import (
    FigureResult,
    ablation_p_sweep,
    ablation_stragglers,
    figure_6a,
    figure_6b,
    figure_6c,
    figure_6d,
    figure_6e,
    figure_from_plan,
    flash_crowd,
    run_figure,
    saturation_sweep,
)
from repro.eval.table1 import TABLE1_SPECS, ProtocolSpec, table1_rows

__all__ = [
    "ExperimentConfig",
    "ExperimentPlan",
    "ExperimentResult",
    "ExperimentSpec",
    "FigureResult",
    "ProgressEvent",
    "ProtocolSpec",
    "TABLE1_SPECS",
    "ablation_p_sweep",
    "ablation_stragglers",
    "derive_subseed",
    "figure_6a",
    "figure_6b",
    "figure_6c",
    "figure_6d",
    "figure_6e",
    "figure_from_plan",
    "flash_crowd",
    "payload_sweep_plan",
    "run_experiment",
    "run_figure",
    "run_plan",
    "saturation_sweep",
    "sweep_payload_sizes",
    "table1_rows",
]
