"""Evaluation harness: experiments, scenarios per paper figure, Table 1.

* :mod:`repro.eval.experiment` — a single experiment run: protocol +
  topology + workload → :class:`repro.smr.metrics.RunMetrics`.
* :mod:`repro.eval.table1` — the analytic protocol-comparison table
  (Table 1 of the paper).
* :mod:`repro.eval.scenarios` — one entry point per evaluation figure
  (6a–6e) plus the ablations, returning the series the paper plots.
"""

from repro.eval.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.eval.scenarios import (
    ablation_p_sweep,
    ablation_stragglers,
    figure_6a,
    figure_6b,
    figure_6c,
    figure_6d,
    figure_6e,
    flash_crowd,
    saturation_sweep,
)
from repro.eval.table1 import TABLE1_SPECS, ProtocolSpec, table1_rows

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ProtocolSpec",
    "TABLE1_SPECS",
    "ablation_p_sweep",
    "ablation_stragglers",
    "figure_6a",
    "figure_6b",
    "figure_6c",
    "figure_6d",
    "figure_6e",
    "flash_crowd",
    "run_experiment",
    "saturation_sweep",
    "table1_rows",
]
