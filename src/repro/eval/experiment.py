"""A single evaluation experiment: protocol × topology × workload.

``run_experiment`` wires the pieces together the way the paper's testbed
does: replicas are placed in datacenters (:mod:`repro.net.topology`), message
delays follow the geographic latency model plus a bandwidth term, one replica
set runs one protocol for a fixed duration, and the metrics collector
measures proposal finalization latency at the proposers and throughput at an
observer replica (Section 9.2 methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.byzantine.behaviors import DelayedReplica
from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultPlan
from repro.net.transport import ContendedUplinkTransport
from repro.net.latency import LatencyModel, build_latency_model
from repro.net.topology import (
    Topology,
    four_global_datacenters,
    placement_names,
    topology_from_names,
)
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.smr.metrics import MetricsCollector, RunMetrics, WorkloadMetrics
from repro.smr.mempool import PayloadSource
from repro.workload.spec import WorkloadSpec

#: The contended transport's default uplink, in Mbit/s (1 Mbit/s = 125 000
#: bytes/s); an ``uplink_mbps`` equal to it is omitted from serialisation.
_DEFAULT_UPLINK_MBPS = ContendedUplinkTransport.DEFAULT_UPLINK_BYTES_PER_S / 125_000.0


@dataclass
class ExperimentConfig:
    """Configuration of one experiment run.

    Attributes:
        protocol: registered protocol name (``"banyan"``, ``"icc"``, ...).
        params: protocol parameters (n, f, p, delays, payload size).
        topology: replica placement; defaults to the 4-datacenter global
            testbed of Section 9.3 sized to ``params.n``.
        duration: simulated run length in seconds (the paper uses 120 s; the
            default here is shorter because the measurements are already
            remarkably regular, exactly as the paper notes).
        warmup: initial seconds excluded from the measurements.
        seed: simulation seed (latency jitter, drops).
        faults: crash / drop / partition plan.
        latency: override the latency model with a ready instance (takes
            precedence over ``latency_model``; not serialisable).
        latency_model: name of the topology-derived latency model to build,
            registered in :data:`repro.net.latency.LATENCY_MODELS` —
            ``"geo"`` (great-circle estimate, the default) or
            ``"wan-matrix"`` (measured cloud-region RTTs).
        observer: replica whose commits define throughput; defaults to the
            lowest-id non-crashed replica.
        label: label used in reports (defaults to the protocol name).
        workload: optional client workload driving the run.  When set,
            proposals are built from the transactions pending in the
            proposer's mempool and the result additionally carries
            end-to-end :class:`repro.smr.metrics.WorkloadMetrics`; when
            unset, proposals use the paper's synthetic bit-vector payloads
            of ``params.payload_size`` bytes.
        stragglers: number of honest straggler replicas (the highest-id
            ones) whose outbound messages are delayed by
            ``straggler_delay`` seconds — the straggler ablation's knob.
        straggler_delay: extra outbound delay per straggler, in seconds.
        transport: dissemination strategy, a name registered in
            :data:`repro.net.transport.TRANSPORTS` (``"direct"``,
            ``"contended"``, ``"relay"``).
        uplink_mbps: per-replica NIC capacity in megabits per second, used
            by the ``"contended"`` transport (``None`` selects its
            1 Gbit/s default).
        relays: relay fan-out of the ``"relay"`` transport.
        compute: replica compute model, a name registered in
            :data:`repro.runtime.compute.COMPUTE_MODELS` (``"zero"``,
            ``"crypto"``).  Non-zero models charge per-message CPU cost
            and queue deliveries at busy replicas; the result's metrics
            then carry per-replica busy fractions and queue waits.
        compute_scale: cost multiplier for the ``"crypto"`` compute model
            (``2.0`` models cores half as fast).
        scheduler: event-scheduler backend for the simulator, one of
            :data:`repro.runtime.scheduler.SCHEDULERS` — ``"auto"`` (the
            default: calendar queue on large jittered runs, binary heap
            otherwise), ``"heap"``, or ``"calendar"``.  Both backends
            produce byte-identical executions; this is a performance knob.
    """

    protocol: str
    params: ProtocolParams
    topology: Optional[Topology] = None
    duration: float = 20.0
    warmup: float = 2.0
    seed: int = 0
    faults: FaultPlan = field(default_factory=FaultPlan.none)
    latency: Optional[LatencyModel] = None
    latency_model: str = "geo"
    observer: Optional[int] = None
    label: Optional[str] = None
    workload: Optional[WorkloadSpec] = None
    stragglers: int = 0
    straggler_delay: float = 1.0
    transport: str = "direct"
    uplink_mbps: Optional[float] = None
    relays: int = 2
    compute: str = "zero"
    compute_scale: float = 1.0
    scheduler: str = "auto"

    def resolved_topology(self) -> Topology:
        """The topology to use (default: 4 global datacenters)."""
        return self.topology or four_global_datacenters(self.params.n)

    def resolved_label(self) -> str:
        """The report label."""
        return self.label or self.protocol

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`).

        The topology is stored as its datacenter-name placement list, so any
        :class:`repro.net.topology.Topology` over catalogued AWS regions
        round-trips.  A ``latency`` model override is not serialisable.

        The transport fields are emitted only when they differ from the
        defaults: a default (direct-transport) config serialises exactly as
        it did before the transport layer existed, so content hashes and
        cached results of unchanged configs stay valid.

        Raises:
            ValueError: if a ``latency`` override is set, or the topology
                uses datacenters that are not (exactly) catalogue entries —
                ``from_dict`` would otherwise rebuild a different network.
        """
        if self.latency is not None:
            raise ValueError("configs with a latency-model override are not serialisable")
        data = {
            "protocol": self.protocol,
            "params": self.params.to_dict(),
            "topology": (
                placement_names(self.topology)
                if self.topology is not None else None
            ),
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "faults": self.faults.to_dict(),
            "observer": self.observer,
            "label": self.label,
            "workload": self.workload.to_dict() if self.workload is not None else None,
            "stragglers": self.stragglers,
            "straggler_delay": self.straggler_delay,
        }
        data.update(_transport_fields(self.transport, self.uplink_mbps, self.relays))
        data.update(_compute_fields(self.compute, self.compute_scale))
        data.update(_latency_fields(self.latency_model))
        data.update(_scheduler_fields(self.scheduler))
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        placement = data.get("topology")
        workload = data.get("workload")
        return cls(
            protocol=str(data["protocol"]),
            params=ProtocolParams.from_dict(data["params"]),
            topology=(
                topology_from_names(placement)
                if placement is not None else None
            ),
            duration=float(data["duration"]),
            warmup=float(data["warmup"]),
            seed=int(data["seed"]),
            faults=FaultPlan.from_dict(data.get("faults", {})),
            observer=data.get("observer"),
            label=data.get("label"),
            workload=WorkloadSpec.from_dict(workload) if workload is not None else None,
            stragglers=int(data.get("stragglers", 0)),
            straggler_delay=float(data.get("straggler_delay", 1.0)),
            transport=str(data.get("transport", "direct")),
            uplink_mbps=(
                float(data["uplink_mbps"])
                if data.get("uplink_mbps") is not None else None
            ),
            relays=int(data.get("relays", 2)),
            compute=str(data.get("compute", "zero")),
            compute_scale=float(data.get("compute_scale", 1.0)),
            latency_model=str(data.get("latency_model", "geo")),
            scheduler=str(data.get("scheduler", "auto")),
        )


def _transport_fields(transport: str, uplink_mbps: Optional[float],
                      relays: int) -> Dict[str, object]:
    """The non-default transport fields of a config/spec dictionary.

    Default values are omitted so that serialised forms (and the content
    hashes derived from them) of pre-transport configs are unchanged; a
    knob the selected transport never reads (``uplink_mbps`` off the
    contended transport, ``relays`` off the relay transport) is omitted
    too, as is an explicitly-passed default value, so semantically
    identical experiments hash — and cache — alike.
    """
    fields: Dict[str, object] = {}
    if transport != "direct":
        fields["transport"] = transport
    if (transport == "contended" and uplink_mbps is not None
            and uplink_mbps != _DEFAULT_UPLINK_MBPS):
        fields["uplink_mbps"] = uplink_mbps
    if transport == "relay" and relays != 2:
        fields["relays"] = relays
    return fields


def _compute_fields(compute: str, compute_scale: float) -> Dict[str, object]:
    """The non-default compute fields of a config/spec dictionary.

    Mirrors :func:`_transport_fields`: default values are omitted so
    serialised forms — and the content hashes and cached results derived
    from them — of pre-compute configs are unchanged, and a scale the
    zero model never reads is omitted too.
    """
    fields: Dict[str, object] = {}
    if compute != "zero":
        fields["compute"] = compute
        if compute_scale != 1.0:
            fields["compute_scale"] = compute_scale
    return fields


def _scheduler_fields(scheduler: str) -> Dict[str, object]:
    """The non-default scheduler field of a config/spec dictionary.

    Mirrors :func:`_transport_fields`: the default (``"auto"``) is omitted.
    Both backends execute byte-identically, so the backend is serialised
    only when pinned explicitly — semantically identical experiments keep
    hashing (and caching) alike.
    """
    if scheduler != "auto":
        return {"scheduler": scheduler}
    return {}


def _latency_fields(latency_model: str) -> Dict[str, object]:
    """The non-default latency field of a config/spec dictionary.

    Mirrors :func:`_transport_fields`: the default (``"geo"``) is omitted so
    serialised forms — and content hashes of cached results — of existing
    configs are unchanged.
    """
    if latency_model != "geo":
        return {"latency_model": latency_model}
    return {}


@dataclass
class ExperimentResult:
    """Result of one experiment run.

    Attributes:
        config: the configuration that produced the result.
        metrics: the aggregated run metrics.
        messages_sent: total messages handed to the network.
        bytes_sent: total logical bytes handed to the network.
        workload: end-to-end client metrics; ``None`` unless the run was
            driven by a :class:`repro.workload.spec.WorkloadSpec`.
    """

    config: ExperimentConfig
    metrics: RunMetrics
    messages_sent: int
    bytes_sent: int
    workload: Optional[WorkloadMetrics] = None

    @property
    def label(self) -> str:
        """Report label of the run."""
        return self.config.resolved_label()

    def row(self) -> Dict[str, object]:
        """A flat dictionary row for report tables."""
        summary = self.metrics.summary()
        row: Dict[str, object] = {
            "protocol": self.label,
            "payload_bytes": self.config.params.payload_size,
            "mean_latency_ms": round(summary["mean_latency_s"] * 1000, 1),
            "p95_latency_ms": round(summary["p95_latency_s"] * 1000, 1),
            "latency_stddev_ms": round(summary["latency_stddev_s"] * 1000, 1),
            "throughput_MBps": round(summary["throughput_bytes_per_s"] / 1e6, 3),
            "blocks_per_s": round(summary["blocks_per_s"], 2),
            "block_interval_ms": round(summary["mean_block_interval_s"] * 1000, 1),
            "fast_path_ratio": round(summary["fast_path_ratio"], 3),
            "committed_blocks": int(summary["committed_blocks"]),
        }
        if self.metrics.compute_busy_fractions:
            row["busy_frac"] = round(self.metrics.max_busy_fraction, 3)
            row["cpu_wait_ms"] = round(
                self.metrics.total_compute_queue_wait_s * 1000, 1
            )
        if self.workload is not None:
            row.update(self.workload_row())
        return row

    def workload_row(self) -> Dict[str, object]:
        """The client-workload columns (empty when no workload was attached)."""
        if self.workload is None:
            return {}
        return {
            "submitted_tx": self.workload.submitted,
            "committed_tx": self.workload.committed,
            "dropped_tx": self.workload.dropped,
            "pending_tx": self.workload.pending,
            "tx_p50_ms": round(self.workload.p50_latency * 1000, 1),
            "tx_p95_ms": round(self.workload.p95_latency * 1000, 1),
            "tx_p99_ms": round(self.workload.p99_latency * 1000, 1),
            "goodput_tx_per_s": round(self.workload.goodput_tx_per_s, 2),
            "peak_mempool_depth": self.workload.peak_mempool_depth,
        }

    def to_dict(self) -> Dict[str, object]:
        """A lossless JSON-ready dictionary (inverse of :meth:`from_dict`).

        This is the result-cache format: rebuilding via :meth:`from_dict`
        yields a result whose :meth:`row` output is byte-identical to the
        original's.
        """
        return {
            "config": self.config.to_dict(),
            "metrics": self.metrics.to_dict(),
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "workload": self.workload.to_dict() if self.workload is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        workload = data.get("workload")
        return cls(
            config=ExperimentConfig.from_dict(data["config"]),
            metrics=RunMetrics.from_dict(data["metrics"]),
            messages_sent=int(data["messages_sent"]),
            bytes_sent=int(data["bytes_sent"]),
            workload=WorkloadMetrics.from_dict(workload) if workload is not None else None,
        )


def run_experiment(config: ExperimentConfig,
                   on_simulation=None) -> ExperimentResult:
    """Run one experiment and return its result.

    Args:
        config: the experiment to run.
        on_simulation: optional callback invoked with the fully wired
            :class:`Simulation` just before ``run`` — the seam used by the
            CLI's ``--profile`` flag (and tests) to attach listeners or
            harvest post-run state such as :meth:`Simulation.event_counts`.
    """
    topology = config.resolved_topology()
    if topology.n != config.params.n:
        raise ValueError(
            f"topology has {topology.n} replicas but params.n={config.params.n}"
        )
    latency = config.latency or build_latency_model(config.latency_model, topology)
    bandwidth = BandwidthModel(topology=topology)
    network = NetworkConfig(
        latency=latency, bandwidth=bandwidth, faults=config.faults, seed=config.seed,
        transport=config.transport,
        # 1 Mbit/s = 125 000 bytes/s.
        uplink_bytes_per_s=(
            config.uplink_mbps * 125_000.0
            if config.uplink_mbps is not None else None
        ),
        relays=config.relays,
        compute=config.compute,
        compute_scale=config.compute_scale,
        scheduler=config.scheduler,
    )
    pool = None
    if config.workload is not None:
        # Proposals carry real pending transactions; idle rounds stay empty.
        # The pool is either the exact per-transaction ClientPool or the
        # aggregated FluidClientPool (workload.fluid); both build their own
        # matching payload source.
        pool = config.workload.build_pool()
        payload_source = pool.payload_source(
            max_block_bytes=config.workload.max_block_bytes
        )
    else:
        payload_source = PayloadSource(config.params.payload_size)
    replicas = create_replicas(
        config.protocol, config.params, payload_source=payload_source
    )
    if config.stragglers:
        # The highest-id replicas become honest stragglers: their outbound
        # messages are deferred, degrading the fast path but not safety.
        for replica_id in range(config.params.n - config.stragglers, config.params.n):
            replicas[replica_id] = DelayedReplica(
                replicas[replica_id], config.straggler_delay
            )
    simulation = Simulation(replicas, network)
    if pool is not None:
        pool.attach(simulation, stop_time=config.duration)
    observer = config.observer
    if observer is None:
        correct = config.faults.correct_replicas(simulation.replica_ids)
        observer = correct[0] if correct else simulation.replica_ids[0]
    collector = MetricsCollector(
        protocol=config.resolved_label(), observer=observer, warmup=config.warmup
    )
    simulation.add_commit_listener(collector.on_commit)
    if on_simulation is not None:
        on_simulation(simulation)
    simulation.run(until=config.duration)
    proposal_times = {
        replica_id: dict(simulation.protocol(replica_id).proposal_times)
        for replica_id in simulation.replica_ids
    }
    metrics = collector.finalize(
        duration=max(config.duration - config.warmup, 1e-9),
        proposal_times=proposal_times,
    )
    compute_stats = simulation.compute_stats()
    busy_by_replica = compute_stats.get("busy_s")
    if busy_by_replica:
        # Busy fractions are over the full run (the CPU is busy during the
        # warm-up too); queue waits are totals per replica.
        metrics.compute_busy_fractions = {
            replica_id: busy / config.duration if config.duration > 0 else 0.0
            for replica_id, busy in busy_by_replica.items()
        }
    waits = compute_stats.get("queue_wait_s")
    if waits:
        metrics.compute_queue_wait_s = dict(waits)
    return ExperimentResult(
        config=config,
        metrics=metrics,
        messages_sent=simulation.messages_sent,
        bytes_sent=simulation.bytes_sent,
        workload=(
            pool.metrics(max(config.duration - config.warmup, 1e-9),
                         warmup=config.warmup)
            if pool is not None else None
        ),
    )


def sweep_payload_sizes(base: ExperimentConfig, payload_sizes, jobs: int = 1,
                        cache_dir: Optional[str] = None,
                        use_cache: bool = True) -> list:
    """Run ``base`` once per payload size; returns the list of results.

    The sweep executes as an experiment plan, so it shares the runner's
    parallelism (``jobs``) and per-spec result cache (``cache_dir``).
    Configs that cannot be expressed as a spec (latency-model override,
    non-catalogue datacenters) still sweep, serially and uncached.
    """
    # Imported lazily: plan/runner build on the config/result types above.
    from repro.eval.plan import ExperimentSpec, payload_sweep_plan
    from repro.eval.runner import run_plan

    try:
        spec = ExperimentSpec.from_config(base)
    except ValueError:
        return [
            run_experiment(replace(base, params=replace(base.params, payload_size=size)))
            for size in payload_sizes
        ]
    return run_plan(payload_sweep_plan(spec, payload_sizes),
                    jobs=jobs, cache_dir=cache_dir, use_cache=use_cache)
