"""Table 1 of the paper: analytic comparison of SMR protocols.

The table lists, for each protocol, the block finalization latency, the
number of replicas that must respond for finalization, the block creation
latency, the creation requirement, the total replica count at the respective
lower bound, and whether the protocol supports rotating leaders.  All entries
are closed-form functions of ``f`` and ``p`` (with ``δ``/``Δ`` symbolic), so
the table is regenerated analytically rather than measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class ProtocolSpec:
    """One row of Table 1, parameterised by ``f`` and ``p``.

    Attributes:
        name: protocol name as printed in the paper.
        finalization_latency: block finalization latency as a string in
            ``δ``/``Δ`` notation.
        finalization_requirement: replicas that must respond to finalize.
        creation_latency: block creation latency string.
        creation_requirement: replicas that must respond to create the next
            block (``None`` renders as "N/A").
        replica_count: total number of replicas at the protocol's bound.
        rotating_leaders: whether the protocol rotates leaders.
    """

    name: str
    finalization_latency: str
    finalization_requirement: Callable[[int, int], Optional[int]]
    creation_latency: str
    creation_requirement: Callable[[int, int], Optional[int]]
    replica_count: Callable[[int, int], int]
    rotating_leaders: bool


def _fmt(value: Optional[int]) -> str:
    return "N/A" if value is None else str(value)


#: The rows of Table 1, in the paper's order.
TABLE1_SPECS: List[ProtocolSpec] = [
    ProtocolSpec(
        name="Casper FFG",
        finalization_latency="O(Δ)",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="O(Δ)",
        creation_requirement=lambda f, p: None,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=True,
    ),
    ProtocolSpec(
        name="Fast HotStuff",
        finalization_latency="5δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="2δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=False,
    ),
    ProtocolSpec(
        name="Jolteon",
        finalization_latency="5δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="2δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=False,
    ),
    ProtocolSpec(
        name="PaLa",
        finalization_latency="4δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="2δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=False,
    ),
    ProtocolSpec(
        name="Zelma",
        finalization_latency="2δ",
        finalization_requirement=lambda f, p: 3 * f + p + 1,
        creation_latency="2δ",
        creation_requirement=lambda f, p: 2 * f + p + 1,
        replica_count=lambda f, p: 3 * f + 2 * p + 1,
        rotating_leaders=False,
    ),
    ProtocolSpec(
        name="SBFT",
        finalization_latency="3δ",
        finalization_requirement=lambda f, p: 3 * f + p + 1,
        creation_latency="3δ",
        creation_requirement=lambda f, p: 2 * f + p + 1,
        replica_count=lambda f, p: 3 * f + 2 * p + 1,
        rotating_leaders=False,
    ),
    ProtocolSpec(
        name="Streamlet",
        finalization_latency="6Δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="2Δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=True,
    ),
    ProtocolSpec(
        name="Bullshark",
        finalization_latency="4δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="2δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=True,
    ),
    ProtocolSpec(
        name="BBCA-Chain",
        finalization_latency="3δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="3δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=True,
    ),
    ProtocolSpec(
        name="ICC / Simplex",
        finalization_latency="3δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="2δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=True,
    ),
    ProtocolSpec(
        name="Mysticeti",
        finalization_latency="3δ",
        finalization_requirement=lambda f, p: 2 * f + 1,
        creation_latency="1δ",
        creation_requirement=lambda f, p: 2 * f + 1,
        replica_count=lambda f, p: 3 * f + 1,
        rotating_leaders=True,
    ),
    ProtocolSpec(
        name="Banyan",
        finalization_latency="2δ",
        finalization_requirement=lambda f, p: 3 * f + p - 1,
        creation_latency="2δ",
        creation_requirement=lambda f, p: 2 * f + p,
        replica_count=lambda f, p: 3 * f + 2 * p - 1,
        rotating_leaders=True,
    ),
]


def table1_rows(f: int = 1, p: int = 1) -> List[Dict[str, str]]:
    """Render Table 1 for concrete ``f`` and ``p`` values.

    The paper's table assumes the number of replicas equals each protocol's
    lower bound; the numeric requirement columns are evaluated accordingly.

    Raises:
        ValueError: if ``f < 1`` or ``p`` is outside ``[1, f]``.
    """
    if f < 1:
        raise ValueError("f must be at least 1")
    if not 1 <= p <= f:
        raise ValueError("p must be in [1, f]")
    rows: List[Dict[str, str]] = []
    for spec in TABLE1_SPECS:
        rows.append(
            {
                "protocol": spec.name,
                "finalization_latency": spec.finalization_latency,
                "finalization_requirement": _fmt(spec.finalization_requirement(f, p)),
                "creation_latency": spec.creation_latency,
                "creation_requirement": _fmt(spec.creation_requirement(f, p)),
                "replicas": str(spec.replica_count(f, p)),
                "rotating_leaders": "yes" if spec.rotating_leaders else "no",
            }
        )
    return rows


def banyan_beats_or_matches_all(f: int = 1, p: int = 1) -> bool:
    """Check the table's headline: Banyan's finalization latency is minimal.

    Among rotating-leader protocols, Banyan's ``2δ`` finalization latency is
    the lowest entry; used as a sanity check in tests.
    """

    def _latency_steps(text: str) -> float:
        if text.startswith("O("):
            return math.inf
        return float(text.rstrip("δΔ"))

    banyan = next(spec for spec in TABLE1_SPECS if spec.name == "Banyan")
    rotating = [spec for spec in TABLE1_SPECS if spec.rotating_leaders]
    return all(
        _latency_steps(banyan.finalization_latency) <= _latency_steps(spec.finalization_latency)
        for spec in rotating
    )
