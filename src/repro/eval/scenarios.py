"""Per-figure scenario presets (Figures 6a–6e) and ablations.

Each ``figure_*`` function reproduces one evaluation figure of the paper: it
builds the same replica placement, protocol line-up, and workload sweep, runs
the experiments on the simulated network, and returns the series the paper
plots (plus a ``render()``-able report).  Durations default to values that
keep the full suite runnable on a laptop; pass ``duration`` / ``payload
sizes`` explicitly to run longer sweeps.

Protocol line-ups follow Section 9:

* n = 19 experiments compare Banyan (f=6, p=1), Banyan (f=4, p=4), ICC
  (f=6), HotStuff (f=6), and Streamlet (f=6) — n=19 is chosen by the paper
  precisely because it is the bound for both (f=6, p=1) and (f=4, p=4).
* n = 4 experiments compare Banyan (f=1, p=1) with ICC, HotStuff, and
  Streamlet at f=1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_series
from repro.analysis.stats import improvement_pct
from repro.byzantine.behaviors import DelayedReplica
from repro.eval.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.net.faults import FaultPlan
from repro.net.latency import GeoLatency
from repro.net.topology import (
    Topology,
    four_global_datacenters,
    four_us_datacenters,
    worldwide_datacenters,
)
from repro.protocols.base import ProtocolParams
from repro.protocols.registry import create_replicas
from repro.runtime.simulator import NetworkConfig, Simulation
from repro.smr.metrics import MetricsCollector
from repro.smr.mempool import PayloadSource
from repro.workload.spec import WorkloadSpec

#: Per-rank delay (``2Δ``) used for the global-topology experiments; chosen
#: above the largest simulated one-way delay so fault-free rounds have a
#: single proposer, mirroring how the paper sets the proposal/notarization
#: delays "larger than the message delay experienced without disruptions".
GLOBAL_RANK_DELAY = 0.6

#: Per-rank delay for the 4-US-datacenter crash experiment; the paper sets
#: this timeout to 3 seconds (Section 9.4).
CRASH_EXPERIMENT_RANK_DELAY = 3.0


@dataclass
class FigureResult:
    """Results of one reproduced figure.

    Attributes:
        figure: figure identifier, e.g. ``"6a"``.
        title: human-readable description.
        series: protocol label → list of result rows (dictionaries).
        results: the underlying experiment results.
        columns: report columns; ``None`` selects the figure default
            (workload scenarios report client-side columns instead).
    """

    figure: str
    title: str
    series: Dict[str, List[Dict[str, object]]]
    results: List[ExperimentResult] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def render(self) -> str:
        """Render the figure's data as a plain-text report."""
        columns = self.columns or [
            "payload_bytes", "mean_latency_ms", "p95_latency_ms",
            "latency_stddev_ms", "throughput_MBps", "block_interval_ms",
            "fast_path_ratio", "committed_blocks"]
        return render_series(f"Figure {self.figure}: {self.title}", self.series, columns)

    def mean_latency(self, label: str, payload_bytes: Optional[int] = None) -> float:
        """Mean latency (seconds) of a protocol label at a payload size."""
        for result in self.results:
            if result.label != label:
                continue
            if payload_bytes is not None and result.config.params.payload_size != payload_bytes:
                continue
            return result.metrics.mean_latency
        raise KeyError(f"no result for label {label!r} and payload {payload_bytes!r}")

    def improvement_over(self, baseline_label: str, improved_label: str,
                         payload_bytes: Optional[int] = None) -> float:
        """Latency improvement (%) of ``improved_label`` over ``baseline_label``."""
        return improvement_pct(
            self.mean_latency(baseline_label, payload_bytes),
            self.mean_latency(improved_label, payload_bytes),
        )


# --------------------------------------------------------------------- #
# Protocol line-ups
# --------------------------------------------------------------------- #


def _lineup_n19(rank_delay: float, payload_size: int) -> List[Dict[str, object]]:
    """The five protocol configurations the n=19 experiments compare."""
    return [
        {
            "label": "banyan (p=1)",
            "protocol": "banyan",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "banyan (p=4)",
            "protocol": "banyan",
            "params": ProtocolParams(n=19, f=4, p=4, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "icc",
            "protocol": "icc",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "hotstuff",
            "protocol": "hotstuff",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "streamlet",
            "protocol": "streamlet",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
    ]


def _lineup_n4(rank_delay: float, payload_size: int) -> List[Dict[str, object]]:
    """The protocol configurations the n=4 experiments compare."""
    return [
        {
            "label": "banyan (p=1)",
            "protocol": "banyan",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "icc",
            "protocol": "icc",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "hotstuff",
            "protocol": "hotstuff",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "streamlet",
            "protocol": "streamlet",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
    ]


def _run_sweep(figure: str, title: str, lineup: List[Dict[str, object]],
               topology: Topology, payload_sizes: Sequence[int],
               duration: float, warmup: float, seed: int,
               faults: Optional[FaultPlan] = None) -> FigureResult:
    """Run every (protocol, payload size) combination and collect the series."""
    series: Dict[str, List[Dict[str, object]]] = {}
    results: List[ExperimentResult] = []
    for entry in lineup:
        label = entry["label"]
        series[label] = []
        for payload_size in payload_sizes:
            params = entry["params"]
            params = ProtocolParams(
                n=params.n, f=params.f, p=params.p, rank_delay=params.rank_delay,
                round_timeout=params.round_timeout, payload_size=payload_size,
                sign_messages=params.sign_messages, relay_proposals=params.relay_proposals,
                seed=params.seed,
            )
            config = ExperimentConfig(
                protocol=entry["protocol"],
                params=params,
                topology=topology,
                duration=duration,
                warmup=warmup,
                seed=seed,
                faults=faults or FaultPlan.none(),
                label=label,
            )
            result = run_experiment(config)
            results.append(result)
            series[label].append(result.row())
    return FigureResult(figure=figure, title=title, series=series, results=results)


# --------------------------------------------------------------------- #
# Figures 6a – 6e
# --------------------------------------------------------------------- #


def figure_6a(payload_sizes: Sequence[int] = (100_000, 200_000, 400_000),
              duration: float = 20.0, warmup: float = 2.0, seed: int = 0) -> FigureResult:
    """Figure 6a: throughput vs. latency, n=19 over 4 global datacenters."""
    topology = four_global_datacenters(19)
    lineup = _lineup_n19(GLOBAL_RANK_DELAY, payload_sizes[0])
    return _run_sweep("6a", "n=19 across 4 global datacenters (5/5/5/4 split)",
                      lineup, topology, payload_sizes, duration, warmup, seed)


def figure_6b(payload_sizes: Sequence[int] = (500_000, 1_000_000, 1_500_000),
              duration: float = 20.0, warmup: float = 2.0, seed: int = 0) -> FigureResult:
    """Figure 6b: throughput vs. latency, n=4, one replica per global datacenter."""
    topology = four_global_datacenters(4)
    lineup = _lineup_n4(GLOBAL_RANK_DELAY, payload_sizes[0])
    return _run_sweep("6b", "n=4, one replica per global datacenter",
                      lineup, topology, payload_sizes, duration, warmup, seed)


def figure_6c(payload_size: int = 1_000_000, duration: float = 30.0,
              warmup: float = 2.0, seed: int = 0) -> FigureResult:
    """Figure 6c: latency distribution of Banyan vs. ICC, n=4, 1 MB payload."""
    topology = four_global_datacenters(4)
    lineup = [entry for entry in _lineup_n4(GLOBAL_RANK_DELAY, payload_size)
              if entry["label"] in ("banyan (p=1)", "icc")]
    figure = _run_sweep("6c", "latency variance, n=4, 1 MB payload",
                        lineup, topology, [payload_size], duration, warmup, seed)
    figure.figure = "6c"
    return figure


def figure_6d(crash_counts: Sequence[int] = (0, 2, 4, 6),
              payload_size: int = 100_000, duration: float = 60.0,
              warmup: float = 2.0, seed: int = 0) -> FigureResult:
    """Figure 6d: crash faults, n=19 over 4 US datacenters, 3 s timeout."""
    topology = four_us_datacenters(19)
    series: Dict[str, List[Dict[str, object]]] = {}
    results: List[ExperimentResult] = []
    lineup = [
        ("banyan (p=1)", "banyan", ProtocolParams(n=19, f=6, p=1,
                                                  rank_delay=CRASH_EXPERIMENT_RANK_DELAY,
                                                  payload_size=payload_size)),
        ("icc", "icc", ProtocolParams(n=19, f=6, p=1,
                                      rank_delay=CRASH_EXPERIMENT_RANK_DELAY,
                                      payload_size=payload_size)),
    ]
    for label, protocol, params in lineup:
        series[label] = []
        for crashes in crash_counts:
            faults = FaultPlan.with_crashed(range(crashes))
            config = ExperimentConfig(
                protocol=protocol, params=params, topology=topology,
                duration=duration, warmup=warmup, seed=seed, faults=faults,
                label=label,
            )
            result = run_experiment(config)
            results.append(result)
            row = result.row()
            row["crashed_replicas"] = crashes
            series[label].append(row)
    return FigureResult(
        figure="6d",
        title="crash faults, n=19 across 4 US datacenters (timeout 3 s)",
        series=series,
        results=results,
    )


def figure_6e(payload_sizes: Sequence[int] = (1_000_000,), duration: float = 20.0,
              warmup: float = 2.0, seed: int = 0) -> FigureResult:
    """Figure 6e: n=19 replicas spread across 19 worldwide datacenters."""
    topology = worldwide_datacenters(19)
    lineup = _lineup_n19(GLOBAL_RANK_DELAY, payload_sizes[0])
    return _run_sweep("6e", "n=19 across a worldwide network (19 datacenters)",
                      lineup, topology, payload_sizes, duration, warmup, seed)


# --------------------------------------------------------------------- #
# Client-workload scenarios (beyond the paper: true end-to-end latency)
# --------------------------------------------------------------------- #

#: Columns reported by the workload scenarios: offered load on the left,
#: client-observed behaviour on the right.
WORKLOAD_COLUMNS = [
    "offered_tx_per_s", "submitted_tx", "committed_tx", "dropped_tx",
    "pending_tx", "tx_p50_ms", "tx_p95_ms", "tx_p99_ms",
    "goodput_tx_per_s", "peak_mempool_depth",
]


def saturation_sweep(rates: Sequence[float] = (10, 30, 60, 120),
                     protocol: str = "banyan", n: int = 4, f: int = 1, p: int = 1,
                     tx_size: int = 512, max_block_bytes: int = 65_536,
                     duration: float = 30.0, seed: int = 0) -> FigureResult:
    """Open-loop Poisson saturation sweep: offered load vs. client latency.

    For each arrival rate, clients submit fixed-size transactions to their
    local replica's mempool following a Poisson process; proposals drain the
    proposer's mempool up to the block budget.  Below saturation, goodput
    tracks the offered rate and submit→commit latency stays near the
    consensus floor; past saturation, mempools back up and client latency
    grows without bound — the knee is the system's capacity.
    """
    topology = four_global_datacenters(n)
    params = ProtocolParams(n=n, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY)
    label = f"{protocol} (n={n}, poisson)"
    series: Dict[str, List[Dict[str, object]]] = {label: []}
    results: List[ExperimentResult] = []
    for rate in rates:
        workload = WorkloadSpec(
            mode="open", arrival="poisson", rate=float(rate), tx_size=tx_size,
            max_block_bytes=max_block_bytes, seed=seed,
        )
        config = ExperimentConfig(
            protocol=protocol, params=params, topology=topology,
            duration=duration, warmup=0.0, seed=seed, label=label,
            workload=workload,
        )
        result = run_experiment(config)
        results.append(result)
        row = result.row()
        row["offered_tx_per_s"] = rate
        series[label].append(row)
    return FigureResult(
        figure="workload-saturation",
        title=f"open-loop Poisson saturation sweep, {protocol} n={n}",
        series=series,
        results=results,
        columns=WORKLOAD_COLUMNS,
    )


def flash_crowd(base_rate: float = 15.0, burst_rate: float = 250.0,
                burst_start: float = 8.0, burst_duration: float = 4.0,
                protocol: str = "banyan", n: int = 4, f: int = 1, p: int = 1,
                tx_size: int = 512, max_block_bytes: int = 65_536,
                duration: float = 40.0, seed: int = 0) -> FigureResult:
    """Flash-crowd scenario: a demand spike fills the mempools, then drains.

    Arrivals run at ``base_rate`` except for a burst window at
    ``burst_rate``.  The burst exceeds the per-round block budget, so
    mempool occupancy climbs during the spike and the backlog drains over
    the following rounds — visible in the occupancy samples of the result's
    :class:`repro.smr.metrics.WorkloadMetrics`.
    """
    topology = four_global_datacenters(n)
    params = ProtocolParams(n=n, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY)
    label = f"{protocol} (n={n}, flash crowd)"
    workload = WorkloadSpec(
        mode="open", arrival="flash-crowd", rate=base_rate,
        burst_rate=burst_rate, burst_start=burst_start,
        burst_duration=burst_duration, tx_size=tx_size,
        max_block_bytes=max_block_bytes, sample_interval=0.5, seed=seed,
    )
    config = ExperimentConfig(
        protocol=protocol, params=params, topology=topology,
        duration=duration, warmup=0.0, seed=seed, label=label,
        workload=workload,
    )
    result = run_experiment(config)
    row = result.row()
    row["offered_tx_per_s"] = base_rate
    return FigureResult(
        figure="workload-flash-crowd",
        title=(f"flash crowd, {protocol} n={n}: {base_rate:g}→{burst_rate:g} tx/s "
               f"during [{burst_start:g}s, {burst_start + burst_duration:g}s)"),
        series={label: [row]},
        results=[result],
        columns=WORKLOAD_COLUMNS,
    )


# --------------------------------------------------------------------- #
# Ablations (design-choice benches beyond the paper's figures)
# --------------------------------------------------------------------- #


def ablation_p_sweep(p_values: Sequence[int] = (1, 2, 3, 4), payload_size: int = 400_000,
                     duration: float = 20.0, warmup: float = 2.0, seed: int = 0) -> FigureResult:
    """Sweep the fast-path parameter ``p`` at n=19 (f adjusted to the bound).

    For each ``p`` we pick the largest ``f`` with ``3f + 2p - 1 <= 19`` so the
    comparison stays at 19 replicas, mirroring the paper's choice of n=19.
    """
    topology = four_global_datacenters(19)
    series: Dict[str, List[Dict[str, object]]] = {}
    results: List[ExperimentResult] = []
    for p in p_values:
        f = (19 + 1 - 2 * p) // 3
        label = f"banyan (f={f}, p={p})"
        params = ProtocolParams(n=19, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY,
                                payload_size=payload_size)
        config = ExperimentConfig(protocol="banyan", params=params, topology=topology,
                                  duration=duration, warmup=warmup, seed=seed, label=label)
        result = run_experiment(config)
        results.append(result)
        row = result.row()
        row["p"] = p
        row["f"] = f
        series[label] = [row]
    return FigureResult(
        figure="ablation-p",
        title="fast-path parameter sweep at n=19",
        series=series,
        results=results,
    )


def ablation_stragglers(straggler_counts: Sequence[int] = (0, 1, 2),
                        extra_delay: float = 1.0, payload_size: int = 100_000,
                        duration: float = 20.0, warmup: float = 2.0,
                        seed: int = 0) -> FigureResult:
    """Fast-path hit rate as a function of the number of straggler replicas.

    ``p = 1`` Banyan needs all but one replica to respond quickly; planting
    stragglers (honest replicas whose outbound messages are delayed) shows
    the fast-path hit rate degrading gracefully while latency falls back to
    the ICC slow path — the "no penalties" property of the dual mode.  The
    interesting regime is ``p < stragglers <= n - quorum``: the slow-path
    quorums are still met by the prompt replicas, so SP-finalization
    overtakes the fast path.
    """
    n, f, p = 7, 2, 1
    topology = four_global_datacenters(n)
    params = ProtocolParams(n=n, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY,
                            payload_size=payload_size)
    series: Dict[str, List[Dict[str, object]]] = {"banyan (p=1)": []}
    results: List[ExperimentResult] = []
    for stragglers in straggler_counts:
        payload_source = PayloadSource(payload_size)
        replicas = create_replicas("banyan", params, payload_source=payload_source)
        for replica_id in range(n - stragglers, n):
            replicas[replica_id] = DelayedReplica(replicas[replica_id], extra_delay)
        network = NetworkConfig(latency=GeoLatency(topology), seed=seed)
        simulation = Simulation(replicas, network)
        collector = MetricsCollector(protocol="banyan (p=1)", observer=0, warmup=warmup)
        simulation.add_commit_listener(collector.on_commit)
        simulation.run(until=duration)
        proposal_times = {rid: dict(simulation.protocol(rid).proposal_times)
                          for rid in simulation.replica_ids}
        metrics = collector.finalize(duration - warmup, proposal_times)
        config = ExperimentConfig(protocol="banyan", params=params, topology=topology,
                                  duration=duration, warmup=warmup, seed=seed,
                                  label="banyan (p=1)")
        result = ExperimentResult(config=config, metrics=metrics,
                                  messages_sent=simulation.messages_sent,
                                  bytes_sent=simulation.bytes_sent)
        results.append(result)
        row = result.row()
        row["stragglers"] = stragglers
        series["banyan (p=1)"].append(row)
    return FigureResult(
        figure="ablation-stragglers",
        title=f"fast-path hit rate vs. stragglers (n={n}, extra delay {extra_delay}s)",
        series=series,
        results=results,
    )
