"""Per-figure scenario presets (Figures 6a–6e) and ablations, as plans.

Each figure of the paper is described twice here:

* a ``plan_*`` builder returns the declarative
  :class:`repro.eval.plan.ExperimentPlan` — the grid of protocol × payload ×
  fault × workload cells, optionally fanned out over ``seeds`` independent
  replications;
* a ``figure_*`` wrapper executes that plan through
  :func:`repro.eval.runner.run_plan` (serially or with ``jobs`` worker
  processes, optionally cached in ``cache_dir``) and aggregates the
  replications into a :class:`FigureResult`, with mean ± 95% CI columns when
  more than one replication ran.

Durations default to values that keep the full suite runnable on a laptop;
pass ``duration`` / payload sizes explicitly to run longer sweeps.

Protocol line-ups follow Section 9:

* n = 19 experiments compare Banyan (f=6, p=1), Banyan (f=4, p=4), ICC
  (f=6), HotStuff (f=6), and Streamlet (f=6) — n=19 is chosen by the paper
  precisely because it is the bound for both (f=6, p=1) and (f=4, p=4).
* n = 4 experiments compare Banyan (f=1, p=1) with ICC, HotStuff, and
  Streamlet at f=1.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_series, with_ci_columns
from repro.analysis.stats import ci95_half_width, improvement_pct, mean
from repro.eval.experiment import ExperimentResult
from repro.eval.plan import ExperimentPlan, ExperimentSpec
from repro.eval.runner import ProgressCallback, run_plan
from repro.net.faults import FaultPlan
from repro.protocols.base import ProtocolParams
from repro.workload.spec import WorkloadSpec

#: Per-rank delay (``2Δ``) used for the global-topology experiments; chosen
#: above the largest simulated one-way delay so fault-free rounds have a
#: single proposer, mirroring how the paper sets the proposal/notarization
#: delays "larger than the message delay experienced without disruptions".
GLOBAL_RANK_DELAY = 0.6

#: Per-rank delay for the 4-US-datacenter crash experiment; the paper sets
#: this timeout to 3 seconds (Section 9.4).
CRASH_EXPERIMENT_RANK_DELAY = 3.0

#: Measurement columns that receive a ``<col>_ci95`` half-width column when a
#: figure aggregates more than one replication.  Identity columns (payload
#: size, crash counts, offered rate) deliberately get none.
CI_COLUMNS = (
    "mean_latency_ms", "p95_latency_ms", "latency_stddev_ms",
    "throughput_MBps", "blocks_per_s", "block_interval_ms",
    "fast_path_ratio",
    "tx_p50_ms", "tx_p95_ms", "tx_p99_ms", "goodput_tx_per_s",
)


@dataclass
class FigureResult:
    """Results of one reproduced figure.

    Attributes:
        figure: figure identifier, e.g. ``"6a"``.
        title: human-readable description.
        series: protocol label → list of result rows (dictionaries).  With
            multiple replications, rows are per-cell means and carry
            ``<col>_ci95`` half-width columns.
        results: the underlying experiment results (every replication).
        columns: report columns; ``None`` selects the figure default
            (workload scenarios report client-side columns instead).
        replications: independent replications aggregated into each row.
    """

    figure: str
    title: str
    series: Dict[str, List[Dict[str, object]]]
    results: List[ExperimentResult] = field(default_factory=list)
    columns: Optional[List[str]] = None
    replications: int = 1

    def render(self) -> str:
        """Render the figure's data as a plain-text report."""
        columns = self.columns or [
            "payload_bytes", "mean_latency_ms", "p95_latency_ms",
            "latency_stddev_ms", "throughput_MBps", "block_interval_ms",
            "fast_path_ratio", "committed_blocks"]
        columns = with_ci_columns(columns, self.series)
        title = f"Figure {self.figure}: {self.title}"
        if self.replications > 1:
            title += f" (mean of {self.replications} replications, ±95% CI)"
        return render_series(title, self.series, columns)

    def mean_latency(self, label: str, payload_bytes: Optional[int] = None) -> float:
        """Mean latency (seconds) of a protocol label at a payload size,
        averaged over replications.

        ``payload_bytes=None`` selects the label's first payload size (as a
        single-replication figure would), never a cross-payload average.
        """
        candidates = [result for result in self.results if result.label == label]
        if payload_bytes is None and candidates:
            payload_bytes = candidates[0].config.params.payload_size
        matches = [
            result.metrics.mean_latency
            for result in candidates
            if result.config.params.payload_size == payload_bytes
        ]
        if not matches:
            raise KeyError(f"no result for label {label!r} and payload {payload_bytes!r}")
        return mean(matches)

    def improvement_over(self, baseline_label: str, improved_label: str,
                         payload_bytes: Optional[int] = None) -> float:
        """Latency improvement (%) of ``improved_label`` over ``baseline_label``."""
        return improvement_pct(
            self.mean_latency(baseline_label, payload_bytes),
            self.mean_latency(improved_label, payload_bytes),
        )


# --------------------------------------------------------------------- #
# Aggregation: plan + results → figure
# --------------------------------------------------------------------- #


def _aggregate_rows(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Collapse one cell's replication rows into a mean row with CI columns.

    A single row passes through unchanged, so ``seeds=1`` output is
    byte-identical to a direct :meth:`ExperimentResult.row`.
    """
    if len(rows) == 1:
        return dict(rows[0])
    aggregated: Dict[str, object] = {}
    for key in rows[0]:
        values = [row[key] for row in rows]
        if all(isinstance(value, (int, float)) and not isinstance(value, bool)
               for value in values):
            centre = mean([float(value) for value in values])
            if all(isinstance(value, int) for value in values) and float(centre).is_integer():
                aggregated[key] = int(centre)
            else:
                aggregated[key] = round(centre, 4)
        else:
            aggregated[key] = values[0]
    for key in CI_COLUMNS:
        if key in rows[0]:
            aggregated[f"{key}_ci95"] = round(
                ci95_half_width([float(row[key]) for row in rows]), 4
            )
    return aggregated


def figure_from_plan(plan: ExperimentPlan,
                     results: Sequence[ExperimentResult]) -> FigureResult:
    """Aggregate a plan's results (in plan order) into a :class:`FigureResult`.

    Replications of one ``(series, cell)`` pair collapse into a single row of
    per-column means plus ``<col>_ci95`` half-width columns; the spec's
    ``axis`` metadata becomes extra row columns.
    """
    if len(results) != len(plan.specs):
        raise ValueError(
            f"plan has {len(plan.specs)} specs but {len(results)} results were given"
        )
    cells: Dict[object, List[Dict[str, object]]] = {}
    for spec, result in zip(plan.specs, results):
        row = result.row()
        row.update(spec.axis)
        cells.setdefault((spec.resolved_series(), spec.cell), []).append(row)
    series: Dict[str, List[Dict[str, object]]] = {}
    for (series_label, _), rows in cells.items():
        series.setdefault(series_label, []).append(_aggregate_rows(rows))
    return FigureResult(
        figure=plan.name,
        title=plan.title,
        series=series,
        results=list(results),
        columns=plan.columns,
        replications=plan.replications,
    )


def run_figure(plan: ExperimentPlan, jobs: int = 1,
               cache_dir: Optional[str] = None, use_cache: bool = True,
               progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Execute a plan and aggregate it into a :class:`FigureResult`."""
    results = run_plan(plan, jobs=jobs, cache_dir=cache_dir,
                       use_cache=use_cache, progress=progress)
    return figure_from_plan(plan, results)


# --------------------------------------------------------------------- #
# Protocol line-ups
# --------------------------------------------------------------------- #


def _lineup_n19(rank_delay: float, payload_size: int) -> List[Dict[str, object]]:
    """The five protocol configurations the n=19 experiments compare."""
    return [
        {
            "label": "banyan (p=1)",
            "protocol": "banyan",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "banyan (p=4)",
            "protocol": "banyan",
            "params": ProtocolParams(n=19, f=4, p=4, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "icc",
            "protocol": "icc",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "hotstuff",
            "protocol": "hotstuff",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "streamlet",
            "protocol": "streamlet",
            "params": ProtocolParams(n=19, f=6, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
    ]


def _lineup_n4(rank_delay: float, payload_size: int) -> List[Dict[str, object]]:
    """The protocol configurations the n=4 experiments compare."""
    return [
        {
            "label": "banyan (p=1)",
            "protocol": "banyan",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "icc",
            "protocol": "icc",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "hotstuff",
            "protocol": "hotstuff",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
        {
            "label": "streamlet",
            "protocol": "streamlet",
            "params": ProtocolParams(n=4, f=1, p=1, rank_delay=rank_delay,
                                     payload_size=payload_size),
        },
    ]


def _sweep_plan(name: str, title: str, lineup: List[Dict[str, object]],
                topology: str, payload_sizes: Sequence[int],
                duration: float, warmup: float, seed: int, seeds: int,
                faults: Optional[FaultPlan] = None) -> ExperimentPlan:
    """A plan over every (protocol, payload size) cell, fanned out over seeds."""
    specs: List[ExperimentSpec] = []
    for entry in lineup:
        for payload_size in payload_sizes:
            specs.append(ExperimentSpec(
                protocol=entry["protocol"],
                params=dataclasses.replace(entry["params"], payload_size=payload_size),
                topology=topology,
                duration=duration,
                warmup=warmup,
                seed=seed,
                faults=faults or FaultPlan.none(),
                label=entry["label"],
                cell=f"payload={payload_size}",
            ))
    return ExperimentPlan(name=name, title=title, specs=specs).with_replications(seeds)


# --------------------------------------------------------------------- #
# Figures 6a – 6e
# --------------------------------------------------------------------- #


def plan_figure_6a(payload_sizes: Sequence[int] = (100_000, 200_000, 400_000),
                   duration: float = 20.0, warmup: float = 2.0, seed: int = 0,
                   seeds: int = 1) -> ExperimentPlan:
    """Plan for Figure 6a: n=19 over 4 global datacenters."""
    lineup = _lineup_n19(GLOBAL_RANK_DELAY, payload_sizes[0])
    return _sweep_plan("6a", "n=19 across 4 global datacenters (5/5/5/4 split)",
                       lineup, "global4", payload_sizes, duration, warmup, seed, seeds)


def figure_6a(payload_sizes: Sequence[int] = (100_000, 200_000, 400_000),
              duration: float = 20.0, warmup: float = 2.0, seed: int = 0,
              seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
              use_cache: bool = True,
              progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Figure 6a: throughput vs. latency, n=19 over 4 global datacenters."""
    return run_figure(plan_figure_6a(payload_sizes, duration, warmup, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


def plan_figure_6b(payload_sizes: Sequence[int] = (500_000, 1_000_000, 1_500_000),
                   duration: float = 20.0, warmup: float = 2.0, seed: int = 0,
                   seeds: int = 1) -> ExperimentPlan:
    """Plan for Figure 6b: n=4, one replica per global datacenter."""
    lineup = _lineup_n4(GLOBAL_RANK_DELAY, payload_sizes[0])
    return _sweep_plan("6b", "n=4, one replica per global datacenter",
                       lineup, "global4", payload_sizes, duration, warmup, seed, seeds)


def figure_6b(payload_sizes: Sequence[int] = (500_000, 1_000_000, 1_500_000),
              duration: float = 20.0, warmup: float = 2.0, seed: int = 0,
              seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
              use_cache: bool = True,
              progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Figure 6b: throughput vs. latency, n=4, one replica per global datacenter."""
    return run_figure(plan_figure_6b(payload_sizes, duration, warmup, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


def plan_figure_6c(payload_size: int = 1_000_000, duration: float = 30.0,
                   warmup: float = 2.0, seed: int = 0, seeds: int = 1) -> ExperimentPlan:
    """Plan for Figure 6c: Banyan vs. ICC latency distribution, n=4."""
    lineup = [entry for entry in _lineup_n4(GLOBAL_RANK_DELAY, payload_size)
              if entry["label"] in ("banyan (p=1)", "icc")]
    return _sweep_plan("6c", "latency variance, n=4, 1 MB payload",
                       lineup, "global4", [payload_size], duration, warmup, seed, seeds)


def figure_6c(payload_size: int = 1_000_000, duration: float = 30.0,
              warmup: float = 2.0, seed: int = 0,
              seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
              use_cache: bool = True,
              progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Figure 6c: latency distribution of Banyan vs. ICC, n=4, 1 MB payload."""
    return run_figure(plan_figure_6c(payload_size, duration, warmup, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


def plan_figure_6d(crash_counts: Sequence[int] = (0, 2, 4, 6),
                   payload_size: int = 100_000, duration: float = 60.0,
                   warmup: float = 2.0, seed: int = 0, seeds: int = 1) -> ExperimentPlan:
    """Plan for Figure 6d: crash faults, n=19 over 4 US datacenters."""
    lineup = [
        ("banyan (p=1)", "banyan", ProtocolParams(n=19, f=6, p=1,
                                                  rank_delay=CRASH_EXPERIMENT_RANK_DELAY,
                                                  payload_size=payload_size)),
        ("icc", "icc", ProtocolParams(n=19, f=6, p=1,
                                      rank_delay=CRASH_EXPERIMENT_RANK_DELAY,
                                      payload_size=payload_size)),
    ]
    specs: List[ExperimentSpec] = []
    for label, protocol, params in lineup:
        for crashes in crash_counts:
            specs.append(ExperimentSpec(
                protocol=protocol, params=params, topology="us4",
                duration=duration, warmup=warmup, seed=seed,
                faults=FaultPlan.with_crashed(range(crashes)), label=label,
                cell=f"crashes={crashes}", axis={"crashed_replicas": crashes},
            ))
    plan = ExperimentPlan(
        name="6d",
        title="crash faults, n=19 across 4 US datacenters (timeout 3 s)",
        specs=specs,
    )
    return plan.with_replications(seeds)


def figure_6d(crash_counts: Sequence[int] = (0, 2, 4, 6),
              payload_size: int = 100_000, duration: float = 60.0,
              warmup: float = 2.0, seed: int = 0,
              seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
              use_cache: bool = True,
              progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Figure 6d: crash faults, n=19 over 4 US datacenters, 3 s timeout."""
    return run_figure(plan_figure_6d(crash_counts, payload_size, duration,
                                     warmup, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


def plan_figure_6e(payload_sizes: Sequence[int] = (1_000_000,), duration: float = 20.0,
                   warmup: float = 2.0, seed: int = 0, seeds: int = 1) -> ExperimentPlan:
    """Plan for Figure 6e: n=19 across 19 worldwide datacenters."""
    lineup = _lineup_n19(GLOBAL_RANK_DELAY, payload_sizes[0])
    return _sweep_plan("6e", "n=19 across a worldwide network (19 datacenters)",
                       lineup, "worldwide", payload_sizes, duration, warmup, seed, seeds)


def figure_6e(payload_sizes: Sequence[int] = (1_000_000,), duration: float = 20.0,
              warmup: float = 2.0, seed: int = 0,
              seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
              use_cache: bool = True,
              progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Figure 6e: n=19 replicas spread across 19 worldwide datacenters."""
    return run_figure(plan_figure_6e(payload_sizes, duration, warmup, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


# --------------------------------------------------------------------- #
# Client-workload scenarios (beyond the paper: true end-to-end latency)
# --------------------------------------------------------------------- #

#: Columns reported by the workload scenarios: offered load on the left,
#: client-observed behaviour on the right.
WORKLOAD_COLUMNS = [
    "offered_tx_per_s", "submitted_tx", "committed_tx", "dropped_tx",
    "pending_tx", "tx_p50_ms", "tx_p95_ms", "tx_p99_ms",
    "goodput_tx_per_s", "peak_mempool_depth",
]


def plan_saturation_sweep(rates: Sequence[float] = (10, 30, 60, 120),
                          protocol: str = "banyan", n: int = 4, f: int = 1, p: int = 1,
                          tx_size: int = 512, max_block_bytes: int = 65_536,
                          duration: float = 30.0, seed: int = 0,
                          seeds: int = 1) -> ExperimentPlan:
    """Plan for the open-loop Poisson saturation sweep (one cell per rate)."""
    params = ProtocolParams(n=n, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY)
    label = f"{protocol} (n={n}, poisson)"
    specs = [
        ExperimentSpec(
            protocol=protocol, params=params, topology="global4",
            duration=duration, warmup=0.0, seed=seed, label=label,
            workload=WorkloadSpec(
                mode="open", arrival="poisson", rate=float(rate), tx_size=tx_size,
                max_block_bytes=max_block_bytes, seed=seed,
            ),
            cell=f"rate={rate:g}", axis={"offered_tx_per_s": rate},
        )
        for rate in rates
    ]
    plan = ExperimentPlan(
        name="workload-saturation",
        title=f"open-loop Poisson saturation sweep, {protocol} n={n}",
        specs=specs,
        columns=list(WORKLOAD_COLUMNS),
    )
    return plan.with_replications(seeds)


def saturation_sweep(rates: Sequence[float] = (10, 30, 60, 120),
                     protocol: str = "banyan", n: int = 4, f: int = 1, p: int = 1,
                     tx_size: int = 512, max_block_bytes: int = 65_536,
                     duration: float = 30.0, seed: int = 0,
                     seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
                     use_cache: bool = True,
                     progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Open-loop Poisson saturation sweep: offered load vs. client latency.

    For each arrival rate, clients submit fixed-size transactions to their
    local replica's mempool following a Poisson process; proposals drain the
    proposer's mempool up to the block budget.  Below saturation, goodput
    tracks the offered rate and submit→commit latency stays near the
    consensus floor; past saturation, mempools back up and client latency
    grows without bound — the knee is the system's capacity.
    """
    return run_figure(plan_saturation_sweep(rates, protocol, n, f, p, tx_size,
                                            max_block_bytes, duration, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


def plan_flash_crowd(base_rate: float = 15.0, burst_rate: float = 250.0,
                     burst_start: float = 8.0, burst_duration: float = 4.0,
                     protocol: str = "banyan", n: int = 4, f: int = 1, p: int = 1,
                     tx_size: int = 512, max_block_bytes: int = 65_536,
                     duration: float = 40.0, seed: int = 0,
                     seeds: int = 1) -> ExperimentPlan:
    """Plan for the flash-crowd scenario (a single burst cell)."""
    params = ProtocolParams(n=n, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY)
    label = f"{protocol} (n={n}, flash crowd)"
    spec = ExperimentSpec(
        protocol=protocol, params=params, topology="global4",
        duration=duration, warmup=0.0, seed=seed, label=label,
        workload=WorkloadSpec(
            mode="open", arrival="flash-crowd", rate=base_rate,
            burst_rate=burst_rate, burst_start=burst_start,
            burst_duration=burst_duration, tx_size=tx_size,
            max_block_bytes=max_block_bytes, sample_interval=0.5, seed=seed,
        ),
        axis={"offered_tx_per_s": base_rate},
    )
    plan = ExperimentPlan(
        name="workload-flash-crowd",
        title=(f"flash crowd, {protocol} n={n}: {base_rate:g}→{burst_rate:g} tx/s "
               f"during [{burst_start:g}s, {burst_start + burst_duration:g}s)"),
        specs=[spec],
        columns=list(WORKLOAD_COLUMNS),
    )
    return plan.with_replications(seeds)


def flash_crowd(base_rate: float = 15.0, burst_rate: float = 250.0,
                burst_start: float = 8.0, burst_duration: float = 4.0,
                protocol: str = "banyan", n: int = 4, f: int = 1, p: int = 1,
                tx_size: int = 512, max_block_bytes: int = 65_536,
                duration: float = 40.0, seed: int = 0,
                seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
                use_cache: bool = True,
                progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Flash-crowd scenario: a demand spike fills the mempools, then drains.

    Arrivals run at ``base_rate`` except for a burst window at
    ``burst_rate``.  The burst exceeds the per-round block budget, so
    mempool occupancy climbs during the spike and the backlog drains over
    the following rounds — visible in the occupancy samples of the result's
    :class:`repro.smr.metrics.WorkloadMetrics`.
    """
    return run_figure(plan_flash_crowd(base_rate, burst_rate, burst_start,
                                       burst_duration, protocol, n, f, p, tx_size,
                                       max_block_bytes, duration, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


def plan_scale_sweep(replica_counts: Sequence[int] = (64, 128, 256),
                     rate: float = 20_000.0, num_clients: int = 1_000_000,
                     tx_size: int = 256, protocol: str = "banyan",
                     duration: float = 2.0, warmup: float = 0.5,
                     seed: int = 0, seeds: int = 1) -> ExperimentPlan:
    """Plan for the datacenter-scale sweep: fluid clients over the WAN matrix.

    One cell per replica count, each running the fluid client model
    (million-user populations collapse to one injection event per replica
    per tick) on the worldwide topology under the measured inter-region RTT
    matrix.  ``f = p = (n - 1) // 5`` keeps the fast path available at
    every size (``n >= 3f + 2p + 1``).
    """
    specs = [
        ExperimentSpec(
            protocol=protocol,
            params=ProtocolParams(n=n, f=(n - 1) // 5, p=(n - 1) // 5,
                                  rank_delay=GLOBAL_RANK_DELAY),
            topology="worldwide", duration=duration, warmup=warmup,
            seed=seed, label=f"{protocol} (n={n}, fluid)",
            workload=WorkloadSpec(
                mode="open", arrival="poisson", rate=rate,
                num_clients=num_clients, tx_size=tx_size,
                sample_interval=1.0, seed=seed, fluid=True,
            ),
            latency_model="wan-matrix",
            series=protocol, cell=f"n={n}", axis={"n": n},
        )
        for n in replica_counts
    ]
    return ExperimentPlan(
        name="workload-scale",
        title=f"fluid-workload scale sweep, {protocol} on the WAN matrix",
        specs=specs,
        columns=list(WORKLOAD_COLUMNS),
    ).with_replications(seeds)


def scale_sweep(replica_counts: Sequence[int] = (64, 128, 256),
                rate: float = 20_000.0, num_clients: int = 1_000_000,
                tx_size: int = 256, protocol: str = "banyan",
                duration: float = 2.0, warmup: float = 0.5,
                seed: int = 0, seeds: int = 1, jobs: int = 1,
                cache_dir: Optional[str] = None, use_cache: bool = True,
                progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Datacenter-scale sweep: goodput and latency up to n=256 replicas.

    The fluid workload keeps the event count independent of the client
    population, so a million modeled users at n=256 costs the same number
    of workload events as eight users — the run time is dominated by the
    protocol's own message complexity.
    """
    return run_figure(plan_scale_sweep(replica_counts, rate, num_clients,
                                       tx_size, protocol, duration, warmup,
                                       seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


# --------------------------------------------------------------------- #
# Transport scenarios (beyond the paper: dissemination strategies)
# --------------------------------------------------------------------- #

#: Columns reported by the uplink-contention figure: scale on the left,
#: fast-path and latency behaviour on the right.
UPLINK_COLUMNS = [
    "n", "mean_latency_ms", "p95_latency_ms", "block_interval_ms",
    "fast_path_ratio", "committed_blocks",
]


def plan_uplink_contention(replica_counts: Sequence[int] = (4, 7, 10, 13, 16, 19),
                           payload_size: int = 200_000, uplink_mbps: float = 50.0,
                           duration: float = 20.0, warmup: float = 2.0,
                           seed: int = 0, seeds: int = 1) -> ExperimentPlan:
    """Plan comparing ideal vs. contended broadcast as n grows (Banyan, p=1).

    One cell per replica count, two series: the default
    :class:`~repro.net.transport.DirectTransport` (every broadcast copy
    departs at the send instant) and the
    :class:`~repro.net.transport.ContendedUplinkTransport` with an
    ``uplink_mbps`` NIC (a proposer's n−1 proposal copies drain
    sequentially).  The gap between the series is the leader fan-out cost
    the ideal model hides; it grows with n.
    """
    specs: List[ExperimentSpec] = []
    for n in replica_counts:
        # Largest f with 3f + 2p - 1 <= n at p=1, as in the p-sweep ablation.
        f = max(1, (n - 1) // 3)
        params = ProtocolParams(n=n, f=f, p=1, rank_delay=GLOBAL_RANK_DELAY,
                                payload_size=payload_size)
        for label, transport, mbps in (
            ("banyan (ideal uplink)", "direct", None),
            ("banyan (contended uplink)", "contended", uplink_mbps),
        ):
            specs.append(ExperimentSpec(
                protocol="banyan", params=params, topology="global4",
                duration=duration, warmup=warmup, seed=seed, label=label,
                transport=transport, uplink_mbps=mbps,
                cell=f"n={n}", axis={"n": n},
            ))
    plan = ExperimentPlan(
        name="uplink",
        title=(f"leader fan-out under sender-uplink contention "
               f"({uplink_mbps:g} Mbit/s NIC, {payload_size} B proposals)"),
        specs=specs,
        columns=list(UPLINK_COLUMNS),
    )
    return plan.with_replications(seeds)


def figure_uplink_contention(replica_counts: Sequence[int] = (4, 7, 10, 13, 16, 19),
                             payload_size: int = 200_000, uplink_mbps: float = 50.0,
                             duration: float = 20.0, warmup: float = 2.0,
                             seed: int = 0, seeds: int = 1, jobs: int = 1,
                             cache_dir: Optional[str] = None, use_cache: bool = True,
                             progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Fast-path latency vs. n under contended vs. ideal broadcast.

    Under the ideal transport a proposer's n−1 proposal copies are free to
    depart simultaneously, so latency is flat in n (quorum geometry aside).
    With a finite uplink the copies serialize: the last receiver waits
    ``(n−2) · size / uplink`` before its copy even leaves the sender, votes
    arrive staggered, and the fast-path advantage shrinks as n grows — the
    leader-bottleneck effect that separates rotating-leader fast paths from
    single-leader protocols.
    """
    return run_figure(plan_uplink_contention(replica_counts, payload_size,
                                             uplink_mbps, duration, warmup,
                                             seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


# --------------------------------------------------------------------- #
# Compute scenarios (beyond the paper: CPU-bound regimes)
# --------------------------------------------------------------------- #

#: Columns reported by the crypto-bound figure: scale on the left, the
#: throughput/latency consequences and the CPU telemetry on the right.
CRYPTO_COLUMNS = [
    "n", "mean_latency_ms", "p95_latency_ms", "blocks_per_s",
    "busy_frac", "cpu_wait_ms", "committed_blocks",
]


def plan_crypto_bound(replica_counts: Sequence[int] = (4, 7, 10, 13, 16, 19),
                      payload_size: int = 100_000, compute_scale: float = 1.0,
                      duration: float = 20.0, warmup: float = 2.0,
                      seed: int = 0, seeds: int = 1) -> ExperimentPlan:
    """Plan comparing free vs. costed replica compute as n grows (Banyan, p=1).

    One cell per replica count, two series: the default
    :class:`~repro.runtime.compute.ZeroCompute` (message handling is free,
    so throughput is purely network-bound) and
    :class:`~repro.runtime.compute.CryptoCostCompute` at ``compute_scale``
    (every delivery charges hash/sign/share-verify/aggregate-verify time on
    the replica's serial core).  Votes arrive all-to-all and certificates
    verify in O(quorum), so per-round CPU work grows ~n² while the
    network-bound round length stays roughly flat — the busy fraction rises
    monotonically with n and the gap between the series is the CPU cost the
    free model hides.
    """
    specs: List[ExperimentSpec] = []
    for n in replica_counts:
        # Largest f with 3f + 2p - 1 <= n at p=1, as in the p-sweep ablation.
        f = max(1, (n - 1) // 3)
        params = ProtocolParams(n=n, f=f, p=1, rank_delay=GLOBAL_RANK_DELAY,
                                payload_size=payload_size)
        for label, compute, scale in (
            ("banyan (free compute)", "zero", 1.0),
            ("banyan (crypto compute)", "crypto", compute_scale),
        ):
            specs.append(ExperimentSpec(
                protocol="banyan", params=params, topology="global4",
                duration=duration, warmup=warmup, seed=seed, label=label,
                compute=compute, compute_scale=scale,
                cell=f"n={n}", axis={"n": n},
            ))
    plan = ExperimentPlan(
        name="crypto",
        title=(f"network-bound → CPU-bound crossover under per-message "
               f"crypto cost (scale {compute_scale:g})"),
        specs=specs,
        columns=list(CRYPTO_COLUMNS),
    )
    return plan.with_replications(seeds)


def figure_crypto_bound(replica_counts: Sequence[int] = (4, 7, 10, 13, 16, 19),
                        payload_size: int = 100_000, compute_scale: float = 1.0,
                        duration: float = 20.0, warmup: float = 2.0,
                        seed: int = 0, seeds: int = 1, jobs: int = 1,
                        cache_dir: Optional[str] = None, use_cache: bool = True,
                        progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Throughput vs. n under free vs. costed replica compute.

    With free compute the only cost of scale is quorum geometry and wire
    time, so latency and block rate are nearly flat in n.  Charging the
    cryptographic work (share verifications per all-to-all vote, aggregate
    verifications per certificate over ``⌈(n+f+1)/2⌉``- and ``n−p``-sized
    signer sets) makes per-round CPU grow ~n²: replicas' cores saturate,
    deliveries queue behind the busy core, and throughput flips from
    network-bound to CPU-bound — the WAN throughput ceiling the paper's
    aggregate-signature discussion is about.
    """
    return run_figure(plan_crypto_bound(replica_counts, payload_size,
                                        compute_scale, duration, warmup,
                                        seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


# --------------------------------------------------------------------- #
# Ablations (design-choice benches beyond the paper's figures)
# --------------------------------------------------------------------- #


def plan_ablation_p_sweep(p_values: Sequence[int] = (1, 2, 3, 4),
                          payload_size: int = 400_000, duration: float = 20.0,
                          warmup: float = 2.0, seed: int = 0,
                          seeds: int = 1) -> ExperimentPlan:
    """Plan sweeping the fast-path parameter ``p`` at n=19."""
    specs: List[ExperimentSpec] = []
    for p in p_values:
        f = (19 + 1 - 2 * p) // 3
        specs.append(ExperimentSpec(
            protocol="banyan",
            params=ProtocolParams(n=19, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY,
                                  payload_size=payload_size),
            topology="global4", duration=duration, warmup=warmup, seed=seed,
            label=f"banyan (f={f}, p={p})",
            cell=f"p={p}", axis={"p": p, "f": f},
        ))
    plan = ExperimentPlan(name="ablation-p",
                          title="fast-path parameter sweep at n=19", specs=specs)
    return plan.with_replications(seeds)


def ablation_p_sweep(p_values: Sequence[int] = (1, 2, 3, 4), payload_size: int = 400_000,
                     duration: float = 20.0, warmup: float = 2.0, seed: int = 0,
                     seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
                     use_cache: bool = True,
                     progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Sweep the fast-path parameter ``p`` at n=19 (f adjusted to the bound).

    For each ``p`` we pick the largest ``f`` with ``3f + 2p - 1 <= 19`` so the
    comparison stays at 19 replicas, mirroring the paper's choice of n=19.
    """
    return run_figure(plan_ablation_p_sweep(p_values, payload_size, duration,
                                            warmup, seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


def plan_ablation_stragglers(straggler_counts: Sequence[int] = (0, 1, 2),
                             extra_delay: float = 1.0, payload_size: int = 100_000,
                             duration: float = 20.0, warmup: float = 2.0,
                             seed: int = 0, seeds: int = 1) -> ExperimentPlan:
    """Plan planting straggler replicas (one cell per straggler count)."""
    n, f, p = 7, 2, 1
    params = ProtocolParams(n=n, f=f, p=p, rank_delay=GLOBAL_RANK_DELAY,
                            payload_size=payload_size)
    specs = [
        ExperimentSpec(
            protocol="banyan", params=params, topology="global4",
            duration=duration, warmup=warmup, seed=seed, label="banyan (p=1)",
            stragglers=stragglers, straggler_delay=extra_delay,
            cell=f"stragglers={stragglers}", axis={"stragglers": stragglers},
        )
        for stragglers in straggler_counts
    ]
    plan = ExperimentPlan(
        name="ablation-stragglers",
        title=f"fast-path hit rate vs. stragglers (n={n}, extra delay {extra_delay}s)",
        specs=specs,
    )
    return plan.with_replications(seeds)


def ablation_stragglers(straggler_counts: Sequence[int] = (0, 1, 2),
                        extra_delay: float = 1.0, payload_size: int = 100_000,
                        duration: float = 20.0, warmup: float = 2.0,
                        seed: int = 0,
                        seeds: int = 1, jobs: int = 1, cache_dir: Optional[str] = None,
                        use_cache: bool = True,
                        progress: Optional[ProgressCallback] = None) -> FigureResult:
    """Fast-path hit rate as a function of the number of straggler replicas.

    ``p = 1`` Banyan needs all but one replica to respond quickly; planting
    stragglers (honest replicas whose outbound messages are delayed) shows
    the fast-path hit rate degrading gracefully while latency falls back to
    the ICC slow path — the "no penalties" property of the dual mode.  The
    interesting regime is ``p < stragglers <= n - quorum``: the slow-path
    quorums are still met by the prompt replicas, so SP-finalization
    overtakes the fast path.
    """
    return run_figure(plan_ablation_stragglers(straggler_counts, extra_delay,
                                               payload_size, duration, warmup,
                                               seed, seeds),
                      jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                      progress=progress)


#: Plan builders by figure name (used by the CLI's ``figure`` subcommand).
PLAN_BUILDERS = {
    "6a": plan_figure_6a,
    "6b": plan_figure_6b,
    "6c": plan_figure_6c,
    "6d": plan_figure_6d,
    "6e": plan_figure_6e,
    "ablation-p": plan_ablation_p_sweep,
    "ablation-stragglers": plan_ablation_stragglers,
    "uplink": plan_uplink_contention,
    "crypto": plan_crypto_bound,
}
