"""Declarative experiment plans: *what* to run, separated from *how*.

An :class:`ExperimentSpec` is the picklable, JSON-serialisable description of
one experiment cell — protocol, parameters, topology (by name or placement),
faults, workload, seed, replication index, and the label/axis metadata that
places the result in a figure.  An :class:`ExperimentPlan` is an ordered list
of specs plus presentation metadata; the paper's figures become plan builders
(:mod:`repro.eval.scenarios`) and a single engine executes any plan serially
or in parallel with caching (:mod:`repro.eval.runner`).

Two properties make the split work:

* **content hashing** — :meth:`ExperimentSpec.content_hash` is a stable
  digest of the spec's canonical JSON form, so the runner can cache results
  on disk and skip cells that already ran, across processes and invocations;
* **sub-seed derivation** — :func:`derive_subseed` deterministically expands
  a base seed into independent per-replication, per-component seeds, so
  network jitter and workload arrivals are uncorrelated across replications
  while every run stays reproducible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.eval.experiment import (
    ExperimentConfig,
    _compute_fields,
    _scheduler_fields,
    _latency_fields,
    _transport_fields,
)
from repro.net.faults import FaultPlan
from repro.net.topology import (
    Topology,
    placement_names,
    topology_by_name,
    topology_from_names,
)
from repro.protocols.base import ProtocolParams
from repro.workload.spec import WorkloadSpec

#: Version tag mixed into every content hash; bump when the execution
#: semantics change so stale cached results are not reused.
PLAN_FORMAT = 1


def canonical_hash(payload: Dict[str, object]) -> str:
    """Stable hex digest of a JSON-ready payload's canonical form.

    The payload is serialised with sorted keys and minimal separators, so
    two semantically equal payloads digest identically across processes and
    platforms.  Both experiment specs and chaos trial specs key their
    result caches on this.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def derive_subseed(base_seed: int, replication: int, component: str) -> int:
    """Derive an independent sub-seed for one replication of one component.

    The derivation hashes ``base_seed : replication : component`` with
    SHA-256, so distinct replications and distinct components (for example
    ``"net"`` jitter versus ``"workload"`` arrivals) receive uncorrelated
    seeds, while the mapping is stable across processes and platforms.

    Replication 0 returns ``base_seed`` unchanged: a single-replication plan
    reproduces exactly the run a plain :func:`repro.eval.experiment.run_experiment`
    call with the base seed would produce.
    """
    if replication == 0:
        return base_seed
    digest = hashlib.sha256(
        f"{base_seed}:{replication}:{component}".encode("utf-8")
    ).hexdigest()
    return int(digest[:12], 16)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment cell of a plan, fully described by data.

    Unlike :class:`repro.eval.experiment.ExperimentConfig`, a spec references
    its topology by *name* (or by a tuple of datacenter region names), so it
    is picklable, hashable by content, and JSON-serialisable — the properties
    the parallel runner and the result cache need.

    Attributes:
        protocol: registered protocol name.
        params: protocol parameters.
        topology: named topology (a key of
            :data:`repro.net.topology.TOPOLOGY_FACTORIES`), an explicit tuple
            of AWS region names (one per replica), or ``None`` for the
            default placement.
        duration: simulated run length in seconds.
        warmup: initial seconds excluded from the measurements.
        seed: network seed (latency jitter, drops) of this replication.
        faults: crash / drop / partition plan.
        workload: optional client workload driving the run.
        label: report label (defaults to the protocol name).
        stragglers: honest straggler replicas with delayed outbound messages.
        straggler_delay: extra outbound delay per straggler, in seconds.
        transport: dissemination strategy name (``"direct"``,
            ``"contended"``, ``"relay"``).
        uplink_mbps: NIC capacity in Mbit/s for the contended transport.
        relays: relay fan-out for the relay transport.
        compute: replica compute-model name (``"zero"``, ``"crypto"``).
        compute_scale: cost multiplier for the crypto compute model.
        latency_model: topology-derived latency model name (``"geo"``,
            ``"wan-matrix"``).
        scheduler: event-scheduler backend (``"auto"``, ``"heap"``,
            ``"calendar"``); a performance knob — executions are
            byte-identical across backends.
        series: figure series this cell belongs to (defaults to ``label``).
        cell: identifier of the cell within its series (e.g.
            ``"payload=400000"``); replications of one cell share it.
        replication: replication index within the cell.
        axis: extra row columns describing the cell's position on the
            figure's x-axis (e.g. ``{"crashed_replicas": 4}``).
    """

    protocol: str
    params: ProtocolParams
    topology: Optional[Union[str, Tuple[str, ...]]] = None
    duration: float = 20.0
    warmup: float = 2.0
    seed: int = 0
    faults: FaultPlan = field(default_factory=FaultPlan.none)
    workload: Optional[WorkloadSpec] = None
    label: Optional[str] = None
    stragglers: int = 0
    straggler_delay: float = 1.0
    transport: str = "direct"
    uplink_mbps: Optional[float] = None
    relays: int = 2
    compute: str = "zero"
    compute_scale: float = 1.0
    latency_model: str = "geo"
    scheduler: str = "auto"
    series: Optional[str] = None
    cell: str = ""
    replication: int = 0
    axis: Dict[str, object] = field(default_factory=dict)

    def resolved_label(self) -> str:
        """The report label."""
        return self.label or self.protocol

    def resolved_series(self) -> str:
        """The figure series this cell belongs to."""
        return self.series or self.resolved_label()

    def resolved_topology(self) -> Optional[Topology]:
        """Build the spec's topology (``None`` keeps the config default)."""
        if self.topology is None:
            return None
        if isinstance(self.topology, str):
            return topology_by_name(self.topology, self.params.n)
        return topology_from_names(self.topology)

    def to_config(self) -> ExperimentConfig:
        """Materialise the runnable :class:`ExperimentConfig`."""
        return ExperimentConfig(
            protocol=self.protocol,
            params=self.params,
            topology=self.resolved_topology(),
            duration=self.duration,
            warmup=self.warmup,
            seed=self.seed,
            faults=self.faults,
            label=self.label,
            workload=self.workload,
            stragglers=self.stragglers,
            straggler_delay=self.straggler_delay,
            transport=self.transport,
            uplink_mbps=self.uplink_mbps,
            relays=self.relays,
            compute=self.compute,
            compute_scale=self.compute_scale,
            latency_model=self.latency_model,
            scheduler=self.scheduler,
        )

    @classmethod
    def from_config(cls, config: ExperimentConfig, **meta: object) -> "ExperimentSpec":
        """Describe an existing config as a spec.

        The config's topology is captured as its region-name placement;
        ``meta`` forwards spec-only fields (``series``, ``cell``,
        ``replication``, ``axis``).

        Raises:
            ValueError: if the config cannot be expressed as data — it
                carries a latency-model override, or its topology uses
                datacenters that are not (exactly) catalogue entries of
                :data:`repro.net.topology.AWS_REGIONS`, so rebuilding the
                spec elsewhere would run on a different network.
        """
        if config.latency is not None:
            raise ValueError("configs with a latency-model override have no spec form")
        topology = None
        if config.topology is not None:
            topology = tuple(placement_names(config.topology))
        return cls(
            protocol=config.protocol,
            params=config.params,
            topology=topology,
            duration=config.duration,
            warmup=config.warmup,
            seed=config.seed,
            faults=config.faults,
            workload=config.workload,
            label=config.label,
            stragglers=config.stragglers,
            straggler_delay=config.straggler_delay,
            transport=config.transport,
            uplink_mbps=config.uplink_mbps,
            relays=config.relays,
            compute=config.compute,
            compute_scale=config.compute_scale,
            latency_model=config.latency_model,
            scheduler=config.scheduler,
            **meta,
        )

    # ------------------------------------------------------------------ #
    # Serialization and hashing
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`).

        Transport fields are emitted only when non-default, so specs that
        do not opt into a transport serialise — and therefore content-hash —
        exactly as they did before the transport layer existed, keeping
        existing result caches valid.
        """
        data = {
            "protocol": self.protocol,
            "params": self.params.to_dict(),
            "topology": (
                list(self.topology)
                if isinstance(self.topology, tuple) else self.topology
            ),
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "faults": self.faults.to_dict(),
            "workload": self.workload.to_dict() if self.workload is not None else None,
            "label": self.label,
            "stragglers": self.stragglers,
            "straggler_delay": self.straggler_delay,
            "series": self.series,
            "cell": self.cell,
            "replication": self.replication,
            "axis": dict(self.axis),
        }
        data.update(_transport_fields(self.transport, self.uplink_mbps, self.relays))
        data.update(_compute_fields(self.compute, self.compute_scale))
        data.update(_latency_fields(self.latency_model))
        data.update(_scheduler_fields(self.scheduler))
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        topology = data.get("topology")
        workload = data.get("workload")
        return cls(
            protocol=str(data["protocol"]),
            params=ProtocolParams.from_dict(data["params"]),
            topology=tuple(topology) if isinstance(topology, list) else topology,
            duration=float(data["duration"]),
            warmup=float(data["warmup"]),
            seed=int(data["seed"]),
            faults=FaultPlan.from_dict(data.get("faults", {})),
            workload=WorkloadSpec.from_dict(workload) if workload is not None else None,
            label=data.get("label"),
            stragglers=int(data.get("stragglers", 0)),
            straggler_delay=float(data.get("straggler_delay", 1.0)),
            transport=str(data.get("transport", "direct")),
            uplink_mbps=(
                float(data["uplink_mbps"])
                if data.get("uplink_mbps") is not None else None
            ),
            relays=int(data.get("relays", 2)),
            compute=str(data.get("compute", "zero")),
            compute_scale=float(data.get("compute_scale", 1.0)),
            latency_model=str(data.get("latency_model", "geo")),
            scheduler=str(data.get("scheduler", "auto")),
            series=data.get("series"),
            cell=str(data.get("cell", "")),
            replication=int(data.get("replication", 0)),
            axis=dict(data.get("axis", {})),
        )

    def content_hash(self) -> str:
        """Stable hex digest of the spec's canonical JSON form.

        Two specs hash equal iff they describe the same experiment (including
        presentation metadata, so relabelling a cell re-runs it rather than
        serving a stale row).  The runner uses this as the cache key.
        """
        return canonical_hash({"format": PLAN_FORMAT, "spec": self.to_dict()})

    # ------------------------------------------------------------------ #
    # Replication fan-out
    # ------------------------------------------------------------------ #

    def replicated(self, replications: int) -> List["ExperimentSpec"]:
        """Fan this cell out into ``replications`` independent runs.

        Replication 0 is this spec verbatim; replication ``k > 0`` derives
        fresh network and workload seeds via :func:`derive_subseed`, so the
        replications sample independent jitter and arrival randomness.

        Raises:
            ValueError: if ``replications`` is not positive.
        """
        if replications < 1:
            raise ValueError("replications must be positive")
        specs: List[ExperimentSpec] = []
        for k in range(replications):
            workload = self.workload
            if workload is not None and k > 0:
                workload = dataclasses.replace(
                    workload, seed=derive_subseed(workload.seed, k, "workload")
                )
            specs.append(dataclasses.replace(
                self,
                seed=derive_subseed(self.seed, k, "net"),
                workload=workload,
                replication=k,
            ))
        return specs


@dataclass
class ExperimentPlan:
    """An ordered collection of experiment specs plus figure metadata.

    The spec order is the result order: the runner returns one
    :class:`repro.eval.experiment.ExperimentResult` per spec, in plan order,
    regardless of how many worker processes executed them.

    Attributes:
        name: plan identifier (e.g. ``"6a"``).
        title: human-readable description.
        specs: the experiment cells, replications expanded.
        columns: report columns; ``None`` selects the figure default.
        replications: replications per cell (bookkeeping for rendering).
    """

    name: str
    title: str
    specs: List[ExperimentSpec] = field(default_factory=list)
    columns: Optional[List[str]] = None
    replications: int = 1

    def __len__(self) -> int:
        return len(self.specs)

    def with_replications(self, replications: int) -> "ExperimentPlan":
        """A copy of the plan with every cell fanned out over sub-seeds.

        Replications of one cell stay adjacent in the spec order, so results
        group naturally and a partially cached plan re-runs contiguous gaps.
        """
        specs: List[ExperimentSpec] = []
        for spec in self.specs:
            specs.extend(spec.replicated(replications))
        return ExperimentPlan(
            name=self.name,
            title=self.title,
            specs=specs,
            columns=list(self.columns) if self.columns is not None else None,
            replications=replications,
        )

    def cells(self) -> List[Tuple[str, str]]:
        """Distinct ``(series, cell)`` pairs in first-occurrence order."""
        seen: List[Tuple[str, str]] = []
        for spec in self.specs:
            key = (spec.resolved_series(), spec.cell)
            if key not in seen:
                seen.append(key)
        return seen

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "title": self.title,
            "specs": [spec.to_dict() for spec in self.specs],
            "columns": list(self.columns) if self.columns is not None else None,
            "replications": self.replications,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        columns = data.get("columns")
        return cls(
            name=str(data["name"]),
            title=str(data["title"]),
            specs=[ExperimentSpec.from_dict(spec) for spec in data.get("specs", [])],
            columns=list(columns) if columns is not None else None,
            replications=int(data.get("replications", 1)),
        )


def payload_sweep_plan(base: ExperimentSpec, payload_sizes: Sequence[int],
                       name: str = "payload-sweep",
                       title: str = "payload-size sweep") -> ExperimentPlan:
    """Build a plan varying ``base`` over payload sizes (one cell per size)."""
    specs = [
        dataclasses.replace(
            base,
            params=dataclasses.replace(base.params, payload_size=size),
            cell=f"payload={size}",
        )
        for size in payload_sizes
    ]
    return ExperimentPlan(name=name, title=title, specs=specs)
