"""Fault injection: crashes, message loss, and partitions.

The paper's crash-fault experiment (Section 9.4, Figure 6d) kills a subset of
replicas and measures throughput and block intervals; the protocol analysis
also requires tolerating asynchrony (arbitrary message delay/loss before GST)
and Byzantine replicas (handled separately in :mod:`repro.byzantine`).

A :class:`FaultPlan` combines:

* a :class:`CrashSchedule` — which replicas crash and when;
* a drop probability — uniform random message loss;
* a :class:`PartitionPlan` — time windows during which two groups of
  replicas cannot exchange messages (used to model periods of asynchrony).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CrashSchedule:
    """Replica crash times.

    Attributes:
        crash_times: mapping replica id → simulation time (seconds) at which
            the replica stops sending and receiving.  A time of 0 means the
            replica is down from the start.
    """

    crash_times: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def crashed_from_start(cls, replica_ids: Iterable[int]) -> "CrashSchedule":
        """Crash the given replicas before the experiment begins."""
        return cls(crash_times={replica_id: 0.0 for replica_id in replica_ids})

    def is_crashed(self, replica_id: int, at_time: float) -> bool:
        """Return whether ``replica_id`` is crashed at ``at_time``."""
        crash_time = self.crash_times.get(replica_id)
        return crash_time is not None and at_time >= crash_time

    def crashed_replicas(self, at_time: float) -> FrozenSet[int]:
        """Return the set of replicas crashed at ``at_time``."""
        return frozenset(
            replica_id
            for replica_id, crash_time in self.crash_times.items()
            if at_time >= crash_time
        )


@dataclass(frozen=True)
class PartitionWindow:
    """A time window during which two replica groups are disconnected."""

    start: float
    end: float
    group_a: FrozenSet[int]
    group_b: FrozenSet[int]

    def separates(self, sender: int, receiver: int, at_time: float) -> bool:
        """Return whether the partition blocks ``sender → receiver`` at ``at_time``."""
        if not (self.start <= at_time < self.end):
            return False
        return (sender in self.group_a and receiver in self.group_b) or (
            sender in self.group_b and receiver in self.group_a
        )


@dataclass(frozen=True)
class PartitionPlan:
    """A collection of partition windows."""

    windows: Tuple[PartitionWindow, ...] = ()

    @classmethod
    def single(cls, start: float, end: float, group_a: Sequence[int],
               group_b: Sequence[int]) -> "PartitionPlan":
        """Create a plan with one partition window."""
        return cls(
            windows=(
                PartitionWindow(
                    start=start,
                    end=end,
                    group_a=frozenset(group_a),
                    group_b=frozenset(group_b),
                ),
            )
        )

    def blocks(self, sender: int, receiver: int, at_time: float) -> bool:
        """Return whether any window blocks the message."""
        return any(window.separates(sender, receiver, at_time) for window in self.windows)


class FaultPlan:
    """Combined fault injection consulted by the network on every message."""

    def __init__(
        self,
        crash_schedule: Optional[CrashSchedule] = None,
        drop_probability: float = 0.0,
        partitions: Optional[PartitionPlan] = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        self.crash_schedule = crash_schedule or CrashSchedule()
        self.drop_probability = drop_probability
        self.partitions = partitions or PartitionPlan()

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan with no faults."""
        return cls()

    @classmethod
    def with_crashed(cls, replica_ids: Iterable[int]) -> "FaultPlan":
        """A plan in which the given replicas are crashed from the start."""
        return cls(crash_schedule=CrashSchedule.crashed_from_start(replica_ids))

    def is_crashed(self, replica_id: int, at_time: float) -> bool:
        """Return whether ``replica_id`` is crashed at ``at_time``."""
        return self.crash_schedule.is_crashed(replica_id, at_time)

    def should_drop(self, sender: int, receiver: int, at_time: float,
                    rng: random.Random) -> bool:
        """Decide whether a ``sender → receiver`` message at ``at_time`` is lost.

        Crashed endpoints and random loss drop the message.  Partitions do
        *not* drop — in the partially synchronous model a partition is a
        period of asynchrony during which messages are arbitrarily delayed
        but eventually delivered; see :meth:`partition_release`.
        """
        if self.is_crashed(sender, at_time) or self.is_crashed(receiver, at_time):
            return True
        if self.drop_probability > 0 and rng.random() < self.drop_probability:
            return True
        return False

    def partition_release(self, sender: int, receiver: int, at_time: float) -> Optional[float]:
        """Return when a partition-blocked message may start travelling.

        ``None`` means the message is not blocked at ``at_time``.  Otherwise
        the earliest time at which no partition window separates the two
        replicas is returned (messages are held back, not lost, modelling a
        period of asynchrony before GST).
        """
        release = at_time
        blocked = True
        # Windows may chain back to back; iterate until no window blocks.
        for _ in range(len(self.partitions.windows) + 1):
            blocked = False
            for window in self.partitions.windows:
                if window.separates(sender, receiver, release):
                    release = max(release, window.end)
                    blocked = True
            if not blocked:
                break
        if release <= at_time:
            return None
        return release

    def correct_replicas(self, replica_ids: Sequence[int], at_time: float = float("inf")) -> List[int]:
        """Return the replicas never crashed before ``at_time``."""
        return [r for r in replica_ids if not self.is_crashed(r, at_time)]

    # ------------------------------------------------------------------ #
    # Serialization (for experiment plans and result caches)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`).

        Replica ids become string keys (JSON objects) and partition groups
        become sorted lists, so equal plans serialize identically — the
        experiment cache keys on this representation.
        """
        return {
            "crash_times": {
                str(replica_id): crash_time
                for replica_id, crash_time in sorted(self.crash_schedule.crash_times.items())
            },
            "drop_probability": self.drop_probability,
            "partitions": [
                {
                    "start": window.start,
                    "end": window.end,
                    "group_a": sorted(window.group_a),
                    "group_b": sorted(window.group_b),
                }
                for window in self.partitions.windows
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        crash_times = {
            int(replica_id): float(crash_time)
            for replica_id, crash_time in data.get("crash_times", {}).items()
        }
        windows = tuple(
            PartitionWindow(
                start=float(window["start"]),
                end=float(window["end"]),
                group_a=frozenset(int(r) for r in window["group_a"]),
                group_b=frozenset(int(r) for r in window["group_b"]),
            )
            for window in data.get("partitions", [])
        )
        return cls(
            crash_schedule=CrashSchedule(crash_times=crash_times),
            drop_probability=float(data.get("drop_probability", 0.0)),
            partitions=PartitionPlan(windows=windows),
        )
