"""Fault injection: crashes (with recovery), message loss, and partitions.

The paper's crash-fault experiment (Section 9.4, Figure 6d) kills a subset of
replicas and measures throughput and block intervals; the protocol analysis
also requires tolerating asynchrony (arbitrary message delay/loss before GST)
and Byzantine replicas (handled separately in :mod:`repro.byzantine`).

A :class:`FaultPlan` combines:

* a :class:`CrashSchedule` — which replicas crash (and optionally recover)
  and when;
* a drop probability — uniform random message loss;
* a tuple of :class:`LossBurst` windows — time-bounded message-loss storms
  on top of the uniform probability;
* a :class:`PartitionPlan` — time windows during which two groups of
  replicas cannot exchange messages (used to model periods of asynchrony).

**Boundary semantics.**  Every fault interval in this module is half-open,
``[start, end)``: a fault is active at exactly its start instant and
inactive at exactly its end instant.  Concretely,

* a replica with ``crash_times[r] = t`` is crashed at ``t`` itself, and one
  with ``recover_times[r] = t'`` is alive again at exactly ``t'`` (the
  crash window is ``[t, t')``, or ``[t, ∞)`` without a recovery);
* a :class:`PartitionWindow` separates its groups during ``[start, end)``
  — a message travelling at exactly ``end`` is unaffected;
* a :class:`LossBurst` applies its loss probability during ``[start, end)``.

The same rule is applied on both sides of a message's life: the *send-time*
check (:meth:`FaultPlan.should_drop`, consulted by the transport) and the
*delivery-time* check (the simulator re-testing the receiver when the copy
arrives) use the identical :meth:`FaultPlan.is_crashed` predicate, so a
crash at time ``t`` symmetrically kills sends departing at ``t`` and
deliveries arriving at ``t``.  A copy already in flight when its receiver
crashes is dropped on arrival; a copy arriving at or after the receiver's
recovery instant is delivered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CrashSchedule:
    """Replica crash (and optional recovery) times.

    Attributes:
        crash_times: mapping replica id → simulation time (seconds) at which
            the replica stops sending and receiving.  A time of 0 means the
            replica is down from the start.
        recover_times: mapping replica id → time at which a crashed replica
            comes back up.  The crash window is half-open,
            ``[crash_times[r], recover_times[r])``; replicas without an
            entry stay down forever.  Recovery models a restart with
            durable protocol state: the replica resumes with the state it
            had at the crash instant, but timers that fired while it was
            down are lost (the runtime simply never delivers them).
    """

    crash_times: Dict[int, float] = field(default_factory=dict)
    recover_times: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for replica_id, recover_time in self.recover_times.items():
            crash_time = self.crash_times.get(replica_id)
            if crash_time is None:
                raise ValueError(
                    f"replica {replica_id} has a recovery but no crash time"
                )
            if recover_time <= crash_time:
                raise ValueError(
                    f"replica {replica_id} must recover strictly after crashing"
                )

    @classmethod
    def crashed_from_start(cls, replica_ids: Iterable[int]) -> "CrashSchedule":
        """Crash the given replicas before the experiment begins."""
        return cls(crash_times={replica_id: 0.0 for replica_id in replica_ids})

    def is_crashed(self, replica_id: int, at_time: float) -> bool:
        """Return whether ``replica_id`` is crashed at ``at_time``.

        The crash window is half-open: crashed at exactly the crash time,
        alive again at exactly the recovery time.
        """
        crash_time = self.crash_times.get(replica_id)
        if crash_time is None or at_time < crash_time:
            return False
        recover_time = self.recover_times.get(replica_id)
        return recover_time is None or at_time < recover_time

    def recover_time(self, replica_id: int) -> Optional[float]:
        """Return when ``replica_id`` recovers, or ``None`` if it never does."""
        return self.recover_times.get(replica_id)

    def crashed_replicas(self, at_time: float) -> FrozenSet[int]:
        """Return the set of replicas crashed at ``at_time``."""
        return frozenset(
            replica_id
            for replica_id in self.crash_times
            if self.is_crashed(replica_id, at_time)
        )


@dataclass(frozen=True)
class LossBurst:
    """A time window during which messages are additionally lost.

    Models a loss storm (a flapping switch, a congested peering link): every
    message sent during ``[start, end)`` is dropped with ``probability``,
    *on top of* the plan's uniform drop probability.

    Attributes:
        start: burst start (inclusive).
        end: burst end (exclusive).
        probability: per-message loss probability inside the window.
    """

    start: float
    end: float
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("loss-burst probability must be in [0, 1]")
        if self.end <= self.start:
            raise ValueError("loss-burst window must have positive length")

    def covers(self, at_time: float) -> bool:
        """Return whether ``at_time`` falls inside the half-open window."""
        return self.start <= at_time < self.end


@dataclass(frozen=True)
class PartitionWindow:
    """A time window during which two replica groups are disconnected.

    The window is half-open: the partition separates its groups at exactly
    ``start`` and no longer separates them at exactly ``end``.
    """

    start: float
    end: float
    group_a: FrozenSet[int]
    group_b: FrozenSet[int]

    def separates(self, sender: int, receiver: int, at_time: float) -> bool:
        """Return whether the partition blocks ``sender → receiver`` at ``at_time``."""
        if not (self.start <= at_time < self.end):
            return False
        return (sender in self.group_a and receiver in self.group_b) or (
            sender in self.group_b and receiver in self.group_a
        )


@dataclass(frozen=True)
class PartitionPlan:
    """A collection of partition windows."""

    windows: Tuple[PartitionWindow, ...] = ()

    @classmethod
    def single(cls, start: float, end: float, group_a: Sequence[int],
               group_b: Sequence[int]) -> "PartitionPlan":
        """Create a plan with one partition window."""
        return cls(
            windows=(
                PartitionWindow(
                    start=start,
                    end=end,
                    group_a=frozenset(group_a),
                    group_b=frozenset(group_b),
                ),
            )
        )

    def blocks(self, sender: int, receiver: int, at_time: float) -> bool:
        """Return whether any window blocks the message."""
        return any(window.separates(sender, receiver, at_time) for window in self.windows)


class FaultPlan:
    """Combined fault injection consulted by the network on every message."""

    def __init__(
        self,
        crash_schedule: Optional[CrashSchedule] = None,
        drop_probability: float = 0.0,
        partitions: Optional[PartitionPlan] = None,
        loss_bursts: Sequence[LossBurst] = (),
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        self.crash_schedule = crash_schedule or CrashSchedule()
        self.drop_probability = drop_probability
        self.partitions = partitions or PartitionPlan()
        self.loss_bursts: Tuple[LossBurst, ...] = tuple(loss_bursts)

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan with no faults."""
        return cls()

    @classmethod
    def with_crashed(cls, replica_ids: Iterable[int]) -> "FaultPlan":
        """A plan in which the given replicas are crashed from the start."""
        return cls(crash_schedule=CrashSchedule.crashed_from_start(replica_ids))

    def is_crashed(self, replica_id: int, at_time: float) -> bool:
        """Return whether ``replica_id`` is crashed at ``at_time``."""
        return self.crash_schedule.is_crashed(replica_id, at_time)

    def should_drop(self, sender: int, receiver: int, at_time: float,
                    rng: random.Random) -> bool:
        """Decide whether a ``sender → receiver`` message at ``at_time`` is lost.

        Crashed endpoints and random loss (uniform or burst) drop the
        message.  Partitions do *not* drop — in the partially synchronous
        model a partition is a period of asynchrony during which messages
        are arbitrarily delayed but eventually delivered; see
        :meth:`partition_release`.

        The rng is consulted only for the probabilistic checks that apply
        at ``at_time`` (the uniform draw when ``drop_probability > 0``, one
        draw per covering burst), so executions without those faults
        consume the stream exactly as before.
        """
        if self.is_crashed(sender, at_time) or self.is_crashed(receiver, at_time):
            return True
        if self.drop_probability > 0 and rng.random() < self.drop_probability:
            return True
        for burst in self.loss_bursts:
            if burst.covers(at_time) and rng.random() < burst.probability:
                return True
        return False

    def drop_draws_rng(self, at_time: float) -> bool:
        """Whether :meth:`should_drop` may consume the rng at ``at_time``.

        True when the uniform drop probability is active or a loss burst
        covers ``at_time``.  Crash and partition checks never draw, so when
        this is False a batched caller may reorder fault checks relative to
        propagation sampling without perturbing the rng stream.
        """
        if self.drop_probability > 0:
            return True
        for burst in self.loss_bursts:
            if burst.covers(at_time):
                return True
        return False

    def partition_release(self, sender: int, receiver: int, at_time: float) -> Optional[float]:
        """Return when a partition-blocked message may start travelling.

        ``None`` means the message is not blocked at ``at_time``.  Otherwise
        the earliest time at which no partition window separates the two
        replicas is returned (messages are held back, not lost, modelling a
        period of asynchrony before GST).  Windows are half-open, so a
        blocked message is released at exactly the blocking window's end.
        """
        release = at_time
        blocked = True
        # Windows may chain back to back; iterate until no window blocks.
        for _ in range(len(self.partitions.windows) + 1):
            blocked = False
            for window in self.partitions.windows:
                if window.separates(sender, receiver, release):
                    release = max(release, window.end)
                    blocked = True
            if not blocked:
                break
        if release <= at_time:
            return None
        return release

    def correct_replicas(self, replica_ids: Sequence[int], at_time: float = float("inf")) -> List[int]:
        """Return the replicas not crashed at ``at_time`` (default: the end
        of time, i.e. replicas that are eventually up — a replica with a
        recovery time counts as correct)."""
        return [r for r in replica_ids if not self.is_crashed(r, at_time)]

    # ------------------------------------------------------------------ #
    # Serialization (for experiment plans and result caches)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dictionary (inverse of :meth:`from_dict`).

        Replica ids become string keys (JSON objects) and partition groups
        become sorted lists, so equal plans serialize identically — the
        experiment cache keys on this representation.  The recovery and
        loss-burst fields are emitted only when non-empty, so plans written
        before those faults existed serialize (and content-hash) exactly as
        they always did.
        """
        data: Dict[str, object] = {
            "crash_times": {
                str(replica_id): crash_time
                for replica_id, crash_time in sorted(self.crash_schedule.crash_times.items())
            },
            "drop_probability": self.drop_probability,
            "partitions": [
                {
                    "start": window.start,
                    "end": window.end,
                    "group_a": sorted(window.group_a),
                    "group_b": sorted(window.group_b),
                }
                for window in self.partitions.windows
            ],
        }
        if self.crash_schedule.recover_times:
            data["recover_times"] = {
                str(replica_id): recover_time
                for replica_id, recover_time in sorted(self.crash_schedule.recover_times.items())
            }
        if self.loss_bursts:
            data["loss_bursts"] = [
                {"start": burst.start, "end": burst.end,
                 "probability": burst.probability}
                for burst in self.loss_bursts
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        crash_times = {
            int(replica_id): float(crash_time)
            for replica_id, crash_time in data.get("crash_times", {}).items()
        }
        recover_times = {
            int(replica_id): float(recover_time)
            for replica_id, recover_time in data.get("recover_times", {}).items()
        }
        windows = tuple(
            PartitionWindow(
                start=float(window["start"]),
                end=float(window["end"]),
                group_a=frozenset(int(r) for r in window["group_a"]),
                group_b=frozenset(int(r) for r in window["group_b"]),
            )
            for window in data.get("partitions", [])
        )
        bursts = tuple(
            LossBurst(start=float(burst["start"]), end=float(burst["end"]),
                      probability=float(burst["probability"]))
            for burst in data.get("loss_bursts", [])
        )
        return cls(
            crash_schedule=CrashSchedule(crash_times=crash_times,
                                         recover_times=recover_times),
            drop_probability=float(data.get("drop_probability", 0.0)),
            partitions=PartitionPlan(windows=windows),
            loss_bursts=bursts,
        )
