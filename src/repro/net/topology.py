"""Datacenters and replica placements.

The paper's three testbeds (Figure 5):

* Section 9.3 — 19 replicas across 4 globally distributed datacenters
  (5 + 5 + 5 + 4), and a second run with 4 replicas, one per datacenter;
* Section 9.4 — 19 replicas across 4 US datacenters;
* Section 9.5 — 19 replicas across 19 worldwide datacenters.

We encode a catalogue of AWS regions with approximate coordinates and build
the same placements.  Inter-datacenter one-way delay is derived from the
great-circle distance (see :class:`repro.net.latency.GeoLatency`), which
reproduces the relative geometry that determines quorum formation times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Datacenter:
    """An AWS-style datacenter location.

    Attributes:
        name: region name, e.g. ``"us-east-1"``.
        latitude: degrees north.
        longitude: degrees east.
    """

    name: str
    latitude: float
    longitude: float


#: Catalogue of AWS regions (approximate coordinates of the region's city).
AWS_REGIONS: Dict[str, Datacenter] = {
    region.name: region
    for region in [
        Datacenter("us-east-1", 38.9, -77.0),       # N. Virginia
        Datacenter("us-east-2", 40.0, -83.0),       # Ohio
        Datacenter("us-west-1", 37.4, -122.0),      # N. California
        Datacenter("us-west-2", 45.5, -122.7),      # Oregon
        Datacenter("ca-central-1", 45.5, -73.6),    # Montreal
        Datacenter("sa-east-1", -23.5, -46.6),      # Sao Paulo
        Datacenter("eu-west-1", 53.3, -6.3),        # Ireland
        Datacenter("eu-west-2", 51.5, -0.1),        # London
        Datacenter("eu-west-3", 48.9, 2.3),         # Paris
        Datacenter("eu-central-1", 50.1, 8.7),      # Frankfurt
        Datacenter("eu-north-1", 59.3, 18.1),       # Stockholm
        Datacenter("eu-south-1", 45.5, 9.2),        # Milan
        Datacenter("me-south-1", 26.2, 50.6),       # Bahrain
        Datacenter("af-south-1", -33.9, 18.4),      # Cape Town
        Datacenter("ap-south-1", 19.1, 72.9),       # Mumbai
        Datacenter("ap-southeast-1", 1.3, 103.8),   # Singapore
        Datacenter("ap-southeast-2", -33.9, 151.2), # Sydney
        Datacenter("ap-northeast-1", 35.7, 139.7),  # Tokyo
        Datacenter("ap-northeast-2", 37.6, 127.0),  # Seoul
        Datacenter("ap-northeast-3", 34.7, 135.5),  # Osaka
        Datacenter("ap-east-1", 22.3, 114.2),       # Hong Kong
    ]
}


def great_circle_km(a: Datacenter, b: Datacenter) -> float:
    """Return the great-circle distance between two datacenters in km."""
    radius_km = 6371.0
    lat_a, lon_a = math.radians(a.latitude), math.radians(a.longitude)
    lat_b, lon_b = math.radians(b.latitude), math.radians(b.longitude)
    d_lat = lat_b - lat_a
    d_lon = lon_b - lon_a
    h = math.sin(d_lat / 2) ** 2 + math.cos(lat_a) * math.cos(lat_b) * math.sin(d_lon / 2) ** 2
    return 2 * radius_km * math.asin(min(1.0, math.sqrt(h)))


#: Measured median inter-region round-trip times in milliseconds, after the
#: public cloudping-style AWS inter-region tables.  Listed once per unordered
#: pair (each region keys the regions that follow it in catalogue order);
#: :func:`region_rtt_ms` looks both directions up.  Unlike the great-circle
#: estimate these carry real routing artefacts — cable paths, not geodesics —
#: e.g. Sao Paulo→Sydney routes through the US and Bahrain→Mumbai is far
#: faster than the distance suggests.
_REGION_RTT_MS: Dict[str, Dict[str, float]] = {
    "us-east-1": {
        "us-east-2": 12, "us-west-1": 62, "us-west-2": 68, "ca-central-1": 15,
        "sa-east-1": 115, "eu-west-1": 68, "eu-west-2": 76, "eu-west-3": 80,
        "eu-central-1": 89, "eu-north-1": 112, "eu-south-1": 97,
        "me-south-1": 185, "af-south-1": 225, "ap-south-1": 185,
        "ap-southeast-1": 215, "ap-southeast-2": 200, "ap-northeast-1": 145,
        "ap-northeast-2": 175, "ap-northeast-3": 155, "ap-east-1": 195,
    },
    "us-east-2": {
        "us-west-1": 52, "us-west-2": 49, "ca-central-1": 25, "sa-east-1": 125,
        "eu-west-1": 75, "eu-west-2": 83, "eu-west-3": 87, "eu-central-1": 97,
        "eu-north-1": 118, "eu-south-1": 105, "me-south-1": 195,
        "af-south-1": 235, "ap-south-1": 195, "ap-southeast-1": 205,
        "ap-southeast-2": 190, "ap-northeast-1": 135, "ap-northeast-2": 165,
        "ap-northeast-3": 145, "ap-east-1": 185,
    },
    "us-west-1": {
        "us-west-2": 20, "ca-central-1": 75, "sa-east-1": 175, "eu-west-1": 130,
        "eu-west-2": 137, "eu-west-3": 142, "eu-central-1": 147,
        "eu-north-1": 165, "eu-south-1": 155, "me-south-1": 235,
        "af-south-1": 290, "ap-south-1": 230, "ap-southeast-1": 170,
        "ap-southeast-2": 140, "ap-northeast-1": 105, "ap-northeast-2": 130,
        "ap-northeast-3": 112, "ap-east-1": 155,
    },
    "us-west-2": {
        "ca-central-1": 60, "sa-east-1": 180, "eu-west-1": 125, "eu-west-2": 133,
        "eu-west-3": 138, "eu-central-1": 143, "eu-north-1": 158,
        "eu-south-1": 152, "me-south-1": 245, "af-south-1": 290,
        "ap-south-1": 220, "ap-southeast-1": 165, "ap-southeast-2": 140,
        "ap-northeast-1": 97, "ap-northeast-2": 125, "ap-northeast-3": 105,
        "ap-east-1": 145,
    },
    "ca-central-1": {
        "sa-east-1": 125, "eu-west-1": 70, "eu-west-2": 78, "eu-west-3": 82,
        "eu-central-1": 92, "eu-north-1": 107, "eu-south-1": 100,
        "me-south-1": 190, "af-south-1": 230, "ap-south-1": 195,
        "ap-southeast-1": 215, "ap-southeast-2": 200, "ap-northeast-1": 145,
        "ap-northeast-2": 170, "ap-northeast-3": 152, "ap-east-1": 195,
    },
    "sa-east-1": {
        "eu-west-1": 180, "eu-west-2": 188, "eu-west-3": 192,
        "eu-central-1": 200, "eu-north-1": 220, "eu-south-1": 205,
        "me-south-1": 290, "af-south-1": 340, "ap-south-1": 300,
        "ap-southeast-1": 325, "ap-southeast-2": 310, "ap-northeast-1": 255,
        "ap-northeast-2": 285, "ap-northeast-3": 265, "ap-east-1": 305,
    },
    "eu-west-1": {
        "eu-west-2": 11, "eu-west-3": 17, "eu-central-1": 25, "eu-north-1": 38,
        "eu-south-1": 33, "me-south-1": 120, "af-south-1": 165,
        "ap-south-1": 120, "ap-southeast-1": 175, "ap-southeast-2": 255,
        "ap-northeast-1": 210, "ap-northeast-2": 230, "ap-northeast-3": 220,
        "ap-east-1": 200,
    },
    "eu-west-2": {
        "eu-west-3": 8, "eu-central-1": 15, "eu-north-1": 30, "eu-south-1": 24,
        "me-south-1": 112, "af-south-1": 158, "ap-south-1": 112,
        "ap-southeast-1": 167, "ap-southeast-2": 260, "ap-northeast-1": 218,
        "ap-northeast-2": 238, "ap-northeast-3": 228, "ap-east-1": 192,
    },
    "eu-west-3": {
        "eu-central-1": 10, "eu-north-1": 25, "eu-south-1": 18,
        "me-south-1": 105, "af-south-1": 150, "ap-south-1": 105,
        "ap-southeast-1": 160, "ap-southeast-2": 255, "ap-northeast-1": 222,
        "ap-northeast-2": 242, "ap-northeast-3": 232, "ap-east-1": 185,
    },
    "eu-central-1": {
        "eu-north-1": 22, "eu-south-1": 12, "me-south-1": 95, "af-south-1": 154,
        "ap-south-1": 110, "ap-southeast-1": 155, "ap-southeast-2": 250,
        "ap-northeast-1": 225, "ap-northeast-2": 235, "ap-northeast-3": 230,
        "ap-east-1": 180,
    },
    "eu-north-1": {
        "eu-south-1": 30, "me-south-1": 115, "af-south-1": 175,
        "ap-south-1": 130, "ap-southeast-1": 175, "ap-southeast-2": 270,
        "ap-northeast-1": 240, "ap-northeast-2": 255, "ap-northeast-3": 245,
        "ap-east-1": 200,
    },
    "eu-south-1": {
        "me-south-1": 88, "af-south-1": 145, "ap-south-1": 100,
        "ap-southeast-1": 148, "ap-southeast-2": 245, "ap-northeast-1": 230,
        "ap-northeast-2": 240, "ap-northeast-3": 235, "ap-east-1": 175,
    },
    "me-south-1": {
        "af-south-1": 185, "ap-south-1": 35, "ap-southeast-1": 85,
        "ap-southeast-2": 175, "ap-northeast-1": 160, "ap-northeast-2": 150,
        "ap-northeast-3": 158, "ap-east-1": 110,
    },
    "af-south-1": {
        "ap-south-1": 200, "ap-southeast-1": 235, "ap-southeast-2": 290,
        "ap-northeast-1": 300, "ap-northeast-2": 310, "ap-northeast-3": 305,
        "ap-east-1": 260,
    },
    "ap-south-1": {
        "ap-southeast-1": 55, "ap-southeast-2": 145, "ap-northeast-1": 125,
        "ap-northeast-2": 135, "ap-northeast-3": 128, "ap-east-1": 85,
    },
    "ap-southeast-1": {
        "ap-southeast-2": 92, "ap-northeast-1": 70, "ap-northeast-2": 75,
        "ap-northeast-3": 72, "ap-east-1": 35,
    },
    "ap-southeast-2": {
        "ap-northeast-1": 105, "ap-northeast-2": 130, "ap-northeast-3": 112,
        "ap-east-1": 125,
    },
    "ap-northeast-1": {
        "ap-northeast-2": 32, "ap-northeast-3": 9, "ap-east-1": 50,
    },
    "ap-northeast-2": {
        "ap-northeast-3": 25, "ap-east-1": 38,
    },
    "ap-northeast-3": {
        "ap-east-1": 45,
    },
}

#: Flattened symmetric view of :data:`_REGION_RTT_MS`, keyed by ordered
#: ``(region_a, region_b)`` name pairs (both directions present).
AWS_REGION_RTT_MS: Dict[Tuple[str, str], float] = {}
for _a, _row in _REGION_RTT_MS.items():
    for _b, _rtt in _row.items():
        AWS_REGION_RTT_MS[(_a, _b)] = float(_rtt)
        AWS_REGION_RTT_MS[(_b, _a)] = float(_rtt)
del _a, _row, _b, _rtt


def region_rtt_ms(a: str, b: str) -> Optional[float]:
    """Measured round-trip time between two catalogue regions, in ms.

    Returns ``None`` for pairs without a measurement (callers fall back to
    the great-circle estimate) and for ``a == b`` (intra-region delay is a
    placement property, not a WAN one).
    """
    return AWS_REGION_RTT_MS.get((a, b))


class Topology:
    """Assignment of replicas to datacenters.

    Attributes are derived from the placement list: replica ``i`` lives in
    ``placement[i]``.
    """

    def __init__(self, placement: Sequence[Datacenter]) -> None:
        if not placement:
            raise ValueError("a topology needs at least one replica")
        self._placement: List[Datacenter] = list(placement)
        # The placement never changes after construction, so the per-call
        # derived lookups are cached: the datacenter membership index is
        # built eagerly (O(n) once) and pairwise distances lazily (latency
        # models at n=256 ask for up to n^2 pairs, each a haversine).
        self._replicas_by_name: Dict[str, List[int]] = {}
        for replica_id, datacenter in enumerate(self._placement):
            self._replicas_by_name.setdefault(datacenter.name, []).append(replica_id)
        self._distance_cache: Dict[Tuple[int, int], float] = {}

    @property
    def n(self) -> int:
        """Number of replicas."""
        return len(self._placement)

    @property
    def replica_ids(self) -> List[int]:
        """Replica ids ``0..n-1``."""
        return list(range(self.n))

    def datacenter(self, replica_id: int) -> Datacenter:
        """Return the datacenter hosting ``replica_id``."""
        return self._placement[replica_id]

    def datacenters(self) -> List[Datacenter]:
        """Return the distinct datacenters in use (stable order)."""
        seen: Dict[str, Datacenter] = {}
        for datacenter in self._placement:
            seen.setdefault(datacenter.name, datacenter)
        return list(seen.values())

    def colocated(self, a: int, b: int) -> bool:
        """Return whether two replicas share a datacenter."""
        return self._placement[a].name == self._placement[b].name

    def distance_km(self, a: int, b: int) -> float:
        """Great-circle distance between the datacenters of two replicas
        (cached per unordered pair)."""
        key = (a, b) if a <= b else (b, a)
        cached = self._distance_cache.get(key)
        if cached is None:
            cached = great_circle_km(self._placement[a], self._placement[b])
            self._distance_cache[key] = cached
        return cached

    def replicas_in(self, datacenter_name: str) -> List[int]:
        """Return the replica ids hosted in ``datacenter_name``."""
        return list(self._replicas_by_name.get(datacenter_name, ()))


#: The four globally distributed datacenters of Section 9.3.
FOUR_GLOBAL_REGIONS = ["us-west-2", "eu-central-1", "ap-northeast-1", "ap-southeast-2"]

#: The four US datacenters of Section 9.4.
FOUR_US_REGIONS = ["us-east-1", "us-east-2", "us-west-1", "us-west-2"]

#: The nineteen worldwide datacenters of Section 9.5.
WORLDWIDE_REGIONS = [
    "us-east-1", "us-east-2", "us-west-1", "us-west-2", "ca-central-1",
    "sa-east-1", "eu-west-1", "eu-west-2", "eu-west-3", "eu-central-1",
    "eu-north-1", "eu-south-1", "me-south-1", "af-south-1", "ap-south-1",
    "ap-southeast-1", "ap-southeast-2", "ap-northeast-1", "ap-northeast-2",
]


def _spread(regions: Sequence[str], n: int) -> Topology:
    """Distribute ``n`` replicas across ``regions`` as evenly as possible.

    Replicas are assigned round-robin so that the first ``n mod len(regions)``
    regions get one extra replica — matching the paper's 5/5/5/4 split for
    n=19 over 4 datacenters.
    """
    placement = [AWS_REGIONS[regions[i % len(regions)]] for i in range(n)]
    return Topology(placement)


def four_global_datacenters(n: int = 19) -> Topology:
    """Replicas spread over the 4 global datacenters of Section 9.3."""
    return _spread(FOUR_GLOBAL_REGIONS, n)


def four_us_datacenters(n: int = 19) -> Topology:
    """Replicas spread over the 4 US datacenters of Section 9.4."""
    return _spread(FOUR_US_REGIONS, n)


def worldwide_datacenters(n: int = 19) -> Topology:
    """Replicas spread over 19 worldwide datacenters (Section 9.5)."""
    return _spread(WORLDWIDE_REGIONS, n)


#: Named topology factories, keyed by the names the CLI and experiment plans
#: use.  Plans reference topologies by name (plus the replica count carried in
#: the protocol parameters) so they stay serialisable and picklable.
TOPOLOGY_FACTORIES = {
    "global4": four_global_datacenters,
    "us4": four_us_datacenters,
    "worldwide": worldwide_datacenters,
}


def topology_by_name(name: str, n: int) -> Topology:
    """Build the named topology sized to ``n`` replicas.

    Raises:
        KeyError: if ``name`` is not in :data:`TOPOLOGY_FACTORIES`.
    """
    try:
        factory = TOPOLOGY_FACTORIES[name]
    except KeyError:
        available = ", ".join(sorted(TOPOLOGY_FACTORIES))
        raise KeyError(f"unknown topology {name!r} (available: {available})") from None
    return factory(n)


def placement_names(topology: Topology) -> List[str]:
    """The topology's placement as catalogue region names (one per replica).

    This is the serialisable form of a topology, used by experiment specs
    and result caches; :func:`topology_from_names` is its inverse.

    Raises:
        ValueError: if any datacenter is not *exactly* a catalogue entry of
            :data:`AWS_REGIONS` — a name-only match with different
            coordinates would silently rebuild a different network.
    """
    placement = [topology.datacenter(i) for i in topology.replica_ids]
    for datacenter in placement:
        if AWS_REGIONS.get(datacenter.name) != datacenter:
            raise ValueError(
                f"datacenter {datacenter.name!r} is not an AWS_REGIONS catalogue entry"
            )
    return [datacenter.name for datacenter in placement]


def topology_from_names(names: Sequence[str]) -> Topology:
    """Rebuild a topology from :func:`placement_names` output.

    Raises:
        KeyError: if a name is not in the :data:`AWS_REGIONS` catalogue.
    """
    return Topology([AWS_REGIONS[name] for name in names])
