"""Bandwidth model: size-dependent transfer time.

The paper sweeps block payload size to control load (Section 9.2); larger
blocks take longer to push onto the wire, which is what bends the
latency-vs-throughput curves in Figure 6.  We charge a simple serialization
delay ``size / rate`` on the sender side of every message plus a per-message
overhead, with a distinct (higher) rate for messages that stay inside a
datacenter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.topology import Topology


class BandwidthModel:
    """Transfer-time model for messages of a given size.

    Attributes:
        wan_bytes_per_s: throughput for inter-datacenter links (default
            ~1 Gbit/s, the sustained rate of the paper's t3.large instances).
        lan_bytes_per_s: throughput for intra-datacenter links.
        per_message_overhead_s: fixed processing/serialization overhead.
    """

    def __init__(
        self,
        wan_bytes_per_s: float = 125_000_000.0,
        lan_bytes_per_s: float = 600_000_000.0,
        per_message_overhead_s: float = 0.0002,
        topology: Optional[Topology] = None,
    ) -> None:
        if wan_bytes_per_s <= 0 or lan_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if per_message_overhead_s < 0:
            raise ValueError("overhead must be non-negative")
        self._wan = wan_bytes_per_s
        self._lan = lan_bytes_per_s
        self._overhead = per_message_overhead_s
        self._topology = topology
        # (sender-datacenter, size) -> (receivers key, shared row); see
        # transfer_row.
        self._row_template_cache: Dict[Tuple[str, int], tuple] = {}

    @property
    def per_message_overhead_s(self) -> float:
        """The fixed per-message overhead (reused by transport strategies)."""
        return self._overhead

    def transfer_time(self, sender: int, receiver: int, size_bytes: int) -> float:
        """Return the transfer time in seconds for ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if self._topology is not None and (
            sender == receiver or self._topology.colocated(sender, receiver)
        ):
            rate = self._lan
        else:
            rate = self._wan
        return self._overhead + size_bytes / rate

    def transfer_row(self, sender: int, receivers: Sequence[int],
                     size_bytes: int) -> List[float]:
        """Per-receiver transfer times, element-identical to per-call
        :meth:`transfer_time`.

        Only two values exist per size — the LAN rate for same-datacenter
        (and self) copies, the WAN rate otherwise — and which applies
        depends only on the sender's datacenter, so the row is built once
        per ``(sender-datacenter, size)`` and shared (all senders in one
        datacenter see the same row: the self entry is LAN-priced either
        way).  Callers must treat the returned list as immutable.
        """
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        topology = self._topology
        if topology is None:
            # Without a topology every copy (self included) is WAN-priced.
            value = self._overhead + size_bytes / self._wan
            return [value] * len(receivers)
        name = topology.datacenter(sender).name
        key = (name, size_bytes)
        entry = self._row_template_cache.get(key)
        if entry is not None and (entry[0] is receivers or entry[0] == receivers):
            return entry[1]
        wan_value = self._overhead + size_bytes / self._wan
        lan_value = self._overhead + size_bytes / self._lan
        local_ids = set(topology.replicas_in(name))
        row = [lan_value if receiver in local_ids else wan_value
               for receiver in receivers]
        self._row_template_cache[key] = (tuple(receivers), row)
        return row

    def expected_transfer_time(self, size_bytes: int) -> float:
        """Return the WAN transfer time (used for timeout derivation)."""
        return self._overhead + size_bytes / self._wan
