"""One-way message delay models.

A latency model answers "how long does a message from replica ``a`` to
replica ``b`` take (excluding transfer time)?".  All times are in seconds.
Models may be stochastic; they receive a :class:`random.Random` so that the
discrete-event simulator stays deterministic under a fixed seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple

from repro.net.topology import Topology, region_rtt_ms


class LatencyModel(ABC):
    """Base class for one-way delay models."""

    @abstractmethod
    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the one-way propagation delay in seconds for this message."""

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the mean one-way delay (used to derive protocol timeouts).

        The default implementation samples with a fixed-seed RNG; subclasses
        with a closed form override it.
        """
        probe = random.Random(0)
        samples = [self.delay(sender, receiver, probe) for _ in range(32)]
        return sum(samples) / len(samples)

    def max_expected_delay(self, replica_ids: Sequence[int]) -> float:
        """Return the largest pairwise expected delay among ``replica_ids``."""
        worst = 0.0
        for a in replica_ids:
            for b in replica_ids:
                if a == b:
                    continue
                worst = max(worst, self.expected_delay(a, b))
        return worst


class ConstantLatency(LatencyModel):
    """Every link has the same fixed one-way delay."""

    def __init__(self, delay_s: float, local_delay_s: float = 0.0005) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self._delay = delay_s
        self._local = local_delay_s

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the constant delay (a small local delay for self-delivery)."""
        if sender == receiver:
            return self._local
        return self._delay

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the configured constant delay."""
        return self._local if sender == receiver else self._delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, low_s: float, high_s: float) -> None:
        if low_s < 0 or high_s < low_s:
            raise ValueError("need 0 <= low <= high")
        self._low = low_s
        self._high = high_s

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Sample a uniform delay."""
        if sender == receiver:
            return self._low / 2 if self._low > 0 else 0.0005
        return rng.uniform(self._low, self._high)

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the mean of the uniform distribution."""
        if sender == receiver:
            return self._low / 2 if self._low > 0 else 0.0005
        return (self._low + self._high) / 2


class MatrixLatency(LatencyModel):
    """Explicit per-pair delays, optionally with multiplicative jitter."""

    def __init__(self, delays: Dict[Tuple[int, int], float], jitter: float = 0.0,
                 default_s: float = 0.05) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._delays = dict(delays)
        self._jitter = jitter
        self._default = default_s

    def _base(self, sender: int, receiver: int) -> float:
        if sender == receiver:
            return self._delays.get((sender, receiver), 0.0005)
        if (sender, receiver) in self._delays:
            return self._delays[(sender, receiver)]
        if (receiver, sender) in self._delays:
            return self._delays[(receiver, sender)]
        return self._default

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the matrix delay, with multiplicative jitter if configured."""
        base = self._base(sender, receiver)
        if self._jitter <= 0:
            return base
        return base * (1.0 + rng.uniform(0.0, self._jitter))

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the matrix delay scaled by the mean jitter."""
        return self._base(sender, receiver) * (1.0 + self._jitter / 2)


class GeoLatency(LatencyModel):
    """Geographic delay model derived from a :class:`Topology`.

    One-way delay between replicas ``a`` and ``b``::

        delay = base + distance_km / propagation_km_per_s  (+ jitter)

    where ``propagation_km_per_s`` defaults to ~2/3 of the speed of light in
    fibre plus routing inefficiency (an effective 120 km/ms is a common WAN
    rule of thumb; we use 100 km/ms to account for non-great-circle routing).
    Replicas in the same datacenter see a small constant local delay.
    """

    def __init__(
        self,
        topology: Topology,
        base_s: float = 0.002,
        km_per_s: float = 100_000.0,
        local_delay_s: float = 0.0008,
        jitter: float = 0.05,
    ) -> None:
        if km_per_s <= 0:
            raise ValueError("km_per_s must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._topology = topology
        self._base = base_s
        self._km_per_s = km_per_s
        self._local = local_delay_s
        self._jitter = jitter
        self._cache: Dict[Tuple[int, int], float] = {}

    @property
    def topology(self) -> Topology:
        """The topology this model is derived from."""
        return self._topology

    def _nominal(self, sender: int, receiver: int) -> float:
        if sender == receiver:
            return self._local / 2
        key = (sender, receiver)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._topology.colocated(sender, receiver):
            value = self._local
        else:
            distance = self._topology.distance_km(sender, receiver)
            value = self._base + distance / self._km_per_s
        self._cache[key] = value
        return value

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the geographic delay with multiplicative jitter."""
        nominal = self._nominal(sender, receiver)
        if self._jitter <= 0:
            return nominal
        return nominal * (1.0 + rng.uniform(0.0, self._jitter))

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the nominal delay scaled by the mean jitter."""
        return self._nominal(sender, receiver) * (1.0 + self._jitter / 2)


class WanMatrixLatency(LatencyModel):
    """Measured cloud-region RTTs mapped onto a :class:`Topology`.

    Where :class:`GeoLatency` *estimates* delay from great-circle distance,
    this model uses the measured inter-region round-trip matrix
    (:data:`repro.net.topology.AWS_REGION_RTT_MS`): the nominal one-way
    delay between replicas in regions ``A`` and ``B`` is ``RTT(A, B) / 2``,
    which carries real routing artefacts (submarine cable paths, peering
    detours) the geodesic model cannot.  Pairs without a measurement fall
    back to the great-circle estimate with :class:`GeoLatency`'s default
    coefficients.  Same-datacenter replicas see the small local delay;
    jitter is multiplicative, exactly as in the other models.

    Nominal delays are cached per replica pair — at n=256 that is up to
    ``n^2`` entries resolved once, then O(1) per message.
    """

    def __init__(
        self,
        topology: Topology,
        jitter: float = 0.05,
        local_delay_s: float = 0.0008,
        fallback_base_s: float = 0.002,
        fallback_km_per_s: float = 100_000.0,
    ) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if fallback_km_per_s <= 0:
            raise ValueError("fallback_km_per_s must be positive")
        self._topology = topology
        self._jitter = jitter
        self._local = local_delay_s
        self._fallback_base = fallback_base_s
        self._fallback_km_per_s = fallback_km_per_s
        self._cache: Dict[Tuple[int, int], float] = {}

    @property
    def topology(self) -> Topology:
        """The topology this model is derived from."""
        return self._topology

    def _nominal(self, sender: int, receiver: int) -> float:
        if sender == receiver:
            return self._local / 2
        key = (sender, receiver)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._topology.colocated(sender, receiver):
            value = self._local
        else:
            rtt = region_rtt_ms(self._topology.datacenter(sender).name,
                                self._topology.datacenter(receiver).name)
            if rtt is not None:
                value = rtt / 2000.0  # half the RTT, ms -> s
            else:
                distance = self._topology.distance_km(sender, receiver)
                value = self._fallback_base + distance / self._fallback_km_per_s
        self._cache[key] = value
        return value

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the measured-RTT delay with multiplicative jitter."""
        nominal = self._nominal(sender, receiver)
        if self._jitter <= 0:
            return nominal
        return nominal * (1.0 + rng.uniform(0.0, self._jitter))

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the nominal delay scaled by the mean jitter."""
        return self._nominal(sender, receiver) * (1.0 + self._jitter / 2)


#: Topology-derived latency models selectable by name through
#: :class:`repro.eval.experiment.ExperimentConfig` and the CLI.
LATENCY_MODELS = {
    "geo": GeoLatency,
    "wan-matrix": WanMatrixLatency,
}


def available_latency_models() -> list:
    """The registered topology-latency model names, sorted."""
    return sorted(LATENCY_MODELS)


def build_latency_model(name: str, topology: Topology) -> LatencyModel:
    """Build the named topology-derived latency model.

    Raises:
        KeyError: for a name outside :data:`LATENCY_MODELS`.
    """
    try:
        factory = LATENCY_MODELS[name]
    except KeyError:
        available = ", ".join(available_latency_models())
        raise KeyError(
            f"unknown latency model {name!r} (available: {available})"
        ) from None
    return factory(topology)
