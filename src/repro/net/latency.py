"""One-way message delay models.

A latency model answers "how long does a message from replica ``a`` to
replica ``b`` take (excluding transfer time)?".  All times are in seconds.
Models may be stochastic; they receive a :class:`random.Random` so that the
discrete-event simulator stays deterministic under a fixed seed.

Two call shapes are supported.  The scalar :meth:`LatencyModel.delay` prices
one copy; the batched row API (:meth:`LatencyModel.nominal_row` /
:meth:`LatencyModel.delay_row`) prices a whole broadcast fan-out at once and
is what the transport hot path uses at large n.  The row methods are
contractually equivalent to calling ``delay`` once per receiver in order —
same arrival values, same number and order of rng draws — which the
scalar↔batched equivalence suite pins for every shipped model.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from itertools import repeat as _repeat
from typing import Dict, List, Optional, Sequence, Tuple

try:  # Optional accelerator: the scalar rows below are the reference.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional speedup
    _np = None

from repro.net.topology import Topology, region_rtt_ms

#: Hoisted fixed-seed probe used by the sampling fallback of
#: :meth:`LatencyModel.expected_delay` — reseeded per call instead of
#: allocating a throwaway ``random.Random(0)`` per pair (the fallback runs
#: O(n^2) times when deriving timeouts for a model without a closed form).
_PROBE_RNG = random.Random(0)

#: Number of samples drawn by the ``expected_delay`` probing fallback.
_PROBE_SAMPLES = 32

#: ``2**-53`` — the scale CPython's ``Random.random`` applies to its 53
#: significant Mersenne bits.
_RECIP53 = 1.0 / 9007199254740992.0


def _bulk_uniform(rng: random.Random, count: int):
    """``count`` consecutive ``rng.random()`` draws as one float64 array.

    CPython's ``Random.random`` consumes two 32-bit Mersenne words per call
    (a 27-bit high part and a 26-bit low part); ``getrandbits(64 * count)``
    consumes the *same* words in the same order and packs them little-endian,
    so unpacking the words recovers every draw bit-for-bit while paying one
    Python-level call instead of ``count``.  Callers must gate on
    ``type(rng) is random.Random`` — a subclass may override ``random`` or
    ``getrandbits`` and break the word-stream correspondence.
    """
    words = _np.frombuffer(
        rng.getrandbits(count << 6).to_bytes(count << 3, "little"), "<u4")
    return ((words[0::2] >> 5) * 67108864.0 + (words[1::2] >> 6)) * _RECIP53


class LatencyModel(ABC):
    """Base class for one-way delay models.

    Subclasses that never consume the rng (no stochastic jitter) should set
    :attr:`jitter_free` to ``True``: the transport then serves broadcasts
    straight from the cached nominal rows with zero model calls.  All
    shipped models are expected to override :meth:`expected_delay` with a
    closed form — the 32-sample probing fallback below exists only for
    third-party models and is O(samples) per pair (pinned by a test that
    every registered model overrides it).
    """

    #: ``True`` when :meth:`delay` never consumes the rng.  Models claiming
    #: this must also be time-invariant per pair: the nominal rows are
    #: cached per sender and reused for the whole simulation.
    jitter_free: bool = False

    @abstractmethod
    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the one-way propagation delay in seconds for this message."""

    # ------------------------------------------------------------------ #
    # Batched row API (the broadcast hot path)
    # ------------------------------------------------------------------ #

    def nominal_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        """Dense per-destination nominal (jitter-free) delays for a fan-out.

        The row is aligned with ``receivers`` (the sender's own entry is the
        self-delivery delay) and cached per sender, so a broadcast costs one
        O(1) lookup after the first call.  Callers must treat the returned
        list as immutable — it is shared across calls.

        The base fallback prices each pair with :meth:`delay` fed from a
        fixed probe rng; it is only meaningful (and only used by the
        transport) for :attr:`jitter_free` models, whose ``delay`` ignores
        the rng entirely.
        """
        cache = self.__dict__.get("_nominal_row_cache")
        if cache is None:
            cache = self.__dict__["_nominal_row_cache"] = {}
        entry = cache.get(sender)
        if entry is not None and (entry[0] is receivers or entry[0] == receivers):
            return entry[1]
        row = self._build_nominal_row(sender, receivers)
        cache[sender] = (tuple(receivers), row)
        return row

    def _build_nominal_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        """Price one fan-out without consuming the caller's rng stream."""
        _PROBE_RNG.seed(0)
        return [self.delay(sender, receiver, _PROBE_RNG) for receiver in receivers]

    def delay_row(self, sender: int, receivers: Sequence[int],
                  rng: random.Random) -> List[float]:
        """Per-destination delays for one broadcast, batched.

        Equivalent to ``[self.delay(sender, r, rng) for r in receivers]`` —
        the rng is consumed in the exact per-receiver order the scalar path
        uses — but jittered shipped models apply their jitter in one pass
        over the cached nominal row, and jitter-free models consume nothing
        and return the cached row itself (callers must not mutate it).
        """
        if self.jitter_free:
            return self.nominal_row(sender, receivers)
        return [self.delay(sender, receiver, rng) for receiver in receivers]

    def expected_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        """Per-destination mean delays (the closed-form timeout row)."""
        return [self.expected_delay(sender, receiver) for receiver in receivers]

    # ------------------------------------------------------------------ #
    # Timeout derivation
    # ------------------------------------------------------------------ #

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the mean one-way delay (used to derive protocol timeouts).

        The default implementation samples with a fixed-seed probe rng
        (hoisted to module level and reseeded per call); every shipped model
        overrides it with a closed form, and third-party models should too —
        the fallback costs 32 ``delay`` calls per pair.
        """
        _PROBE_RNG.seed(0)
        samples = [self.delay(sender, receiver, _PROBE_RNG)
                   for _ in range(_PROBE_SAMPLES)]
        return sum(samples) / len(samples)

    def max_expected_delay(self, replica_ids: Sequence[int]) -> float:
        """Return the largest pairwise expected delay among ``replica_ids``.

        Derived from the closed-form :meth:`expected_row` per sender rather
        than probing each pair, so configuration-time timeout derivation is
        O(n^2) arithmetic instead of O(n^2 · samples) model calls.
        """
        worst = 0.0
        for sender in replica_ids:
            row = self.expected_row(sender, replica_ids)
            for receiver, value in zip(replica_ids, row):
                if receiver != sender and value > worst:
                    worst = value
        return worst


class ConstantLatency(LatencyModel):
    """Every link has the same fixed one-way delay."""

    jitter_free = True

    def __init__(self, delay_s: float, local_delay_s: float = 0.0005) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self._delay = delay_s
        self._local = local_delay_s

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the constant delay (a small local delay for self-delivery)."""
        if sender == receiver:
            return self._local
        return self._delay

    def _build_nominal_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        delay = self._delay
        local = self._local
        return [local if receiver == sender else delay for receiver in receivers]

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the configured constant delay."""
        return self._local if sender == receiver else self._delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, low_s: float, high_s: float) -> None:
        if low_s < 0 or high_s < low_s:
            raise ValueError("need 0 <= low <= high")
        self._low = low_s
        self._high = high_s

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Sample a uniform delay."""
        if sender == receiver:
            return self._low / 2 if self._low > 0 else 0.0005
        return rng.uniform(self._low, self._high)

    def delay_row(self, sender: int, receivers: Sequence[int],
                  rng: random.Random) -> List[float]:
        """One uniform draw per non-self receiver, in receiver order.

        ``rng.uniform(a, b)`` is ``a + (b - a) * rng.random()``; inlining
        the affine form keeps the draws (and the float arithmetic)
        bit-identical to the scalar path while skipping a method call per
        receiver.
        """
        low = self._low
        span = self._high - low
        local = low / 2 if low > 0 else 0.0005
        rand = rng.random
        return [local if receiver == sender else low + span * rand()
                for receiver in receivers]

    def _build_nominal_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        # The uniform model has no single nominal value; use the mean so the
        # row is at least meaningful for reporting (the transport never uses
        # it: the model is not jitter-free).
        return self.expected_row(sender, receivers)

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the mean of the uniform distribution."""
        if sender == receiver:
            return self._low / 2 if self._low > 0 else 0.0005
        return (self._low + self._high) / 2


class MatrixLatency(LatencyModel):
    """Explicit per-pair delays, optionally with multiplicative jitter.

    Pair lookups accept either orientation: an entry for ``(a, b)`` also
    prices ``(b, a)`` unless the reverse pair has its own entry.  The
    orientation handling is resolved once at construction time into a
    single canonical mapping, so the per-message lookup is one dict probe
    (the scalar path used to probe ``(a, b)`` then ``(b, a)`` per copy).
    """

    def __init__(self, delays: Dict[Tuple[int, int], float], jitter: float = 0.0,
                 default_s: float = 0.05) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._jitter = jitter
        self._default = default_s
        self.jitter_free = jitter <= 0
        # Canonicalize at construction: exact entries win, then the mirror
        # of the reverse entry; `_base` below is a single probe either way.
        resolved: Dict[Tuple[int, int], float] = dict(delays)
        for (a, b), value in delays.items():
            resolved.setdefault((b, a), value)
        self._delays = resolved

    def _base(self, sender: int, receiver: int) -> float:
        if sender == receiver:
            return self._delays.get((sender, receiver), 0.0005)
        value = self._delays.get((sender, receiver))
        return self._default if value is None else value

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the matrix delay, with multiplicative jitter if configured."""
        base = self._base(sender, receiver)
        if self._jitter <= 0:
            return base
        return base * (1.0 + rng.uniform(0.0, self._jitter))

    def _build_nominal_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        base = self._base
        return [base(sender, receiver) for receiver in receivers]

    def delay_row(self, sender: int, receivers: Sequence[int],
                  rng: random.Random) -> List[float]:
        """Jitter the cached nominal row in one pass (one draw per receiver).

        ``rng.uniform(0, j)`` is ``0.0 + j * rng.random()`` which is exactly
        ``j * rng.random()`` for the non-negative draws involved, so the
        inlined form is bit-identical to the scalar path.
        """
        row = self.nominal_row(sender, receivers)
        jitter = self._jitter
        if jitter <= 0:
            return row
        rand = rng.random
        return [value * (1.0 + jitter * rand()) for value in row]

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the matrix delay scaled by the mean jitter."""
        return self._base(sender, receiver) * (1.0 + self._jitter / 2)

    def expected_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        """The nominal row scaled by the mean jitter."""
        scale = 1.0 + self._jitter / 2
        return [value * scale for value in self.nominal_row(sender, receivers)]


class _TopologyLatency(LatencyModel):
    """Shared machinery of the topology-derived models.

    Nominal delays are materialised as one dense row per sender — a list
    indexed by receiver id (topology replica ids are ``0..n-1``), built on
    first use and O(1) per destination afterwards.  This replaces the
    ``(a, b)``-tuple dict caches: a broadcast reads a whole row without
    hashing a tuple per copy, and the scalar path indexes the same rows.
    """

    _topology: Topology
    _jitter: float

    def __init__(self, topology: Topology, jitter: float) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._topology = topology
        self._jitter = jitter
        self.jitter_free = jitter <= 0
        self._rows: Dict[int, List[float]] = {}
        self._row_arrays: Dict[int, object] = {}
        self._pair_cache: Dict[Tuple[str, str], float] = {}
        self._name_templates: Dict[str, List[float]] = {}
        self._full_ids: Optional[Tuple[int, ...]] = None

    @property
    def topology(self) -> Topology:
        """The topology this model is derived from."""
        return self._topology

    def _pair_nominal(self, sender: int, receiver: int) -> float:
        """Price one (non-self) pair; subclasses implement the model."""
        raise NotImplementedError

    def _local_delay(self) -> float:
        raise NotImplementedError

    def _sender_row(self, sender: int) -> List[float]:
        row = self._rows.get(sender)
        if row is None:
            # Both shipped subclasses price a pair purely from the two
            # endpoints' datacenters, so every sender in one datacenter
            # shares the same row except its own self entry: rows are
            # copied from a per-datacenter template (built once, O(n + D)
            # via the datacenter membership lists) with the self entry
            # patched — warming all n rows costs O(n·D) template work plus
            # n list copies instead of O(n^2) per-pair lookups.
            topology = self._topology
            sender_name = topology.datacenter(sender).name
            template = self._name_templates.get(sender_name)
            if template is None:
                local = self._local_delay()
                pair_cache = self._pair_cache
                template = [0.0] * topology.n
                for datacenter in topology.datacenters():
                    receiver_name = datacenter.name
                    if receiver_name == sender_name:
                        value = local
                    else:
                        key = (sender_name, receiver_name)
                        value = pair_cache.get(key)
                        if value is None:
                            representative = topology.replicas_in(receiver_name)[0]
                            value = self._pair_nominal(sender, representative)
                            pair_cache[key] = value
                    for receiver in topology.replicas_in(receiver_name):
                        template[receiver] = value
                self._name_templates[sender_name] = template
            row = template.copy()
            row[sender] = self._local_delay() / 2
            self._rows[sender] = row
        return row

    def _nominal(self, sender: int, receiver: int) -> float:
        return self._sender_row(sender)[receiver]

    def nominal_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        """The sender's dense row (shared; callers must not mutate)."""
        row = self._sender_row(sender)
        full = self._full_ids
        if receivers is full:
            return row
        if len(receivers) == len(row):
            if full is None:
                candidate = tuple(receivers)
                if candidate == tuple(range(len(row))):
                    self._full_ids = candidate
                    return row
            elif receivers == full:
                return row
        return [row[receiver] for receiver in receivers]

    def nominal_row_array(self, sender: int, receivers: Sequence[int]):
        """The sender's dense row as a cached numpy float64 array, or ``None``.

        Only served for the full ascending replica-id set (the broadcast
        shape) — ``None`` for subsets, custom orders, or when numpy is
        unavailable.  ``asarray`` on a float list preserves bits, so the
        array is element-for-element identical to :meth:`nominal_row`.
        Callers must treat it as immutable — it is shared across calls.
        """
        if _np is None:
            return None
        arr = self._row_arrays.get(sender)
        if arr is not None:
            full = self._full_ids
            if receivers is full or receivers == full:
                return arr
            return None
        row = self._sender_row(sender)
        # nominal_row returns the shared dense row itself exactly when
        # ``receivers`` is the full id set — reuse its detection.
        if self.nominal_row(sender, receivers) is not row:
            return None
        arr = _np.asarray(row, dtype=_np.float64)
        self._row_arrays[sender] = arr
        return arr

    def delay_row_array(self, sender: int, receivers: Sequence[int],
                        rng: random.Random):
        """Vectorized :meth:`delay_row`, or ``None`` (rng then untouched).

        The jitter draws come from :func:`_bulk_uniform` — one
        ``getrandbits`` call that consumes the Mersenne stream exactly as
        ``count`` scalar ``rng.random()`` calls would — and the affine
        jitter application is one elementwise pass: ``row * (1.0 + jitter *
        draws)`` runs the exact IEEE operations of the scalar ``value *
        (1.0 + jitter * rand())``, so the result is bit-identical to
        :meth:`delay_row`.
        """
        arr = self.nominal_row_array(sender, receivers)
        if arr is None:
            return None
        jitter = self._jitter
        if jitter <= 0:
            return arr
        count = len(arr)
        if type(rng) is random.Random:
            draws = _bulk_uniform(rng, count)
        else:  # subclassed rng: fall back to per-draw calls
            rand = rng.random
            draws = _np.fromiter((rand() for _ in _repeat(None, count)),
                                 _np.float64, count)
        # In-place affine: ``rand * jitter``, ``+ 1.0``, ``* value`` are the
        # scalar path's operations with commuted operands — bit-identical
        # under IEEE 754 — without three temporary rows per broadcast.
        draws *= jitter
        draws += 1.0
        draws *= arr
        return draws

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        """Return the nominal delay with multiplicative jitter."""
        nominal = self._sender_row(sender)[receiver]
        if self._jitter <= 0:
            return nominal
        return nominal * (1.0 + rng.uniform(0.0, self._jitter))

    def delay_row(self, sender: int, receivers: Sequence[int],
                  rng: random.Random) -> List[float]:
        """Jitter the cached row in one pass (one draw per receiver).

        The inlined ``j * rng.random()`` form is bit-identical to the scalar
        path's ``rng.uniform(0.0, j)`` (``0.0 + (j - 0.0) * random()``).
        """
        row = self.nominal_row(sender, receivers)
        jitter = self._jitter
        if jitter <= 0:
            return row
        rand = rng.random
        return [value * (1.0 + jitter * rand()) for value in row]

    def expected_delay(self, sender: int, receiver: int) -> float:
        """Return the nominal delay scaled by the mean jitter."""
        return self._nominal(sender, receiver) * (1.0 + self._jitter / 2)

    def expected_row(self, sender: int, receivers: Sequence[int]) -> List[float]:
        """The nominal row scaled by the mean jitter."""
        scale = 1.0 + self._jitter / 2
        return [value * scale for value in self.nominal_row(sender, receivers)]


class GeoLatency(_TopologyLatency):
    """Geographic delay model derived from a :class:`Topology`.

    One-way delay between replicas ``a`` and ``b``::

        delay = base + distance_km / propagation_km_per_s  (+ jitter)

    where ``propagation_km_per_s`` defaults to ~2/3 of the speed of light in
    fibre plus routing inefficiency (an effective 120 km/ms is a common WAN
    rule of thumb; we use 100 km/ms to account for non-great-circle routing).
    Replicas in the same datacenter see a small constant local delay.
    """

    def __init__(
        self,
        topology: Topology,
        base_s: float = 0.002,
        km_per_s: float = 100_000.0,
        local_delay_s: float = 0.0008,
        jitter: float = 0.05,
    ) -> None:
        if km_per_s <= 0:
            raise ValueError("km_per_s must be positive")
        super().__init__(topology, jitter)
        self._base = base_s
        self._km_per_s = km_per_s
        self._local = local_delay_s

    def _local_delay(self) -> float:
        return self._local

    def _pair_nominal(self, sender: int, receiver: int) -> float:
        distance = self._topology.distance_km(sender, receiver)
        return self._base + distance / self._km_per_s


class WanMatrixLatency(_TopologyLatency):
    """Measured cloud-region RTTs mapped onto a :class:`Topology`.

    Where :class:`GeoLatency` *estimates* delay from great-circle distance,
    this model uses the measured inter-region round-trip matrix
    (:data:`repro.net.topology.AWS_REGION_RTT_MS`): the nominal one-way
    delay between replicas in regions ``A`` and ``B`` is ``RTT(A, B) / 2``,
    which carries real routing artefacts (submarine cable paths, peering
    detours) the geodesic model cannot.  Pairs without a measurement fall
    back to the great-circle estimate with :class:`GeoLatency`'s default
    coefficients.  Same-datacenter replicas see the small local delay;
    jitter is multiplicative, exactly as in the other models.

    Nominal delays are materialised as one dense row per sender (n rows of
    n floats at n=256), resolved once, then O(1) per message and O(n) — no
    lookups — per broadcast.
    """

    def __init__(
        self,
        topology: Topology,
        jitter: float = 0.05,
        local_delay_s: float = 0.0008,
        fallback_base_s: float = 0.002,
        fallback_km_per_s: float = 100_000.0,
    ) -> None:
        if fallback_km_per_s <= 0:
            raise ValueError("fallback_km_per_s must be positive")
        super().__init__(topology, jitter)
        self._local = local_delay_s
        self._fallback_base = fallback_base_s
        self._fallback_km_per_s = fallback_km_per_s

    def _local_delay(self) -> float:
        return self._local

    def _pair_nominal(self, sender: int, receiver: int) -> float:
        rtt = region_rtt_ms(self._topology.datacenter(sender).name,
                            self._topology.datacenter(receiver).name)
        if rtt is not None:
            return rtt / 2000.0  # half the RTT, ms -> s
        distance = self._topology.distance_km(sender, receiver)
        return self._fallback_base + distance / self._fallback_km_per_s


#: Topology-derived latency models selectable by name through
#: :class:`repro.eval.experiment.ExperimentConfig` and the CLI.
LATENCY_MODELS = {
    "geo": GeoLatency,
    "wan-matrix": WanMatrixLatency,
}


def available_latency_models() -> list:
    """The registered topology-latency model names, sorted."""
    return sorted(LATENCY_MODELS)


def build_latency_model(name: str, topology: Topology) -> LatencyModel:
    """Build the named topology-derived latency model.

    Raises:
        KeyError: for a name outside :data:`LATENCY_MODELS`.
    """
    try:
        factory = LATENCY_MODELS[name]
    except KeyError:
        available = ", ".join(available_latency_models())
        raise KeyError(
            f"unknown latency model {name!r} (available: {available})"
        ) from None
    return factory(topology)
