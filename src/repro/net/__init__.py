"""Network substrate: latency, topologies, bandwidth, faults — and transport.

The paper's evaluation runs on AWS WAN deployments; this package replaces the
testbed with a parametric network model (see DESIGN.md, substitutions):

* :mod:`repro.net.latency` — per-link one-way delay models (constant,
  uniform, explicit matrix, geographic great-circle).
* :mod:`repro.net.topology` — datacenter catalogue (AWS regions with
  coordinates) and the three replica placements used in the paper's
  experiments.
* :mod:`repro.net.bandwidth` — size-dependent transfer time.
* :mod:`repro.net.faults` — crash faults, message drops, and partitions.
* :mod:`repro.net.transport` — the dissemination layer composing the three
  models above into per-receiver deliveries.  Strategies:
  :class:`~repro.net.transport.DirectTransport` (ideal n-way unicast, the
  default), :class:`~repro.net.transport.ContendedUplinkTransport`
  (sender-side NIC queue: broadcasts drain sequentially, so leader fan-out
  cost scales with n), and :class:`~repro.net.transport.RelayTransport`
  (k-relay dissemination trees).

The split matters: latency/bandwidth/fault models describe *links*, while a
transport describes *how a send uses them* — one message per receiver, in
what order, through which intermediaries.  Protocols never see any of this;
they call ``ctx.send`` / ``ctx.broadcast`` and the configured transport
decides when each copy arrives.
"""

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import CrashSchedule, FaultPlan, PartitionPlan
from repro.net.latency import (
    ConstantLatency,
    GeoLatency,
    LatencyModel,
    MatrixLatency,
    UniformLatency,
)
from repro.net.topology import (
    AWS_REGIONS,
    Datacenter,
    Topology,
    four_global_datacenters,
    four_us_datacenters,
    worldwide_datacenters,
)
from repro.net.transport import (
    TRANSPORTS,
    ContendedUplinkTransport,
    Delivery,
    DirectTransport,
    RelayTransport,
    Transport,
    available_transports,
    build_transport,
)

__all__ = [
    "AWS_REGIONS",
    "BandwidthModel",
    "ConstantLatency",
    "ContendedUplinkTransport",
    "CrashSchedule",
    "Datacenter",
    "Delivery",
    "DirectTransport",
    "FaultPlan",
    "GeoLatency",
    "LatencyModel",
    "MatrixLatency",
    "PartitionPlan",
    "RelayTransport",
    "TRANSPORTS",
    "Topology",
    "Transport",
    "UniformLatency",
    "available_transports",
    "build_transport",
    "four_global_datacenters",
    "four_us_datacenters",
    "worldwide_datacenters",
]
