"""Network substrate: latency models, topologies, bandwidth, fault injection.

The paper's evaluation runs on AWS WAN deployments; this package replaces the
testbed with a parametric network model (see DESIGN.md, substitutions):

* :mod:`repro.net.latency` — per-link one-way delay models (constant,
  uniform, explicit matrix, geographic great-circle).
* :mod:`repro.net.topology` — datacenter catalogue (AWS regions with
  coordinates) and the three replica placements used in the paper's
  experiments.
* :mod:`repro.net.bandwidth` — size-dependent transfer time.
* :mod:`repro.net.faults` — crash faults, message drops, and partitions.
"""

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import CrashSchedule, FaultPlan, PartitionPlan
from repro.net.latency import (
    ConstantLatency,
    GeoLatency,
    LatencyModel,
    MatrixLatency,
    UniformLatency,
)
from repro.net.topology import (
    AWS_REGIONS,
    Datacenter,
    Topology,
    four_global_datacenters,
    four_us_datacenters,
    worldwide_datacenters,
)

__all__ = [
    "AWS_REGIONS",
    "BandwidthModel",
    "ConstantLatency",
    "CrashSchedule",
    "Datacenter",
    "FaultPlan",
    "GeoLatency",
    "LatencyModel",
    "MatrixLatency",
    "PartitionPlan",
    "Topology",
    "UniformLatency",
    "four_global_datacenters",
    "four_us_datacenters",
    "worldwide_datacenters",
]
