"""The transport layer: how bytes move from a sender to its receivers.

Every message a replica sends passes through exactly one :class:`Transport`,
which composes the three network sub-models (propagation delay from
:mod:`repro.net.latency`, serialization time from
:mod:`repro.net.bandwidth`, loss/hold from :mod:`repro.net.faults`) into a
:class:`Delivery` per receiver: *when* the message arrives and *where the
time went* (partition hold, uplink queueing, wire transfer, propagation).
The simulator owns the event queue and the counters; the transport owns all
message timing — swapping dissemination strategies never touches the
protocols or the event loop.

Three strategies are provided:

* :class:`DirectTransport` — the classic model: every copy of a broadcast
  departs at the send instant, paying ``transfer + propagation``
  independently.  This is the default and reproduces the pre-transport
  simulator executions bit-for-bit.
* :class:`ContendedUplinkTransport` — a per-replica NIC with finite uplink
  capacity: a sender's outgoing copies serialize *sequentially*, so an
  n-way broadcast's last copy waits for the first n−1 to drain.  This is
  the effect that turns a single leader into a bandwidth bottleneck and
  makes leader fan-out cost scale with n.
* :class:`RelayTransport` — dissemination trees: a broadcast goes to ``k``
  relay replicas which re-forward to the rest, trading one hop of extra
  latency for O(k) sender fan-out.

Transports are selected by name through
:class:`repro.runtime.simulator.NetworkConfig` (``transport="contended"``)
and built by :func:`build_transport`; custom strategies subclass
:class:`Transport` and can be passed as instances.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

try:  # Optional accelerator: the scalar paths below are the reference.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional speedup
    _np = None

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.types.messages import Message


class Delivery:
    """One scheduled message arrival, with its delay decomposition.

    Attributes:
        receiver: the replica the copy arrives at.
        deliver_at: absolute simulation time of the arrival.
        hold_delay: time the copy was held back by a partition window.
        queue_delay: time the copy spent waiting before its final hop began
            — sender-uplink queueing under
            :class:`ContendedUplinkTransport`, the whole upstream
            (sender→relay) leg for forwarded copies under
            :class:`RelayTransport`, and always 0 under
            :class:`DirectTransport`.
        transfer_delay: serialization time onto the wire (the final hop's,
            for relayed copies).
        propagation_delay: one-way propagation time (the final hop's, for
            relayed copies).
        via: id of the relay that forwarded the copy, or ``None`` for a
            direct copy.

    Invariant (relied on by the network trace): ``deliver_at ==`` the send
    time ``+ hold_delay + queue_delay + transfer_delay +
    propagation_delay``.
    """

    __slots__ = ("receiver", "deliver_at", "hold_delay", "queue_delay",
                 "transfer_delay", "propagation_delay", "via")

    def __init__(self, receiver: int, deliver_at: float, hold_delay: float = 0.0,
                 queue_delay: float = 0.0, transfer_delay: float = 0.0,
                 propagation_delay: float = 0.0, via: Optional[int] = None) -> None:
        self.receiver = receiver
        self.deliver_at = deliver_at
        self.hold_delay = hold_delay
        self.queue_delay = queue_delay
        self.transfer_delay = transfer_delay
        self.propagation_delay = propagation_delay
        self.via = via

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Delivery(receiver={self.receiver}, deliver_at={self.deliver_at:.6f}, "
                f"queue={self.queue_delay:.6f}, via={self.via})")


class Transport(ABC):
    """Strategy interface owning the full send pipeline.

    A transport is consulted once per logical send: :meth:`unicast` for a
    point-to-point message, :meth:`broadcast` for an all-replica message.
    Both return where and when copies arrive; a dropped copy is simply
    absent (``None`` / missing from the list).  The caller (the simulator)
    does the accounting and event scheduling.

    Implementations must draw from ``rng`` in a deterministic per-receiver
    order so that a fixed seed reproduces the execution.
    """

    def __init__(self, latency: LatencyModel, bandwidth: BandwidthModel,
                 faults: FaultPlan) -> None:
        self.latency = latency
        self.bandwidth = bandwidth
        self.faults = faults
        # Hoisted once: a fault plan with no crashes, drops, bursts, or
        # partitions lets the per-message hot path skip three calls per copy.
        self._trivial_faults = (
            not faults.crash_schedule.crash_times
            and faults.drop_probability == 0.0
            and not faults.partitions.windows
            and not faults.loss_bursts
        )
        # Row-path gates, also hoisted.  Transfer rows may only be cached
        # when the bandwidth model is the stock pure-function one — a
        # subclass could be stateful or time-varying, so it keeps the
        # per-copy call pattern.  Latency rows come from the model's own
        # batched API (with a scalar-equivalent base fallback), so they are
        # always safe; `jitter_free` additionally means zero rng draws.
        self._latency_jitter_free = bool(getattr(latency, "jitter_free", False))
        self._cacheable_bandwidth = type(bandwidth) is BandwidthModel
        self._transfer_row_cache: Dict[Tuple[int, int], Tuple[Tuple[int, ...], List[float]]] = {}
        self._transfer_array_cache: Dict[Tuple[int, int], tuple] = {}

    def _transfer_row(self, sender: int, receivers: Sequence[int],
                      size: int) -> List[float]:
        """Per-destination transfer times, cached per ``(sender, size)``.

        Only called on the row path (stock bandwidth model), where
        ``transfer_time`` is a pure function of the pair and size.  The
        cached row is validated against ``receivers`` (identity first — the
        simulator passes the same replica-id tuple every broadcast) so a
        different receiver set rebuilds rather than misprices.
        """
        key = (sender, size)
        entry = self._transfer_row_cache.get(key)
        if entry is not None and (entry[0] is receivers or entry[0] == receivers):
            return entry[1]
        # Only reached for the stock bandwidth model (the row-path gate),
        # whose transfer_row shares one template per sender datacenter.
        row = self.bandwidth.transfer_row(sender, receivers, size)
        self._transfer_row_cache[key] = (tuple(receivers), row)
        return row

    @abstractmethod
    def unicast(self, sender: int, receiver: int, message: Message, now: float,
                rng: random.Random) -> Optional[Delivery]:
        """Schedule one ``sender → receiver`` copy; ``None`` if dropped."""

    def broadcast(self, sender: int, receivers: Sequence[int], message: Message,
                  now: float, rng: random.Random) -> List[Delivery]:
        """Schedule one copy per receiver (the sender included); drops omitted."""
        deliveries = []
        for receiver in receivers:
            delivery = self.unicast(sender, receiver, message, now, rng)
            if delivery is not None:
                deliveries.append(delivery)
        return deliveries

    def broadcast_times(self, sender: int, receivers: Sequence[int],
                        message: Message, now: float,
                        rng: random.Random) -> List[Tuple[int, float]]:
        """:meth:`broadcast` reduced to ``(receiver, deliver_at)`` pairs.

        The simulator's event loop only needs the arrival instants, not the
        delay decomposition, so the hot path skips one :class:`Delivery`
        allocation per copy (n of them per broadcast).  Overrides must
        consume ``rng`` and mutate transport state (NIC queues, counters)
        exactly as :meth:`broadcast` would — the golden corpus pins this.
        """
        return [
            (delivery.receiver, delivery.deliver_at)
            for delivery in self.broadcast(sender, receivers, message, now, rng)
        ]

    def broadcast_arrival_row(self, sender: int, receivers: Sequence[int],
                              message: Message, now: float,
                              rng: random.Random) -> Optional[List[float]]:
        """Arrival times aligned with ``receivers``, or ``None``.

        The densest broadcast shape: when no copy can be dropped or held
        the result is one float per receiver, positionally aligned with
        ``receivers`` — the simulator then groups deliveries without
        materialising ``(receiver, time)`` tuples.  ``None`` means the
        transport cannot guarantee the aligned no-drop shape here (faults
        active, custom models); callers fall back to
        :meth:`broadcast_times`.  Overrides must consume ``rng`` exactly as
        :meth:`broadcast` would.
        """
        return None

    def broadcast_arrival_array(self, sender: int, receivers: Sequence[int],
                                message: Message, now: float,
                                rng: random.Random):
        """:meth:`broadcast_arrival_row` as a numpy float64 array, or ``None``.

        Same aligned no-drop contract and the same arithmetic bit-for-bit
        (numpy elementwise float64 add/multiply are IEEE-exactly-rounded,
        identical to the scalar ops), but built with whole-row vector ops.
        ``None`` whenever numpy is unavailable or the configuration cannot
        take the row path; implementations must decide *before* consuming
        any rng draws so the fallback sees an untouched stream.
        """
        return None

    def reset(self) -> None:
        """Clear inter-simulation state (NIC queues, counters)."""

    def stats(self) -> Dict[str, object]:
        """Transport-specific counters (wire bytes, queueing), for reports."""
        return {}


class DirectTransport(Transport):
    """Ideal point-to-point dissemination (the pre-transport semantics).

    Every copy departs at the send instant and arrives after
    ``transfer_time + propagation_delay``; a broadcast is n independent
    unicasts.  Given the same seed, models, and fault plan, executions are
    identical to the original in-simulator pipeline — the rng is consumed
    in the same per-receiver order and the arrival times are computed with
    the same arithmetic.
    """

    name = "direct"

    def unicast(self, sender: int, receiver: int, message: Message, now: float,
                rng: random.Random) -> Optional[Delivery]:
        """Independent copy: ``now (+ hold) + transfer + propagation``."""
        size = getattr(message, "wire_size", 0)
        send_time = now
        hold = 0.0
        if not self._trivial_faults:
            faults = self.faults
            if faults.should_drop(sender, receiver, now, rng):
                return None
            release = faults.partition_release(sender, receiver, now)
            if release is not None:
                # Partition = period of asynchrony: the message is held back
                # and starts travelling once the partition heals.
                send_time = release
                hold = release - now
        transfer = self.bandwidth.transfer_time(sender, receiver, size)
        propagation = self.latency.delay(sender, receiver, rng)
        return Delivery(receiver, send_time + transfer + propagation,
                        hold, 0.0, transfer, propagation)

    def broadcast(self, sender: int, receivers: Sequence[int], message: Message,
                  now: float, rng: random.Random) -> List[Delivery]:
        """n independent unicasts, with per-message lookups hoisted."""
        size = getattr(message, "wire_size", 0)
        transfer_time = self.bandwidth.transfer_time
        delay = self.latency.delay
        deliveries = []
        append = deliveries.append
        if self._trivial_faults:
            for receiver in receivers:
                transfer = transfer_time(sender, receiver, size)
                propagation = delay(sender, receiver, rng)
                append(Delivery(receiver, now + transfer + propagation,
                                0.0, 0.0, transfer, propagation))
            return deliveries
        faults = self.faults
        for receiver in receivers:
            if faults.should_drop(sender, receiver, now, rng):
                continue
            send_time = now
            hold = 0.0
            release = faults.partition_release(sender, receiver, now)
            if release is not None:
                send_time = release
                hold = release - now
            transfer = transfer_time(sender, receiver, size)
            propagation = delay(sender, receiver, rng)
            append(Delivery(receiver, send_time + transfer + propagation,
                            hold, 0.0, transfer, propagation))
        return deliveries

    def broadcast_times(self, sender: int, receivers: Sequence[int],
                        message: Message, now: float,
                        rng: random.Random) -> List[Tuple[int, float]]:
        """:meth:`broadcast` without the Delivery objects, row-batched.

        The arithmetic is kept bit-identical to the scalar pipeline: every
        arrival is ``send_time + transfer + propagation`` evaluated left to
        right, with the transfer and propagation terms read from cached /
        batched rows instead of per-copy calls.  The rng order is preserved
        by case analysis — jitter-free models draw nothing; jittered models
        draw once per (surviving) receiver in receiver order; the one
        combination where drop draws interleave with propagation draws
        falls back to the scalar loop.
        """
        size = getattr(message, "wire_size", 0)
        if self._trivial_faults:
            row = self.broadcast_arrival_row(sender, receivers, message, now, rng)
            if row is not None:
                return list(zip(receivers, row))
            # Third-party bandwidth model: per-copy transfer calls, but the
            # propagation side still comes from one batched row.
            propagation_row = self.latency.delay_row(sender, receivers, rng)
            transfer_time = self.bandwidth.transfer_time
            return [(receiver, now + transfer_time(sender, receiver, size) + propagation)
                    for receiver, propagation in zip(receivers, propagation_row)]
        faults = self.faults
        if not self._latency_jitter_free and faults.drop_draws_rng(now):
            # Drop draws interleave with propagation draws per receiver;
            # batching would reorder the stream, so keep the scalar loop.
            return self._broadcast_times_scalar(sender, receivers, size, now, rng)
        pairs: List[Tuple[int, float]] = []
        append = pairs.append
        transfer_time = self.bandwidth.transfer_time
        if self._latency_jitter_free:
            # Fault checks may draw (drop probability / bursts) but the
            # model never does, so per-receiver order is just the drop
            # draws — identical to the scalar loop.
            propagation_row = self.latency.nominal_row(sender, receivers)
            for receiver, propagation in zip(receivers, propagation_row):
                if faults.should_drop(sender, receiver, now, rng):
                    continue
                send_time = now
                release = faults.partition_release(sender, receiver, now)
                if release is not None:
                    send_time = release
                append((receiver, send_time
                        + transfer_time(sender, receiver, size) + propagation))
            return pairs
        # Jittered model, fault checks that never draw (crashes/partitions):
        # the scalar loop draws propagation only for surviving receivers, so
        # filter first, then batch the draws over the survivors in order.
        survivors = [receiver for receiver in receivers
                     if not faults.should_drop(sender, receiver, now, rng)]
        propagation_row = self.latency.delay_row(sender, survivors, rng)
        for receiver, propagation in zip(survivors, propagation_row):
            send_time = now
            release = faults.partition_release(sender, receiver, now)
            if release is not None:
                send_time = release
            append((receiver, send_time
                    + transfer_time(sender, receiver, size) + propagation))
        return pairs

    def broadcast_arrival_row(self, sender: int, receivers: Sequence[int],
                              message: Message, now: float,
                              rng: random.Random) -> Optional[List[float]]:
        """The flood hot path: one cached-row add per receiver.

        With trivial faults and the stock bandwidth model nothing can drop
        or hold, so the whole broadcast is ``now + transfer[i] +
        propagation[i]`` over cached rows — zero model, fault, or transfer
        calls, and zero rng draws for jitter-free latency models (one
        ``random()`` per receiver otherwise, via ``delay_row``).
        """
        if not self._trivial_faults or not self._cacheable_bandwidth:
            return None
        size = getattr(message, "wire_size", 0)
        transfer_row = self._transfer_row(sender, receivers, size)
        if self._latency_jitter_free:
            propagation_row = self.latency.nominal_row(sender, receivers)
        else:
            propagation_row = self.latency.delay_row(sender, receivers, rng)
        return [now + transfer + propagation
                for transfer, propagation in zip(transfer_row, propagation_row)]

    def broadcast_arrival_array(self, sender: int, receivers: Sequence[int],
                                message: Message, now: float,
                                rng: random.Random):
        """Vectorized :meth:`broadcast_arrival_row`.

        ``(now + transfer) + propagation`` evaluated as two elementwise
        float64 adds, preserving the scalar path's left-to-right rounding.
        The jitter draws (inside ``delay_row_array``) are made one scalar
        ``rng.random()`` at a time in receiver order, so the stream matches
        the scalar path exactly.  All gates — including the latency model's
        — are checked before any draw, so returning ``None`` leaves the rng
        untouched for the row fallback.
        """
        if (_np is None or not self._trivial_faults
                or not self._cacheable_bandwidth):
            return None
        latency = self.latency
        if self._latency_jitter_free:
            nominal_row_array = getattr(latency, "nominal_row_array", None)
            if nominal_row_array is None:
                return None
            propagation_arr = nominal_row_array(sender, receivers)
        else:
            delay_row_array = getattr(latency, "delay_row_array", None)
            if delay_row_array is None:
                return None
            propagation_arr = delay_row_array(sender, receivers, rng)
        if propagation_arr is None:
            return None
        size = getattr(message, "wire_size", 0)
        # ``(now + transfer) + propagation`` with the second add done in
        # place on the fresh left-hand temporary (never the cached rows).
        arrivals = now + self._transfer_array(sender, receivers, size)
        arrivals += propagation_arr
        return arrivals

    def _transfer_array(self, sender: int, receivers: Sequence[int], size: int):
        """:meth:`_transfer_row` as a cached numpy array (same validation)."""
        key = (sender, size)
        entry = self._transfer_array_cache.get(key)
        if entry is not None and (entry[0] is receivers or entry[0] == receivers):
            return entry[1]
        arr = _np.asarray(self._transfer_row(sender, receivers, size),
                          dtype=_np.float64)
        self._transfer_array_cache[key] = (tuple(receivers), arr)
        return arr

    def _broadcast_times_scalar(self, sender: int, receivers: Sequence[int],
                                size: int, now: float,
                                rng: random.Random) -> List[Tuple[int, float]]:
        """The original per-copy pipeline (drop and propagation draws
        interleaved per receiver)."""
        transfer_time = self.bandwidth.transfer_time
        delay = self.latency.delay
        faults = self.faults
        pairs: List[Tuple[int, float]] = []
        append = pairs.append
        for receiver in receivers:
            if faults.should_drop(sender, receiver, now, rng):
                continue
            send_time = now
            release = faults.partition_release(sender, receiver, now)
            if release is not None:
                send_time = release
            transfer = transfer_time(sender, receiver, size)
            append((receiver, send_time + transfer + delay(sender, receiver, rng)))
        return pairs


class ContendedUplinkTransport(Transport):
    """Sender-uplink contention: outgoing bytes serialize on one NIC queue.

    Each replica has a single uplink of ``uplink_bytes_per_s``; a copy can
    start serializing only once the sender's previously queued bytes have
    drained (FIFO).  A broadcast therefore drains sequentially: copy ``i``
    of an n-way broadcast waits for the first ``i−1`` copies, so a leader's
    proposal fan-out costs ``(n−1) · size / uplink`` of sender time rather
    than being free — the effect that separates rotating-leader fast paths
    from single-leader bottleneck protocols.

    Self-deliveries are loopback and bypass the NIC.  Dropped copies do not
    occupy the uplink (loss is modelled end-to-end, as in
    :class:`DirectTransport`).  Per-copy wire time is
    ``per_message_overhead + size / uplink_bytes_per_s``, reusing the
    bandwidth model's overhead term; propagation comes from the latency
    model as usual.
    """

    name = "contended"

    #: Default uplink capacity: 1 Gbit/s, the paper's instance uplink.
    DEFAULT_UPLINK_BYTES_PER_S = 125_000_000.0

    def __init__(self, latency: LatencyModel, bandwidth: BandwidthModel,
                 faults: FaultPlan,
                 uplink_bytes_per_s: Optional[float] = None) -> None:
        super().__init__(latency, bandwidth, faults)
        if uplink_bytes_per_s is None:
            uplink_bytes_per_s = self.DEFAULT_UPLINK_BYTES_PER_S
        if uplink_bytes_per_s <= 0:
            raise ValueError("uplink capacity must be positive")
        self.uplink_bytes_per_s = float(uplink_bytes_per_s)
        self._nic_free_at: Dict[int, float] = {}
        self._wire_bytes = 0
        self._queued_messages = 0
        self._queue_delay_total = 0.0
        self._queue_delay_max = 0.0

    def reset(self) -> None:
        """Clear the NIC queues and counters."""
        self._nic_free_at.clear()
        self._wire_bytes = 0
        self._queued_messages = 0
        self._queue_delay_total = 0.0
        self._queue_delay_max = 0.0

    def stats(self) -> Dict[str, object]:
        """Uplink counters: wire bytes, copies that queued, queueing delay."""
        return {
            "transport": self.name,
            "uplink_bytes_per_s": self.uplink_bytes_per_s,
            "wire_bytes": self._wire_bytes,
            "queued_messages": self._queued_messages,
            "queue_delay_total_s": self._queue_delay_total,
            "queue_delay_max_s": self._queue_delay_max,
        }

    def unicast(self, sender: int, receiver: int, message: Message, now: float,
                rng: random.Random) -> Optional[Delivery]:
        """Copy through the sender's NIC queue (loopback for self-sends).

        A partition holds the copy *after* it leaves the NIC (the period of
        asynchrony is in the network, not the sender): the uplink drains
        from ``now`` regardless, so partitioned traffic never reserves the
        NIC from a future release time while the link sits idle.  Partition
        membership is evaluated at the NIC-departure time, so a copy whose
        backlog pushes its departure into a later partition window is held
        like any other message travelling at that time.
        """
        size = getattr(message, "wire_size", 0)
        faults = None
        if not self._trivial_faults:
            faults = self.faults
            if faults.should_drop(sender, receiver, now, rng):
                return None
        propagation = self.latency.delay(sender, receiver, rng)
        if receiver == sender:
            # Loopback: no uplink involved; charge only the LAN-side transfer.
            transfer = self.bandwidth.transfer_time(sender, receiver, size)
            done = now + transfer
            hold = 0.0
            if faults is not None:
                release = faults.partition_release(sender, receiver, done)
                if release is not None:
                    hold = release - done
                    done = release
            return Delivery(receiver, done + propagation,
                            hold, 0.0, transfer, propagation)
        transfer = (self.bandwidth.per_message_overhead_s
                    + size / self.uplink_bytes_per_s)
        start = self._nic_free_at.get(sender, 0.0)
        if start < now:
            start = now
        queue = start - now
        done = start + transfer
        self._nic_free_at[sender] = done
        self._wire_bytes += size
        if queue > 0.0:
            self._queued_messages += 1
            self._queue_delay_total += queue
            if queue > self._queue_delay_max:
                self._queue_delay_max = queue
        hold = 0.0
        if faults is not None:
            release = faults.partition_release(sender, receiver, done)
            if release is not None:
                hold = release - done
                done = release
        return Delivery(receiver, done + propagation,
                        hold, queue, transfer, propagation)

    def broadcast(self, sender: int, receivers: Sequence[int], message: Message,
                  now: float, rng: random.Random) -> List[Delivery]:
        """Vectorized NIC drain: one cumulative sum over the n−1 wire copies.

        Per-copy :meth:`unicast` re-reads and re-writes ``_nic_free_at`` and
        the queue counters n−1 times per broadcast; here the drain is a
        single running ``done += transfer`` accumulation (every copy of one
        broadcast has the same wire size, so ``transfer`` is computed once)
        with one dict store at the end.  The arithmetic is bit-identical:
        after the first wire copy the NIC free time always exceeds ``now``,
        so ``max(free, now)`` degenerates to the running sum.  The rng order
        (per receiver: drop draw, then propagation draw) is unchanged.
        """
        size = getattr(message, "wire_size", 0)
        trivial = self._trivial_faults
        faults = self.faults
        delay = self.latency.delay
        transfer = (self.bandwidth.per_message_overhead_s
                    + size / self.uplink_bytes_per_s)
        nic = self._nic_free_at.get(sender, 0.0)
        if nic < now:
            nic = now
        wire_copies = 0
        queued = 0
        queue_total = self._queue_delay_total
        queue_max = self._queue_delay_max
        deliveries: List[Delivery] = []
        append = deliveries.append
        for receiver in receivers:
            if not trivial and faults.should_drop(sender, receiver, now, rng):
                continue
            propagation = delay(sender, receiver, rng)
            if receiver == sender:
                local_transfer = self.bandwidth.transfer_time(sender, receiver, size)
                done = now + local_transfer
                hold = 0.0
                if not trivial:
                    release = faults.partition_release(sender, receiver, done)
                    if release is not None:
                        hold = release - done
                        done = release
                append(Delivery(receiver, done + propagation,
                                hold, 0.0, local_transfer, propagation))
                continue
            queue = nic - now
            done = nic + transfer
            nic = done
            wire_copies += 1
            if queue > 0.0:
                queued += 1
                queue_total += queue
                if queue > queue_max:
                    queue_max = queue
            hold = 0.0
            if not trivial:
                release = faults.partition_release(sender, receiver, done)
                if release is not None:
                    hold = release - done
                    done = release
            append(Delivery(receiver, done + propagation,
                            hold, queue, transfer, propagation))
        if wire_copies:
            self._nic_free_at[sender] = nic
            self._wire_bytes += wire_copies * size
            self._queued_messages += queued
            self._queue_delay_total = queue_total
            self._queue_delay_max = queue_max
        return deliveries

    def broadcast_times(self, sender: int, receivers: Sequence[int],
                        message: Message, now: float,
                        rng: random.Random) -> List[Tuple[int, float]]:
        """:meth:`broadcast` without the Delivery objects (same drain math).

        The propagation terms come from the latency model's batched row
        API: one `delay_row` over the (surviving) receivers replaces the
        per-copy `delay` calls, with the same draws in the same order.
        Scalar per-receiver draws are kept only when drop draws would
        interleave with jitter draws.
        """
        size = getattr(message, "wire_size", 0)
        trivial = self._trivial_faults
        faults = self.faults
        if trivial:
            survivors = receivers
        elif self._latency_jitter_free or not faults.drop_draws_rng(now):
            # The drop pass consumes any drop draws first; the scalar loop
            # would have drawn propagation only for survivors afterwards.
            survivors = [receiver for receiver in receivers
                         if not faults.should_drop(sender, receiver, now, rng)]
        else:
            survivors = None  # interleaved draws: scalar fallback below
        transfer = (self.bandwidth.per_message_overhead_s
                    + size / self.uplink_bytes_per_s)
        nic = self._nic_free_at.get(sender, 0.0)
        if nic < now:
            nic = now
        wire_copies = 0
        queued = 0
        queue_total = self._queue_delay_total
        queue_max = self._queue_delay_max
        pairs: List[Tuple[int, float]] = []
        append = pairs.append
        if survivors is not None:
            propagation_row = self.latency.delay_row(sender, survivors, rng)
            for receiver, propagation in zip(survivors, propagation_row):
                if receiver == sender:
                    done = now + self.bandwidth.transfer_time(sender, receiver, size)
                    if not trivial:
                        release = faults.partition_release(sender, receiver, done)
                        if release is not None:
                            done = release
                    append((receiver, done + propagation))
                    continue
                queue = nic - now
                done = nic + transfer
                nic = done
                wire_copies += 1
                if queue > 0.0:
                    queued += 1
                    queue_total += queue
                    if queue > queue_max:
                        queue_max = queue
                if not trivial:
                    release = faults.partition_release(sender, receiver, done)
                    if release is not None:
                        done = release
                append((receiver, done + propagation))
            if wire_copies:
                self._nic_free_at[sender] = nic
                self._wire_bytes += wire_copies * size
                self._queued_messages += queued
                self._queue_delay_total = queue_total
                self._queue_delay_max = queue_max
            return pairs
        delay = self.latency.delay
        for receiver in receivers:
            if faults.should_drop(sender, receiver, now, rng):
                continue
            propagation = delay(sender, receiver, rng)
            if receiver == sender:
                done = now + self.bandwidth.transfer_time(sender, receiver, size)
                if not trivial:
                    release = faults.partition_release(sender, receiver, done)
                    if release is not None:
                        done = release
                append((receiver, done + propagation))
                continue
            queue = nic - now
            done = nic + transfer
            nic = done
            wire_copies += 1
            if queue > 0.0:
                queued += 1
                queue_total += queue
                if queue > queue_max:
                    queue_max = queue
            if not trivial:
                release = faults.partition_release(sender, receiver, done)
                if release is not None:
                    done = release
            append((receiver, done + propagation))
        if wire_copies:
            self._nic_free_at[sender] = nic
            self._wire_bytes += wire_copies * size
            self._queued_messages += queued
            self._queue_delay_total = queue_total
            self._queue_delay_max = queue_max
        return pairs


class RelayTransport(Transport):
    """Dissemination trees: broadcasts fan out through ``k`` relay replicas.

    A broadcast sends direct copies to the sender itself and to the first
    ``k`` live non-sender receivers (the relays); every remaining receiver
    is assigned to a relay round-robin and gets its copy *forwarded*: it
    arrives at ``relay_arrival + transfer(relay, receiver) +
    propagation(relay, receiver)``.  The sender thus puts only ``k`` copies
    on its uplink regardless of n, at the price of one extra hop for the
    non-relay receivers.

    Robustness choices (kept deliberately simple):

    * random loss is decided once end-to-end per receiver, with the same
      ``sender → receiver`` draw a direct broadcast would use, so loss
      rates are comparable across transports;
    * crashed relays are never selected, and if a relay's own copy is lost
      the sender falls back to serving that relay's children directly — a
      one-shot stand-in for the retransmission a real dissemination layer
      would perform, so a lost relay never silences its whole subtree.

    Unicasts do not use relays; they behave exactly like
    :class:`DirectTransport`.
    """

    name = "relay"

    def __init__(self, latency: LatencyModel, bandwidth: BandwidthModel,
                 faults: FaultPlan, relays: int = 2) -> None:
        super().__init__(latency, bandwidth, faults)
        if relays < 1:
            raise ValueError("relay count must be positive")
        self.relays = relays
        self._wire_copies = 0
        self._wire_bytes = 0
        self._sender_copies = 0
        self._sender_bytes = 0
        self._direct = DirectTransport(latency, bandwidth, faults)
        # (sender, size) -> (receivers key, relay/tail row templates,
        # counter deltas); see _relay_template.
        self._relay_template_cache: Dict[Tuple[int, int], tuple] = {}

    def reset(self) -> None:
        """Clear the wire counters."""
        self._wire_copies = 0
        self._wire_bytes = 0
        self._sender_copies = 0
        self._sender_bytes = 0

    def stats(self) -> Dict[str, object]:
        """Wire counters for the tree.

        ``wire_copies``/``wire_bytes`` count per-link transmissions: every
        delivery is exactly one new transmission (a forwarded child reuses
        the already-counted sender→relay hop), so a full tree costs the
        same n−1 transmissions a direct broadcast does.  The tree's payoff
        is in ``sender_copies``/``sender_bytes`` — the share transmitted by
        the *original sender*, O(k) per broadcast instead of O(n).
        """
        return {
            "transport": self.name,
            "relays": self.relays,
            "wire_copies": self._wire_copies,
            "wire_bytes": self._wire_bytes,
            "sender_copies": self._sender_copies,
            "sender_bytes": self._sender_bytes,
        }

    def unicast(self, sender: int, receiver: int, message: Message, now: float,
                rng: random.Random) -> Optional[Delivery]:
        """Point-to-point messages skip the tree entirely."""
        delivery = self._direct.unicast(sender, receiver, message, now, rng)
        if delivery is not None and receiver != sender:
            self._count_wire(sender=True, size=getattr(message, "wire_size", 0))
        return delivery

    def _count_wire(self, sender: bool, size: int) -> None:
        """Record one link transmission (``sender=True`` if the original
        sender transmitted it, as opposed to a relay)."""
        self._wire_copies += 1
        self._wire_bytes += size
        if sender:
            self._sender_copies += 1
            self._sender_bytes += size

    def broadcast(self, sender: int, receivers: Sequence[int], message: Message,
                  now: float, rng: random.Random) -> List[Delivery]:
        """Two-hop dissemination through the relay set.

        The rng order is fixed and documented: first the relays' direct
        copies (in receiver order), then one end-to-end drop draw plus one
        final-hop propagation draw per remaining receiver (in receiver
        order) — so executions are reproducible under a fixed seed.
        """
        size = getattr(message, "wire_size", 0)
        faults = self.faults
        relay_ids = [
            receiver for receiver in receivers
            if receiver != sender and not faults.is_crashed(receiver, now)
        ][: self.relays]
        if not relay_ids:
            deliveries = self._direct.broadcast(sender, receivers, message, now, rng)
            for delivery in deliveries:
                if delivery.receiver != sender:
                    self._count_wire(sender=True, size=size)
            return deliveries
        deliveries: List[Delivery] = []
        arrivals: Dict[int, float] = {}  # relay id -> arrival time (None if lost)
        for relay in relay_ids:
            delivery = self._direct.unicast(sender, relay, message, now, rng)
            if delivery is not None:
                arrivals[relay] = delivery.deliver_at
                deliveries.append(delivery)
                self._count_wire(sender=True, size=size)
        transfer_time = self.bandwidth.transfer_time
        delay = self.latency.delay
        child_index = 0
        for receiver in receivers:
            if receiver == sender:
                # Loopback: delivered, but never on the wire.
                delivery = self._direct.unicast(sender, receiver, message, now, rng)
                if delivery is not None:
                    deliveries.append(delivery)
                continue
            if receiver in relay_ids:
                continue
            relay = relay_ids[child_index % len(relay_ids)]
            child_index += 1
            if not self._trivial_faults and faults.should_drop(
                    sender, receiver, now, rng):
                continue
            forward_at = arrivals.get(relay)
            if forward_at is None:
                # The relay's copy was lost: the sender serves this child
                # directly (modelling repair/retransmission), with the same
                # partition hold a direct send would observe.
                send_time = now
                hold = 0.0
                if not self._trivial_faults:
                    release = faults.partition_release(sender, receiver, now)
                    if release is not None:
                        send_time = release
                        hold = release - now
                transfer = transfer_time(sender, receiver, size)
                propagation = delay(sender, receiver, rng)
                deliveries.append(Delivery(receiver,
                                           send_time + transfer + propagation,
                                           hold, 0.0, transfer, propagation))
                self._count_wire(sender=True, size=size)
                continue
            start = forward_at
            if not self._trivial_faults:
                release = faults.partition_release(relay, receiver, forward_at)
                if release is not None:
                    start = release
            transfer = transfer_time(relay, receiver, size)
            propagation = delay(relay, receiver, rng)
            # Decomposition: the whole upstream (sender→relay) leg is the
            # copy's queue_delay, the relay-side partition wait its hold —
            # so the Delivery invariant (components sum to deliver_at from
            # the broadcast instant) holds for forwarded copies too.
            deliveries.append(Delivery(receiver, start + transfer + propagation,
                                       start - forward_at, forward_at - now,
                                       transfer, propagation, via=relay))
            # One new transmission: the relay→child hop.  The sender→relay
            # hop was counted once when the relay's own copy was scheduled.
            self._count_wire(sender=False, size=size)
        return deliveries

    def _relay_template(self, sender: int, receivers: Sequence[int],
                        size: int) -> Optional[tuple]:
        """The fault-free tree flattened to per-copy rows, cached.

        With trivial faults the relay set, child assignment, transfer
        times, and nominal propagation terms are all pure functions of
        ``(sender, receivers, size)``, so the whole broadcast collapses to
        two precomputed rows:

        * ``relay_entries`` — ``(relay, transfer, nominal)`` per relay, in
          the order the scalar path schedules them;
        * ``tail_entries`` — ``(receiver, relay_index, src, transfer,
          nominal)`` for the self copy (``relay_index == -1``, priced from
          the sender) and each child (priced from its relay), in receiver
          order.

        ``None`` means no relay is available (the scalar path falls back to
        a direct broadcast).
        """
        key = (sender, size)
        entry = self._relay_template_cache.get(key)
        if entry is not None and (entry[0] is receivers or entry[0] == receivers):
            return entry[1]
        relay_ids = [receiver for receiver in receivers
                     if receiver != sender][: self.relays]
        if not relay_ids:
            template = None
        else:
            transfer_time = self.bandwidth.transfer_time
            index = {receiver: i for i, receiver in enumerate(receivers)}
            sender_nominal = self.latency.nominal_row(sender, receivers)
            relay_entries = [
                (relay, transfer_time(sender, relay, size),
                 sender_nominal[index[relay]])
                for relay in relay_ids
            ]
            relay_pos = {relay: i for i, relay in enumerate(relay_ids)}
            relay_nominals = {
                relay: self.latency.nominal_row(relay, receivers)
                for relay in relay_ids
            }
            tail_entries = []
            child_index = 0
            for receiver in receivers:
                if receiver == sender:
                    tail_entries.append(
                        (receiver, -1, sender,
                         transfer_time(sender, receiver, size),
                         sender_nominal[index[receiver]]))
                    continue
                if receiver in relay_pos:
                    continue
                relay = relay_ids[child_index % len(relay_ids)]
                child_index += 1
                tail_entries.append(
                    (receiver, relay_pos[relay], relay,
                     transfer_time(relay, receiver, size),
                     relay_nominals[relay][index[receiver]]))
            wire_copies = len(relay_ids) + child_index
            template = (relay_entries, tail_entries, wire_copies, len(relay_ids))
        self._relay_template_cache[key] = (tuple(receivers), template)
        return template

    def broadcast_times(self, sender: int, receivers: Sequence[int],
                        message: Message, now: float,
                        rng: random.Random) -> List[Tuple[int, float]]:
        """:meth:`broadcast` reduced to arrival pairs, template-batched.

        With trivial faults and the stock bandwidth model the tree shape is
        invariant, so the broadcast replays the cached template: pure float
        adds for jitter-free models, or one :meth:`LatencyModel.delay` draw
        per copy (same sources, same order as the scalar path) otherwise.
        Counters advance by the template's precomputed deltas.  Any faulty
        or custom-bandwidth configuration keeps the scalar pipeline.
        """
        if not self._trivial_faults or not self._cacheable_bandwidth:
            return super().broadcast_times(sender, receivers, message, now, rng)
        size = getattr(message, "wire_size", 0)
        template = self._relay_template(sender, receivers, size)
        if template is None:
            return super().broadcast_times(sender, receivers, message, now, rng)
        relay_entries, tail_entries, wire_copies, sender_copies = template
        pairs: List[Tuple[int, float]] = []
        append = pairs.append
        arrivals: List[float] = []
        arrived = arrivals.append
        if self._latency_jitter_free:
            for relay, transfer, propagation in relay_entries:
                at = now + transfer + propagation
                arrived(at)
                append((relay, at))
            for receiver, relay_index, _src, transfer, propagation in tail_entries:
                base = now if relay_index < 0 else arrivals[relay_index]
                append((receiver, base + transfer + propagation))
        else:
            delay = self.latency.delay
            for relay, transfer, _nominal in relay_entries:
                at = now + transfer + delay(sender, relay, rng)
                arrived(at)
                append((relay, at))
            for receiver, relay_index, src, transfer, _nominal in tail_entries:
                base = now if relay_index < 0 else arrivals[relay_index]
                append((receiver, base + transfer + delay(src, receiver, rng)))
        self._wire_copies += wire_copies
        self._wire_bytes += wire_copies * size
        self._sender_copies += sender_copies
        self._sender_bytes += sender_copies * size
        return pairs


#: Transport registry, keyed by the names accepted by
#: :class:`repro.runtime.simulator.NetworkConfig` and the CLI.
TRANSPORTS = {
    "direct": DirectTransport,
    "contended": ContendedUplinkTransport,
    "relay": RelayTransport,
}


def available_transports() -> List[str]:
    """The registered transport names, sorted."""
    return sorted(TRANSPORTS)


def build_transport(transport, latency: LatencyModel, bandwidth: BandwidthModel,
                    faults: FaultPlan, uplink_bytes_per_s: Optional[float] = None,
                    relays: int = 2) -> Transport:
    """Build (or adopt) the transport selected by a network configuration.

    Args:
        transport: a registered name (``"direct"``, ``"contended"``,
            ``"relay"``) or an already-constructed :class:`Transport`
            instance (adopted as-is after a :meth:`Transport.reset`).
        latency: propagation-delay model.
        bandwidth: transfer-time model.
        faults: fault plan consulted on every send.
        uplink_bytes_per_s: NIC capacity for ``"contended"`` (``None``
            selects the 1 Gbit/s default).
        relays: relay fan-out for ``"relay"``.

    Raises:
        KeyError: for an unknown transport name.
    """
    if isinstance(transport, Transport):
        transport.reset()
        return transport
    try:
        factory = TRANSPORTS[transport]
    except KeyError:
        available = ", ".join(available_transports())
        raise KeyError(
            f"unknown transport {transport!r} (available: {available})"
        ) from None
    if factory is ContendedUplinkTransport:
        return ContendedUplinkTransport(latency, bandwidth, faults,
                                        uplink_bytes_per_s=uplink_bytes_per_s)
    if factory is RelayTransport:
        return RelayTransport(latency, bandwidth, faults, relays=relays)
    return factory(latency, bandwidth, faults)
