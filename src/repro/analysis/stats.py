"""Small, dependency-free statistics helpers.

The evaluation needs only basic descriptive statistics (means, percentiles,
variance, simple confidence intervals) and relative-improvement arithmetic,
so these are implemented directly rather than pulling in numpy/scipy for the
core library (they remain optional extras for notebook-style analysis).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance; 0.0 for fewer than two samples."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return sum((value - centre) ** 2 for value in values) / (len(values) - 1)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in ``[0, 100]``); 0.0 if empty.

    Raises:
        ValueError: if ``q`` is outside ``[0, 100]``.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def median(values: Sequence[float]) -> float:
    """Median via the nearest-rank 50th percentile."""
    return percentile(values, 50)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weight-weighted arithmetic mean; 0.0 for empty or zero-weight input.

    Raises:
        ValueError: if the sequences differ in length.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    # ``math.fsum`` keeps both accumulations exactly rounded: at fluid-mode
    # scale (1e6-count transaction weights) a naive running sum drifts by
    # enough to move the mean of close-together latencies.
    total = math.fsum(weights)
    if total <= 0:
        return 0.0
    return math.fsum(v * w for v, w in zip(values, weights)) / total


def weighted_percentile(values: Sequence[float], weights: Sequence[float],
                        q: float) -> float:
    """Nearest-rank percentile of a weighted sample; 0.0 if empty.

    A value with weight ``w`` counts as ``w`` identical observations — the
    form the fluid workload mode produces (one latency per committed flow
    batch, weighted by its transaction count).  With unit weights this is
    exactly :func:`percentile`.

    Raises:
        ValueError: if ``q`` is outside ``[0, 100]`` or lengths differ.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    pairs = sorted(
        (v, w) for v, w in zip(values, weights) if w > 0
    )
    if not pairs:
        return 0.0
    if q == 0:
        return pairs[0][0]
    # Exactly-rounded total, and a Neumaier-compensated running sum for the
    # cumulative rank: naive float accumulation of 1e6-count weights can
    # round the running total past (or short of) ``target`` and flip the
    # nearest-rank bucket, breaking the documented unit-weight ≡
    # ``percentile`` equivalence.  Integer-valued weights stay exact here
    # (every partial sum is exact below 2**53, matching ``percentile``'s
    # integer rank arithmetic), and fractional weights get an error term
    # no worse than one ulp of the total.
    total = math.fsum(w for _, w in pairs)
    target = q / 100.0 * total
    cumulative = 0.0
    residue = 0.0
    for value, weight in pairs:
        new = cumulative + weight
        if cumulative >= weight:
            residue += (cumulative - new) + weight
        else:
            residue += (weight - new) + cumulative
        cumulative = new
        if cumulative + residue >= target:
            return value
    return pairs[-1][0]


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% confidence interval of the mean.

    Returns ``(low, high)``; collapses to ``(mean, mean)`` for fewer than two
    samples.
    """
    centre = mean(values)
    half_width = ci95_half_width(values)
    return (centre - half_width, centre + half_width)


def ci95_half_width(values: Sequence[float]) -> float:
    """Half-width of the normal-approximation 95% CI of the mean.

    0.0 for fewer than two samples, so single-replication sweeps report a
    degenerate ``± 0`` interval rather than failing.
    """
    if len(values) < 2:
        return 0.0
    return 1.96 * stddev(values) / math.sqrt(len(values))


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    Positive means ``improved`` is smaller (better, for latencies).  Returns
    0.0 when the baseline is zero.
    """
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0
