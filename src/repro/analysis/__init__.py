"""Statistics and report formatting for experiment results."""

from repro.analysis.report import format_table, render_series, render_timeseries, sparkline
from repro.analysis.stats import (
    ci95_half_width,
    confidence_interval_95,
    improvement_pct,
    mean,
    median,
    percentile,
    stddev,
    variance,
)

__all__ = [
    "ci95_half_width",
    "confidence_interval_95",
    "format_table",
    "improvement_pct",
    "mean",
    "median",
    "percentile",
    "render_series",
    "render_timeseries",
    "sparkline",
    "stddev",
    "variance",
]
