"""Plain-text table rendering for experiment output.

Benchmarks and the CLI print the reproduced tables/figure series as aligned
text tables so that the "same rows/series the paper reports" are visible
directly in the terminal, with no plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    lines = [_line(list(headers)), separator]
    lines.extend(_line(row) for row in rendered_rows)
    return "\n".join(lines)


def render_series(title: str, series: Mapping[str, Sequence[Mapping[str, object]]],
                  columns: Sequence[str]) -> str:
    """Render one figure's data as per-protocol sections.

    Args:
        title: figure title.
        series: mapping protocol label → list of row dictionaries.
        columns: which keys of each row dictionary to print, in order.
    """
    parts = [title, "=" * len(title)]
    for label, rows in series.items():
        parts.append("")
        parts.append(f"[{label}]")
        parts.append(format_table(columns, [[row.get(col, "") for col in columns] for row in rows]))
    return "\n".join(parts)
