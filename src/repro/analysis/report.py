"""Plain-text table rendering for experiment output.

Benchmarks and the CLI print the reproduced tables/figure series as aligned
text tables so that the "same rows/series the paper reports" are visible
directly in the terminal, with no plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    lines = [_line(list(headers)), separator]
    lines.extend(_line(row) for row in rendered_rows)
    return "\n".join(lines)


#: Glyph ramp used by :func:`sparkline`, lowest to highest.
_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Render ``values`` as a one-line ASCII intensity chart.

    Values are bucketed down to at most ``width`` characters (bucket mean)
    and scaled to the observed maximum, clamping negatives to the baseline.
    An all-zero or empty series renders as spaces, so rising-and-draining
    shapes (e.g. mempool occupancy during a flash crowd) are visible at a
    glance in plain terminals.
    """
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):max(int((i + 1) * bucket), int(i * bucket) + 1)])
            / max(int((i + 1) * bucket) - int(i * bucket), 1)
            for i in range(width)
        ]
    peak = max(values)
    if peak <= 0:
        return " " * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round(min(max(value / peak, 0.0), 1.0) * top)] for value in values
    )


def render_timeseries(title: str, times: Sequence[float], values: Sequence[float],
                      width: int = 64, unit: str = "") -> str:
    """Render a time series as a labelled sparkline block.

    Args:
        title: caption printed above the chart.
        times: sample timestamps (seconds); only the endpoints are labelled.
        values: sample values, same length as ``times``.
        width: maximum chart width in characters.
        unit: unit suffix for the peak label.
    """
    if len(times) != len(values):
        raise ValueError("times and values must have the same length")
    if not values:
        return f"{title}\n(no samples)"
    peak = max(values)
    chart = sparkline(values, width=width)
    span = f"t={times[0]:.1f}s .. t={times[-1]:.1f}s"
    return (f"{title}\n"
            f"|{chart}| peak {peak:g}{unit}\n"
            f" {span}, {len(values)} samples")


def with_ci_columns(columns: Sequence[str],
                    series: Mapping[str, Sequence[Mapping[str, object]]]) -> List[str]:
    """Interleave ``<col>_ci95`` columns after each base column that has one.

    Multi-replication sweeps attach ``±`` half-width columns to their rows;
    this places each one directly after the statistic it qualifies, and drops
    the ones no row carries (single-replication runs render unchanged).
    """
    present = set()
    for rows in series.values():
        for row in rows:
            present.update(row)
    expanded: List[str] = []
    for column in columns:
        expanded.append(column)
        ci_column = f"{column}_ci95"
        if ci_column in present:
            expanded.append(ci_column)
    return expanded


def render_series(title: str, series: Mapping[str, Sequence[Mapping[str, object]]],
                  columns: Sequence[str]) -> str:
    """Render one figure's data as per-protocol sections.

    Args:
        title: figure title.
        series: mapping protocol label → list of row dictionaries.
        columns: which keys of each row dictionary to print, in order.
    """
    parts = [title, "=" * len(title)]
    for label, rows in series.items():
        parts.append("")
        parts.append(f"[{label}]")
        parts.append(format_table(columns, [[row.get(col, "") for col in columns] for row in rows]))
    return "\n".join(parts)
