"""The replica context: everything a protocol may do to the outside world.

A protocol state machine never touches sockets, clocks, or queues directly.
It receives a :class:`ReplicaContext` and uses it to read the time, send and
broadcast messages, arm timers, and report committed blocks.  Both execution
backends (discrete-event simulation and asyncio) implement this interface, so
protocol code is identical under either.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.types.messages import Message


@dataclass(frozen=True)
class Timer:
    """A timer event delivered back to the protocol.

    Attributes:
        name: protocol-chosen label, e.g. ``"proposal"`` or ``"round-timeout"``.
        fire_time: absolute time at which the timer fires.
        data: optional protocol-chosen payload (e.g. the round number).
        timer_id: unique id assigned by the runtime (used for cancellation).
    """

    name: str
    fire_time: float
    data: Any = None
    timer_id: int = field(default=-1, compare=False)


class ReplicaContext(ABC):
    """Interface through which a protocol interacts with its environment."""

    @property
    @abstractmethod
    def replica_id(self) -> int:
        """The id of the replica this context belongs to."""

    @property
    @abstractmethod
    def replica_ids(self) -> Sequence[int]:
        """All replica ids in the system (sorted).

        Implementations may return an immutable sequence (the simulator
        hands out a cached tuple); callers must not mutate it.
        """

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    @abstractmethod
    def send(self, receiver: int, message: Message) -> None:
        """Send ``message`` to a single replica."""

    @abstractmethod
    def broadcast(self, message: Message) -> None:
        """Send ``message`` to every replica, including this one."""

    @abstractmethod
    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        """Arm a timer firing ``delay`` seconds from now; returns its id."""

    @abstractmethod
    def cancel_timer(self, timer_id: int) -> None:
        """Cancel a previously armed timer (no-op if already fired)."""

    @abstractmethod
    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        """Report newly finalized blocks, oldest first.

        Args:
            blocks: the finalized blocks being output, in chain order.
            finalization_kind: ``"fast"`` if the newest block was FP-finalized,
                ``"slow"`` otherwise.  Implicitly finalized ancestors inherit
                the kind of the explicit finalization that committed them.
        """

    def log(self, message: str) -> None:  # pragma: no cover - optional hook
        """Optional debug logging hook; the default implementation discards."""
