"""Execution tracing: structured per-replica event logs.

Debugging a BFT protocol usually means answering "what did replica 7 know at
t=3.2s, and why did it vote for that block?".  :class:`ProtocolTracer` wraps
any protocol object and records a structured event for every callback
(start, message in, timer) and every action taken through the context
(send, broadcast, timer armed, commit), with timestamps.  Traces can be
filtered, summarised, and rendered as a timeline.

The tracer is pure decoration: it changes neither timing nor behaviour, so a
traced replica can be dropped into any simulation (or the asyncio runtime)
in place of the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.protocols.base import Protocol
from repro.runtime.context import ReplicaContext, Timer
from repro.types.messages import Message


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        time: simulation / model time of the event.
        replica_id: the replica the event belongs to.
        kind: event kind, one of ``start``, ``recv``, ``timer``, ``send``,
            ``broadcast``, ``arm-timer``, ``commit`` — plus, for network
            traces (:func:`attach_network_trace`), ``net-send`` and
            ``net-drop``, and for compute traces
            (:func:`attach_compute_trace`), ``cpu-busy`` and ``cpu-wait``.
        detail: short human-readable description.
        data: optional structured payload (message type, block round, ...;
            for ``net-send`` events the delay decomposition — queueing,
            transfer, propagation — of the scheduled delivery).
    """

    time: float
    replica_id: int
    kind: str
    detail: str
    data: Optional[Dict[str, Any]] = None


class TraceLog:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        """Record an event."""
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self, kind: Optional[str] = None,
               replica_id: Optional[int] = None) -> List[TraceEvent]:
        """Return events, optionally filtered by kind and/or replica."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (replica_id is None or event.replica_id == replica_id)
        ]

    def counts_by_kind(self) -> Dict[str, int]:
        """Return how many events of each kind were recorded."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Return events with ``start <= time < end``."""
        return [event for event in self._events if start <= event.time < end]

    def render(self, limit: Optional[int] = None) -> str:
        """Render the trace as a plain-text timeline (one line per event)."""
        lines = []
        for event in self._events[: limit if limit is not None else len(self._events)]:
            lines.append(
                f"{event.time:10.4f}s  r{event.replica_id:<3d} {event.kind:<10s} {event.detail}"
            )
        return "\n".join(lines)


class _TracingContext(ReplicaContext):
    """Context wrapper recording every action the protocol takes."""

    def __init__(self, inner: ReplicaContext, log: TraceLog, replica_id: int) -> None:
        self._inner = inner
        self._log = log
        self._replica_id = replica_id

    @property
    def replica_id(self) -> int:
        return self._inner.replica_id

    @property
    def replica_ids(self) -> list:
        return self._inner.replica_ids

    def now(self) -> float:
        return self._inner.now()

    def _record(self, kind: str, detail: str, data: Optional[Dict[str, Any]] = None) -> None:
        self._log.append(
            TraceEvent(time=self._inner.now(), replica_id=self._replica_id, kind=kind,
                       detail=detail, data=data)
        )

    def send(self, receiver: int, message: Message) -> None:
        self._record("send", f"{type(message).__name__} -> r{receiver}")
        self._inner.send(receiver, message)

    def broadcast(self, message: Message) -> None:
        self._record("broadcast", type(message).__name__)
        self._inner.broadcast(message)

    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        self._record("arm-timer", f"{name} in {delay:.3f}s")
        return self._inner.set_timer(delay, name, data)

    def cancel_timer(self, timer_id: int) -> None:
        self._inner.cancel_timer(timer_id)

    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        blocks = list(blocks)
        rounds = [block.round for block in blocks]
        self._record("commit", f"{len(blocks)} block(s) rounds {rounds} ({finalization_kind})",
                     data={"rounds": rounds, "kind": finalization_kind})
        self._inner.commit(blocks, finalization_kind=finalization_kind)


class ProtocolTracer(Protocol):
    """Wraps a protocol and records a :class:`TraceLog` of its execution."""

    name = "traced"

    def __init__(self, inner: Protocol, log: Optional[TraceLog] = None) -> None:
        super().__init__(inner.replica_id, inner.params, inner.registry)
        self.inner = inner
        self.log = log if log is not None else TraceLog()
        self.proposal_times = inner.proposal_times
        self.name = f"traced-{inner.name}"

    def _record(self, ctx: ReplicaContext, kind: str, detail: str) -> None:
        self.log.append(
            TraceEvent(time=ctx.now(), replica_id=self.replica_id, kind=kind, detail=detail)
        )

    def on_start(self, ctx: ReplicaContext) -> None:
        """Record the start event and forward it."""
        self._record(ctx, "start", self.inner.name)
        self.inner.on_start(_TracingContext(ctx, self.log, self.replica_id))

    def on_message(self, ctx: ReplicaContext, sender: int, message: Message) -> None:
        """Record the delivery and forward it."""
        self._record(ctx, "recv", f"{type(message).__name__} <- r{sender}")
        self.inner.on_message(_TracingContext(ctx, self.log, self.replica_id), sender, message)

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        """Record the timer firing and forward it."""
        self._record(ctx, "timer", timer.name)
        self.inner.on_timer(_TracingContext(ctx, self.log, self.replica_id), timer)


def trace_replicas(replicas: Dict[int, Protocol],
                   shared_log: Optional[TraceLog] = None) -> Dict[int, ProtocolTracer]:
    """Wrap every replica in ``replicas`` with a tracer sharing one log."""
    log = shared_log if shared_log is not None else TraceLog()
    return {replica_id: ProtocolTracer(protocol, log) for replica_id, protocol in replicas.items()}


def attach_network_trace(simulation, log: Optional[TraceLog] = None) -> TraceLog:
    """Record every message send attempt with its delay decomposition.

    Registers a delivery listener on ``simulation`` (a
    :class:`repro.runtime.simulator.Simulation`) that appends one event per
    copy the transport schedules: kind ``net-send`` with the time spent in
    each pipeline stage — partition hold, sender-uplink queueing, wire
    transfer, and propagation — recorded *separately* in ``data``, so
    contention effects are distinguishable from distance.  Dropped copies
    appear as ``net-drop`` events.

    The protocol-level tracers above answer "what did the replica do"; this
    answers "where did the message's time go".  Combine both on one shared
    log for a full picture::

        replicas = trace_replicas(create_replicas("banyan", params))
        sim = Simulation(replicas, NetworkConfig(transport="contended"))
        log = attach_network_trace(sim, replicas[0].log)
    """
    trace_log = log if log is not None else TraceLog()

    def on_delivery(sender: int, receiver: int, message, send_time: float,
                    delivery) -> None:
        name = type(message).__name__
        if delivery is None:
            trace_log.append(TraceEvent(
                time=send_time, replica_id=sender, kind="net-drop",
                detail=f"{name} -> r{receiver} dropped",
                data={"receiver": receiver},
            ))
            return
        trace_log.append(TraceEvent(
            time=send_time, replica_id=sender, kind="net-send",
            detail=(f"{name} -> r{receiver}"
                    f" queue={delivery.queue_delay * 1e3:.2f}ms"
                    f" wire={delivery.transfer_delay * 1e3:.2f}ms"
                    f" prop={delivery.propagation_delay * 1e3:.2f}ms"
                    + (f" via r{delivery.via}" if delivery.via is not None else "")),
            data={
                "receiver": receiver,
                "deliver_at": delivery.deliver_at,
                "hold_s": delivery.hold_delay,
                "queue_s": delivery.queue_delay,
                "transfer_s": delivery.transfer_delay,
                "propagation_s": delivery.propagation_delay,
                "via": delivery.via,
            },
        ))

    simulation.add_delivery_listener(on_delivery)
    return trace_log


def attach_commit_trace(simulation, log: Optional[TraceLog] = None) -> TraceLog:
    """Record every commit record of a simulation as ``commit`` trace events.

    Registers a commit listener on ``simulation`` (a
    :class:`repro.runtime.simulator.Simulation`) that appends one event per
    :class:`repro.runtime.simulator.CommitRecord` — replica, round, and
    finalization kind — without wrapping the protocols (unlike
    :class:`ProtocolTracer`, which records what a replica *does*, this
    records only what it *decides*).  The chaos engine uses it to embed a
    commit-trace tail in shrunk repro files, so a failing schedule's JSON
    shows the last decisions before the violation.
    """
    trace_log = log if log is not None else TraceLog()

    def on_commit(record) -> None:
        trace_log.append(TraceEvent(
            time=record.commit_time, replica_id=record.replica_id,
            kind="commit",
            detail=(f"round {record.block.round} block "
                    f"{str(record.block.id)[:8]} ({record.finalization_kind})"),
            data={"round": record.block.round,
                  "kind": record.finalization_kind},
        ))

    simulation.add_commit_listener(on_commit)
    return trace_log


def attach_compute_trace(simulation, log: Optional[TraceLog] = None) -> TraceLog:
    """Record every compute charge and CPU-queue wait as trace events.

    Registers a compute listener on ``simulation`` (a
    :class:`repro.runtime.simulator.Simulation`) that appends one event per
    compute action: kind ``cpu-busy`` when a handled message occupies the
    replica's core (with the charged seconds and the message type), and
    kind ``cpu-wait`` when a delivery finds the core busy and is deferred
    (with the waited seconds).  Under the default
    :class:`repro.runtime.compute.ZeroCompute` model no events are emitted.

    Where :func:`attach_network_trace` answers "where did the message's
    *wire* time go", this answers "where did the replica's *CPU* time go" —
    combine both on one shared log for the full delay picture of a
    CPU-bound run.
    """
    trace_log = log if log is not None else TraceLog()

    def on_compute(kind: str, replica_id: int, time: float, seconds: float,
                   message) -> None:
        if kind == "cpu-busy":
            detail = f"{type(message).__name__} busy {seconds * 1e3:.3f}ms"
        else:
            detail = f"delivery waited {seconds * 1e3:.3f}ms for the core"
        trace_log.append(TraceEvent(
            time=time, replica_id=replica_id, kind=kind, detail=detail,
            data={"seconds": seconds,
                  "message": type(message).__name__ if message is not None else None},
        ))

    simulation.add_compute_listener(on_compute)
    return trace_log
