"""Specialized event-loop variants and batched handler dispatch.

The simulator's ``run()`` used to be one loop carrying every feature's
per-event branch — compute charging, crash checks, listener hooks — so the
common zero-compute/no-fault path paid for all of them on every event.
This module generates **monomorphic loop variants** from a single template
instead: each variant is compiled (once, cached process-wide) with exactly
the branches its feature set needs, so the hot path carries no dead code
and the variants cannot drift apart the way hand-maintained copies would.

Features (the variant key):

* ``compute`` — a non-trivial :class:`repro.runtime.compute.ComputeModel`
  is active: members carry the busy-core deferral and charge path.
* ``crash`` — the fault plan has crash windows: deliveries and timers are
  gated on ``is_crashed``.
* ``sweep`` — batched dispatch is enabled (the default): consecutive
  same-``(time, target)`` plain deliveries at the heap head are drained
  into one :meth:`repro.protocols.base.Protocol.on_messages` call, and an
  ``sbatch`` chain runs ahead member-to-member without a heap round trip
  while its successor provably precedes the heap head.  Disabled via
  :attr:`repro.runtime.simulator.Simulation.force_scalar_dispatch` (the
  scalar fallback used by the equivalence tests and microbench).

Fusion (``on_messages``) is additionally suppressed under ``compute``:
busy-core deferral interleaves re-queued deliveries between same-instant
arrivals, so a fused sweep could not be byte-identical there.

Byte-identity contract: every variant must replay the exact event order of
the reference scalar loop — sweeps only fuse deliveries whose heap order
is provably contiguous (same time, same target, no interleaved timer /
external / compute event), an ``sbatch`` run-ahead step is taken only when
``(next_time, batch_seq)`` sorts strictly before the heap head, and the
historical horizon edge (a *cancelled* timer at the heap head lets the
next real event dispatch without re-checking ``until``) is preserved.
``tests/test_golden_corpus.py`` and ``tests/test_dispatch_batch.py`` pin
this.

The loop returns the number of budget-consuming events processed.  It
exits early (after flushing its counters) when
``Simulation._dispatch_generation`` changes mid-run — feature toggles like
flipping ``force_scalar_dispatch`` bump the generation, and the ``run()``
driver re-selects the variant and resumes seamlessly.

Scheduler backends: the template above assumes the binary-heap scheduler
(``sim._queue`` is its raw list).  Under the calendar-queue backend
(:mod:`repro.runtime.scheduler`) a second template, ``_CALQ_TEMPLATE``,
renders instead: it walks the materialized current bucket by local index
(no per-event sift), merges the bucket's small "inc" heap of late
arrivals, and advances/materializes buckets through the scheduler's cold
methods.  Broadcast members arrive as lean 4-tuples — there is no
``sbatch`` kind and no fusion under this backend (the calendar queue is
selected for jittered runs, where same-instant sweeps never form).
``select_loop`` keys its cache on the backend name as well.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right

from repro.runtime.scheduler import _STD as _STD_TARGET
from typing import Any, Callable, Dict, Tuple

#: Effectively-unbounded event budget used when ``max_events`` is ``None``
#: (a single compare against an int is cheaper than a per-event ``None``
#: check).
UNBOUNDED = 0x7FFFFFFFFFFFFFFF

#: Event target used for injected external / batch events (not a replica
#: id); must match ``simulator._EXTERNAL_TARGET``.
_EXTERNAL_TARGET = -1


def build_handler_tables(protocols: Dict[int, Any], contexts: Dict[int, Any]):
    """Precompute per-target bound-method dispatch tables.

    Returns ``(deliver_one, deliver_many, fire_timer)`` mapping replica id
    to ``(bound_handler, context)`` pairs, so the loop does one subscript
    and a tuple unpack per dispatch instead of two dict lookups plus a
    bound-method allocation.  When the replica ids are exactly ``0..n-1``
    (the common case) the tables are lists — an index beats a hash probe —
    and dicts otherwise; the loop subscripts either transparently.
    Protocols without an ``on_messages`` batch hook (duck-typed test
    doubles) get a per-message fallback shim.
    """
    deliver_one = {}
    deliver_many = {}
    fire_timer = {}
    for replica_id, protocol in protocols.items():
        context = contexts[replica_id]
        deliver_one[replica_id] = (protocol.on_message, context)
        fire_timer[replica_id] = (protocol.on_timer, context)
        on_messages = getattr(protocol, "on_messages", None)
        if on_messages is None:
            on_messages = _fallback_on_messages(protocol.on_message)
        deliver_many[replica_id] = (on_messages, context)
    if sorted(protocols) == list(range(len(protocols))):
        deliver_one = [deliver_one[i] for i in range(len(protocols))]
        deliver_many = [deliver_many[i] for i in range(len(protocols))]
        fire_timer = [fire_timer[i] for i in range(len(protocols))]
    return deliver_one, deliver_many, fire_timer


def _fallback_on_messages(on_message: Callable) -> Callable:
    """Per-message fallback for protocols lacking an ``on_messages`` hook."""

    def deliver(ctx, batch, _on_message=on_message):
        for sender, message in batch:
            _on_message(ctx, sender, message)

    return deliver


# --------------------------------------------------------------------- #
# Loop template
# --------------------------------------------------------------------- #
#
# Rendered per feature set by `_render` (an `#if/#else/#endif` line
# filter) and compiled once.  The template is the single source of truth
# for event-loop semantics; `Simulation.run()` and `Simulation.step()`
# both execute these rendered loops.

_LOOP_TEMPLATE = """\
def _loop(sim, until, budget):
    queue = sim._queue
    heappop = _heappop
    heappush = _heappush
    heappushpop = _heappushpop
    pending_timers = sim._pending_timers
    cancelled_timers = sim._cancelled_timers
    deliver_one = sim._deliver_one
#if FUSE
    deliver_many = sim._deliver_many
#endif
    fire_timer = sim._fire_timer
#if CRASH
    is_crashed = sim.network.faults.is_crashed
#endif
#if COMPUTE
    compute = sim._compute
    message_cost = sim._compute_cost
    busy_until = compute.busy_until
    record_wait = compute.record_wait
    record_busy = compute.record_busy
    seq = sim._seq
#endif
    generation = sim._dispatch_generation
    now = sim.now
    processed = 0
    delivered = 0
    dropped = 0
#if SWEEP
    runahead = 0
#endif
#if FUSE
    sweeps = 0
    swept = 0
#endif
    # ``pending`` holds an event already removed from the heap that must
    # be dispatched without re-running the top-of-loop checks: the event
    # after a cancelled timer (the preserved horizon edge) and the heap
    # head an sbatch run-ahead lost to (obtained via one heappushpop
    # instead of a push + pop).
    pending = None
    while True:
        if pending is not None:
            event = pending
            pending = None
        else:
#if BUDGET
            if not queue or processed >= budget:
                break
#else
            if not queue:
                break
#endif
            if queue[0][0] > until:
                break
            if sim._dispatch_generation != generation:
                break
            event = heappop(queue)
        time_, seq_, kind, target, payload = event
        # ``sbatch`` leads the kind chain: under jittered latency (the
        # scale-out configuration) nearly every event is a chained
        # broadcast member, so the dominant kind must win the dispatch
        # after a single compare.
        if kind == "sbatch":
            # One in-flight jittered broadcast: ``payload`` is the mutable
            # ``[times, targets, index, sender, message, count,
            # (sender, message)]`` state, times ascending (``index`` —
            # the resume point — must stay at slot 2).  Members are
            # delivered here without a heap round trip while the
            # successor provably precedes the heap head (run-ahead);
            # otherwise the successor is re-pushed under the batch's
            # ORIGINAL seq so exact-time ties break exactly as the
            # per-copy pushes would have.
            times, targets, index, sender, message, count, mpayload = payload
            while True:
                if time_ > now:
                    now = time_
                    sim.now = now
#if COMPUTE
                free_at = busy_until.get(target, 0.0)
                if free_at > time_:
                    # Busy core: this member queues on the CPU timeline
                    # as a plain per-copy delivery (no budget charge).
                    record_wait(target, free_at - time_)
                    if sim._compute_listeners:
                        sim._notify_compute("cpu-wait", target, time_,
                                            free_at - time_, None)
                    heappush(queue, (free_at, next(seq), "message", target,
                                     mpayload))
#if CRASH
                elif is_crashed(target, now):
                    dropped += 1
                    processed += 1
#endif
                else:
                    handler, ctx = deliver_one[target]
                    handler(ctx, sender, message)
                    delivered += 1
                    processed += 1
                    cost = message_cost(target, sender, message)
                    if cost > 0.0:
                        record_busy(target, now, cost)
                        if sim._compute_listeners:
                            sim._notify_compute("cpu-busy", target, now,
                                                cost, message)
#else
#if CRASH
                if is_crashed(target, now):
                    dropped += 1
                else:
                    handler, ctx = deliver_one[target]
                    handler(ctx, sender, message)
                    delivered += 1
                processed += 1
#else
                handler, ctx = deliver_one[target]
                handler(ctx, sender, message)
                delivered += 1
                processed += 1
#endif
#endif
                index += 1
                if index == count:
                    break
                time_ = times[index]
                target = targets[index]
#if SWEEP
#if BUDGET
                if processed >= budget or time_ > until:
                    payload[2] = index
                    heappush(queue, (time_, seq_, "sbatch", target, payload))
                    break
#else
                if time_ > until:
                    payload[2] = index
                    heappush(queue, (time_, seq_, "sbatch", target, payload))
                    break
#endif
                # Run-ahead decision and heap exchange in one C call:
                # heappushpop first compares heap[0] < item — tuple order
                # on (time, seq), never reaching the payload — and returns
                # the item itself without sifting when it wins.  Getting
                # the successor back means no queued event precedes it
                # (exactly the old explicit head check), so this member is
                # delivered without any heap traffic; otherwise the
                # successor just replaced the head in a single sift.
                successor = (time_, seq_, "sbatch", target, payload)
                event = heappushpop(queue, successor)
                if event is successor:
                    runahead += 1
                    continue
                # The successor is now heap-resident: record its resume
                # index before anything else can pop it.
                payload[2] = index
                pending = event
                break
#else
                payload[2] = index
                heappush(queue, (time_, seq_, "sbatch", target, payload))
                break
#endif
        elif kind == "message":
            if time_ > now:
                now = time_
                sim.now = now
#if COMPUTE
            free_at = busy_until.get(target, 0.0)
            if free_at > time_:
                # Busy core: the delivery queues on the replica's CPU
                # timeline and is retried once it frees up (no budget
                # charge; the horizon is re-checked on re-entry).
                record_wait(target, free_at - time_)
                if sim._compute_listeners:
                    sim._notify_compute("cpu-wait", target, time_,
                                        free_at - time_, None)
                heappush(queue, (free_at, next(seq), "message", target,
                                 payload))
                continue
#endif
#if CRASH
            if is_crashed(target, now):
                dropped += 1
                processed += 1
                continue
#endif
            sender, message = payload
#if FUSE
            if queue:
                head = queue[0]
                if (head[0] == time_ and head[3] == target
                        and head[2] == "message"):
                    # Same-target sweep: drain the contiguous run of
                    # plain deliveries at this exact (time, target) into
                    # one on_messages call.  Contiguity is re-checked per
                    # pop, so an interleaved timer/external/batch event
                    # ends the sweep; the budget caps its length.
#if BUDGET
                    cap = budget - processed
                    if cap > 1:
                        batch = [payload]
                        append = batch.append
                        while True:
                            append(heappop(queue)[4])
                            if len(batch) >= cap or not queue:
                                break
                            head = queue[0]
                            if (head[0] != time_ or head[3] != target
                                    or head[2] != "message"):
                                break
                        handler, ctx = deliver_many[target]
                        handler(ctx, batch)
                        count = len(batch)
                        delivered += count
                        processed += count
                        sweeps += 1
                        swept += count
                        continue
#else
                    batch = [payload]
                    append = batch.append
                    while True:
                        append(heappop(queue)[4])
                        if not queue:
                            break
                        head = queue[0]
                        if (head[0] != time_ or head[3] != target
                                or head[2] != "message"):
                            break
                    handler, ctx = deliver_many[target]
                    handler(ctx, batch)
                    count = len(batch)
                    delivered += count
                    processed += count
                    sweeps += 1
                    swept += count
                    continue
#endif
#endif
            handler, ctx = deliver_one[target]
            handler(ctx, sender, message)
            delivered += 1
            processed += 1
#if COMPUTE
            cost = message_cost(target, sender, message)
            if cost > 0.0:
                record_busy(target, now, cost)
                if sim._compute_listeners:
                    sim._notify_compute("cpu-busy", target, now, cost,
                                        message)
#endif
        elif kind == "mbatch":
            # A same-instant broadcast group: every member is a delivery
            # at exactly ``time_``, processed back-to-back the way
            # consecutive per-copy pops would have been (nothing pushed
            # during processing can sort before a remaining member).
            # Each member counts against the budget; an exhausted budget
            # re-queues the tail under the batch's original heap key.
            targets, mpayload = payload
            sender, message = mpayload
            if time_ > now:
                now = time_
                sim.now = now
            mcount = len(targets)
            mindex = 0
            while mindex < mcount:
#if BUDGET
                if processed >= budget:
                    heappush(queue, (time_, seq_, "mbatch", _EXTERNAL_TARGET,
                                     (targets[mindex:], mpayload)))
                    break
#endif
                target = targets[mindex]
                mindex += 1
#if COMPUTE
                free_at = busy_until.get(target, 0.0)
                if free_at > time_:
                    # Busy core: defer this member; the rest of the group
                    # is unaffected (no budget charge).
                    record_wait(target, free_at - time_)
                    if sim._compute_listeners:
                        sim._notify_compute("cpu-wait", target, time_,
                                            free_at - time_, None)
                    heappush(queue, (free_at, next(seq), "message", target,
                                     mpayload))
                    continue
#endif
#if CRASH
                if is_crashed(target, now):
                    dropped += 1
                    processed += 1
                    continue
#endif
                handler, ctx = deliver_one[target]
                handler(ctx, sender, message)
                delivered += 1
                processed += 1
#if COMPUTE
                cost = message_cost(target, sender, message)
                if cost > 0.0:
                    record_busy(target, now, cost)
                    if sim._compute_listeners:
                        sim._notify_compute("cpu-busy", target, now, cost,
                                            message)
#endif
        elif kind == "timer":
            timer_id = payload.timer_id
            pending_timers.discard(timer_id)
            if timer_id in cancelled_timers:
                cancelled_timers.discard(timer_id)
                # Preserved horizon edge: the event after a cancelled
                # timer is dispatched without re-checking ``until`` (or
                # the budget — the cancelled timer consumed none of it).
                if queue:
                    pending = heappop(queue)
                continue
            if time_ > now:
                now = time_
                sim.now = now
#if CRASH
            if is_crashed(target, now):
                processed += 1
                continue
#endif
            handler, ctx = fire_timer[target]
            handler(ctx, payload)
            processed += 1
        elif kind == "external":
            if time_ > now:
                now = time_
                sim.now = now
            # External callbacks (workload probes, chaos hooks) may read
            # the simulation's counters: flush the local tallies first.
            sim._messages_delivered += delivered
            sim._messages_dropped += dropped
            delivered = 0
            dropped = 0
            payload()
            processed += 1
        else:
            raise RuntimeError("unknown event kind %r" % (kind,))
    if pending is not None:
        heappush(queue, pending)
    sim._messages_delivered += delivered
    sim._messages_dropped += dropped
#if SWEEP
    stats = sim._dispatch_counts
    stats["runahead_members"] += runahead
#if FUSE
    stats["sweeps"] += sweeps
    stats["swept_messages"] += swept
#endif
#endif
    return processed
"""


# --------------------------------------------------------------------- #
# Calendar-queue loop template
# --------------------------------------------------------------------- #
#
# Walks the scheduler's materialized current bucket by a local index
# instead of popping a heap.  The bucket is four parallel columns (times /
# targets / senders / messages) of plain scalars — no per-event tuples, so
# a materialized bucket is invisible to the cyclic garbage collector and
# the fast path is four C-level list indexes per delivery.  A standard
# 5-tuple event (timer, external, deferred message, mbatch) marks its row
# with a negative sentinel target and parks the tuple in the message
# column.  Events that arrive *inside* the open bucket land in the
# scheduler's small `_inc` heap and are merged by time (residents win
# exact-time ties — they were scheduled first).  `run_end` pre-cuts the
# walk at the `until` horizon via one bisect, so the fast path carries no
# per-event horizon compare.

_CALQ_TEMPLATE = """\
def _loop(sim, until, budget):
    sched = sim._scheduler
    heappop = _heappop
    _len = len
    pending_timers = sim._pending_timers
    cancelled_timers = sim._cancelled_timers
    deliver_one = sim._deliver_one
    fire_timer = sim._fire_timer
    sched_push = sched.push
#if CRASH
    is_crashed = sim.network.faults.is_crashed
#endif
#if COMPUTE
    compute = sim._compute
    message_cost = sim._compute_cost
    busy_until = compute.busy_until
    record_wait = compute.record_wait
    record_busy = compute.record_busy
    seq = sim._seq
#endif
    generation = sim._dispatch_generation
    now = sim.now
    processed = 0
    delivered = 0
    dropped = 0
    inc_pops = 0
    times = sched._cur_times
    targs = sched._cur_targets
    sends = sched._cur_senders
    msgs = sched._cur_messages
    pos = sched._pos
    cur_len = len(times)
    inc = sched._inc
    if cur_len == 0 or times[cur_len - 1] <= until:
        run_end = cur_len
    else:
        run_end = _bisect_right(times, until, pos)
    # ``pending`` holds an event already removed from the queue that must
    # be dispatched without re-running the top-of-loop checks — the event
    # after a cancelled timer (the preserved horizon edge).
    pending = None
    while True:
        if pending is not None:
            event = pending
            pending = None
        else:
#if BUDGET
            if processed >= budget:
                break
#endif
            if inc and not (pos < run_end and times[pos] <= inc[0][0]):
                # The inc heap's head (an event scheduled into the open
                # bucket after it materialized) is due before the next
                # resident; exact-time ties go to residents — they were
                # scheduled first.
                event = inc[0]
                if event[0] > until:
                    break
                if sim._dispatch_generation != generation:
                    break
                heappop(inc)
                inc_pops += 1
            else:
                # Burst: walk consecutive bucket rows with no per-event
                # queue bookkeeping.  The inc boundary is a cached float
                # (refreshed only when a handler grew the heap — pops
                # never happen mid-burst), the ``until`` horizon is the
                # precomputed ``run_end``, and the budget pre-cuts
                # ``stop`` instead of a per-event compare.  The generation
                # check runs once per burst: a mid-run bump (listener
                # attach / force-scalar toggle) changes neither this
                # variant's selection nor its in-loop behaviour, so burst
                # granularity is observationally identical.
                if sim._dispatch_generation != generation:
                    break
                stop = run_end
#if BUDGET
                rem = budget - processed
                if stop - pos > rem:
                    stop = pos + rem
#endif
                if inc:
                    inc_t = inc[0][0]
                else:
                    inc_t = _INF
                inc_n = _len(inc)
#if TALLY
                burst_base = pos
#endif
                while pos < stop:
                    time_ = times[pos]
                    if time_ > inc_t:
                        break
                    target = targs[pos]
                    if target < 0:
                        break
                    sender = sends[pos]
                    message = msgs[pos]
                    pos += 1
                    if time_ > now:
                        now = time_
                        sim.now = now
#if COMPUTE
                    free_at = busy_until.get(target, 0.0)
                    if free_at > time_:
                        # Busy core: the delivery queues on the replica's
                        # CPU timeline and is retried once it frees up
                        # (no budget charge).
                        record_wait(target, free_at - time_)
                        if sim._compute_listeners:
                            sim._notify_compute("cpu-wait", target, time_,
                                                free_at - time_, None)
                        sched_push((free_at, next(seq), "message", target,
                                    (sender, message)))
                        if _len(inc) != inc_n:
                            inc_n = _len(inc)
                            inc_t = inc[0][0]
                        continue
#endif
#if CRASH
                    if is_crashed(target, now):
                        dropped += 1
                        processed += 1
                        continue
#endif
                    handler, ctx = deliver_one[target]
                    handler(ctx, sender, message)
#if not TALLY
                    delivered += 1
                    processed += 1
#endif
#if COMPUTE
                    cost = message_cost(target, sender, message)
                    if cost > 0.0:
                        record_busy(target, now, cost)
                        if sim._compute_listeners:
                            sim._notify_compute("cpu-busy", target, now,
                                                cost, message)
#endif
                    if _len(inc) != inc_n:
                        inc_n = _len(inc)
                        inc_t = inc[0][0]
#if TALLY
                # Every row a plain-delivery burst consumes is exactly one
                # processed delivery: tally once per burst, not per event.
                consumed = pos - burst_base
                delivered += consumed
                processed += consumed
#endif
                if pos < stop:
                    if times[pos] > inc_t:
                        # A handler pushed an inc event that is now due.
                        continue
                    # Standard 5-tuple resident (timer / mbatch / external
                    # / deferred message) at the walk front; its horizon
                    # check is the ``run_end`` bound and its generation
                    # check ran at burst entry.
                    event = msgs[pos]
                    pos += 1
                else:
                    if inc or pos < run_end:
                        # Inc head due / budget cut: resolve at the top.
                        continue
                    if run_end < cur_len:
                        break
                    sched._pos = pos
                    sched._inc_pops += inc_pops
                    inc_pops = 0
                    if not (sched._ring_count or sched._overflow):
                        break
                    sched._advance()
                    times = sched._cur_times
                    targs = sched._cur_targets
                    sends = sched._cur_senders
                    msgs = sched._cur_messages
                    pos = 0
                    cur_len = len(times)
                    if cur_len == 0 or times[cur_len - 1] <= until:
                        run_end = cur_len
                    else:
                        run_end = _bisect_right(times, until)
                    continue
        time_, seq_, kind, target, payload = event
        if kind == "message":
            if time_ > now:
                now = time_
                sim.now = now
#if COMPUTE
            free_at = busy_until.get(target, 0.0)
            if free_at > time_:
                record_wait(target, free_at - time_)
                if sim._compute_listeners:
                    sim._notify_compute("cpu-wait", target, time_,
                                        free_at - time_, None)
                sched_push((free_at, next(seq), "message", target, payload))
                continue
#endif
#if CRASH
            if is_crashed(target, now):
                dropped += 1
                processed += 1
                continue
#endif
            sender, message = payload
            handler, ctx = deliver_one[target]
            handler(ctx, sender, message)
            delivered += 1
            processed += 1
#if COMPUTE
            cost = message_cost(target, sender, message)
            if cost > 0.0:
                record_busy(target, now, cost)
                if sim._compute_listeners:
                    sim._notify_compute("cpu-busy", target, now, cost,
                                        message)
#endif
        elif kind == "mbatch":
            # Same-instant broadcast group (zero-jitter latency): every
            # member is a delivery at exactly ``time_``, processed
            # back-to-back.  An exhausted budget reinserts the tail at
            # the walk front — the tail's original ``(time, seq)`` key
            # precedes everything still queued, so a front insert keeps
            # the total order (same argument as ``requeue_front``).
            targets, mpayload = payload
            sender, message = mpayload
            if time_ > now:
                now = time_
                sim.now = now
            mcount = len(targets)
            mindex = 0
            while mindex < mcount:
#if BUDGET
                if processed >= budget:
                    times.insert(pos, time_)
                    targs.insert(pos, _STD_TARGET)
                    sends.insert(pos, 0)
                    msgs.insert(pos, (time_, seq_, "mbatch",
                                      _EXTERNAL_TARGET,
                                      (targets[mindex:], mpayload)))
                    cur_len += 1
                    break
#endif
                target = targets[mindex]
                mindex += 1
#if COMPUTE
                free_at = busy_until.get(target, 0.0)
                if free_at > time_:
                    record_wait(target, free_at - time_)
                    if sim._compute_listeners:
                        sim._notify_compute("cpu-wait", target, time_,
                                            free_at - time_, None)
                    sched_push((free_at, next(seq), "message", target,
                                mpayload))
                    continue
#endif
#if CRASH
                if is_crashed(target, now):
                    dropped += 1
                    processed += 1
                    continue
#endif
                handler, ctx = deliver_one[target]
                handler(ctx, sender, message)
                delivered += 1
                processed += 1
#if COMPUTE
                cost = message_cost(target, sender, message)
                if cost > 0.0:
                    record_busy(target, now, cost)
                    if sim._compute_listeners:
                        sim._notify_compute("cpu-busy", target, now, cost,
                                            message)
#endif
        elif kind == "timer":
            timer_id = payload.timer_id
            pending_timers.discard(timer_id)
            if timer_id in cancelled_timers:
                cancelled_timers.discard(timer_id)
                # Preserved horizon edge: the event after a cancelled
                # timer is dispatched without re-checking ``until`` (or
                # the budget — the cancelled timer consumed none of it).
                sched._pos = pos
                sched._inc_pops += inc_pops
                inc_pops = 0
                if len(sched):
                    pending = sched.pop()
                    times = sched._cur_times
                    targs = sched._cur_targets
                    sends = sched._cur_senders
                    msgs = sched._cur_messages
                    pos = sched._pos
                    cur_len = len(times)
                    inc = sched._inc
                    if cur_len == 0 or times[cur_len - 1] <= until:
                        run_end = cur_len
                    else:
                        run_end = _bisect_right(times, until, pos)
                continue
            if time_ > now:
                now = time_
                sim.now = now
#if CRASH
            if is_crashed(target, now):
                processed += 1
                continue
#endif
            handler, ctx = fire_timer[target]
            handler(ctx, payload)
            processed += 1
        elif kind == "external":
            if time_ > now:
                now = time_
                sim.now = now
            # External callbacks (workload probes, chaos hooks) may read
            # the simulation's counters: flush the local tallies first.
            sim._messages_delivered += delivered
            sim._messages_dropped += dropped
            delivered = 0
            dropped = 0
            payload()
            processed += 1
        else:
            raise RuntimeError("unknown event kind %r" % (kind,))
    if pending is not None:
        # Popped but never dispatched (cannot happen today — the pending
        # path bypasses every break — but kept symmetric with the heap
        # loop): by pop order it precedes everything queued.
        times.insert(pos, pending[0])
        targs.insert(pos, _STD_TARGET)
        sends.insert(pos, 0)
        msgs.insert(pos, pending)
    sched._pos = pos
    sched._inc_pops += inc_pops
    sim._messages_delivered += delivered
    sim._messages_dropped += dropped
    return processed
"""


def _render(template: str, features: Dict[str, bool]) -> str:
    """Render ``#if NAME`` / ``#else`` / ``#endif`` blocks (nested)."""
    lines = []
    stack = []  # (parent_emitting, this_branch_value)
    emitting = True
    for line in template.splitlines():
        stripped = line.strip()
        if stripped.startswith("#if "):
            condition = stripped[4:].strip()
            negate = condition.startswith("not ")
            name = condition[4:].strip() if negate else condition
            value = features[name] != negate
            stack.append((emitting, value))
            emitting = emitting and value
        elif stripped == "#else":
            parent, value = stack[-1]
            emitting = parent and not value
        elif stripped == "#endif":
            parent, _ = stack.pop()
            emitting = parent
        elif emitting:
            lines.append(line)
    if stack:
        raise ValueError("unbalanced #if in loop template")
    return "\n".join(lines) + "\n"


_VARIANTS: Dict[Tuple[str, bool, bool, bool, bool], Callable] = {}


def select_loop(compute: bool, crash: bool, sweep: bool,
                budget: bool = True, backend: str = "heap") -> Callable:
    """The compiled loop variant for one feature set (cached process-wide)."""
    if backend == "calendar":
        # The calendar loop has no fusion fast path (members are already
        # materialized in final order), so the sweep flag is normalized
        # out of the key — toggling ``force_scalar_dispatch`` re-selects
        # into the same (correct) variant.
        key = (backend, compute, crash, False, budget)
    else:
        key = (backend, compute, crash, sweep, budget)
    loop = _VARIANTS.get(key)
    if loop is None:
        features = {
            "COMPUTE": compute,
            "CRASH": crash,
            "SWEEP": sweep,
            # Fusing same-target deliveries under a busy-core model would
            # reorder against deferral re-queues; compute runs stay scalar
            # per member (they still get run-ahead and the tables).
            "FUSE": sweep and not compute,
            # Unbounded `run(until)` calls compile out every per-event
            # budget compare; `step()` and bounded runs keep them.
            "BUDGET": budget,
            # Plain deliveries (no crash drops, no compute deferrals)
            # consume exactly one burst row each: the calendar burst can
            # tally them per burst instead of per event.
            "TALLY": not compute and not crash,
        }
        template = _CALQ_TEMPLATE if backend == "calendar" else _LOOP_TEMPLATE
        source = _render(template, features)
        namespace = {
            "_heappop": heapq.heappop,
            "_heappush": heapq.heappush,
            "_heappushpop": heapq.heappushpop,
            "_bisect_right": bisect_right,
            "_EXTERNAL_TARGET": _EXTERNAL_TARGET,
            "_STD_TARGET": _STD_TARGET,
            "_INF": float("inf"),
        }
        code = compile(source, f"<dispatch-loop {key}>", "exec")
        exec(code, namespace)
        loop = _VARIANTS[key] = namespace["_loop"]
    return loop
