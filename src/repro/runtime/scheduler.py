"""Pluggable event schedulers: binary heap and calendar queue.

The simulator owns one priority queue of ``(time, seq, kind, target,
payload)`` event tuples ordered by ``(time, seq)``.  This module provides
that queue behind a small seam so the dispatch loop can pick a backend:

* :class:`HeapScheduler` — the original ``heapq`` binary heap, kept as the
  runtime reference implementation (``scheduler="heap"``).  Its internal
  list is handed to the compiled loop directly, so the hot path is exactly
  the pre-seam code.
* :class:`CalendarQueue` — a calendar/ladder queue tuned for the
  simulator's jittered-broadcast shape (``scheduler="calendar"``): event
  times are near-monotone and densely clustered, and almost every event
  is one member of an in-flight broadcast.  Broadcasts are *spilled* as
  vectorized segments (one numpy slice per bucket) instead of one chained
  heap entry, buckets materialize into plain delivery tuples through bulk
  C operations, and a far-future overflow rung keeps long timers from
  stretching the bucket window.

Ordering contract (byte-identity with the heap backend): every pop
sequence must replay the exact ``(time, seq)`` total order the heap
produces.  A spilled broadcast consumes exactly ONE sequence number — the
same draw the heap backend's chained ``sbatch`` event makes — so
exact-time ties between a broadcast's members and any other event break
by the broadcast's schedule position, identically in both backends.
Members of one broadcast tie in schedule order (the transport's sorted
order), which the stable materialization sort preserves.  Members that
must be represented as standalone tuples (far-future overflow, the
no-numpy fallback) carry fractional sequence numbers ``base + i/count``:
they compare numerically against every integer sequence number, never
collide with one, and order the broadcast's members among themselves in
schedule order without consuming extra counter draws.

Bucket mapping uses the single expression ``int(t * inv_width)``
everywhere (scalar pushes and the vectorized ``astype`` spill cut), so an
event's bucket is a pure function of its time — no float-edge case can
place two events with ordered times into inverted buckets.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

try:  # pragma: no cover - numpy is present everywhere we benchmark
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: Registered scheduler backend names (``"auto"`` resolves per simulation).
SCHEDULERS = ("auto", "heap", "calendar")

#: Number of ring buckets (fixed power of two; adaptivity is in the bucket
#: *width*, re-chosen when the occupancy counters drift — see
#: :meth:`CalendarQueue._maybe_adapt`).
_NBUCKETS = 4096
_MASK = _NBUCKETS - 1

#: Times at or beyond this bound bypass the ``int(t * inv)`` bucket
#: mapping (guards ``OverflowError`` on ``inf`` and keeps the vectorized
#: ``astype(int64)`` cut exact).
_FAR_TIME = 2.0 ** 52

#: Virtual bucket index for the degenerate "everything left is far
#: future" window: any finite push then sorts into the inc heap.
_FAR_V = 1 << 62

#: Adaptivity check cadence (advances between counter evaluations).
_ADAPT_EVERY = 512

#: Sentinel in the materialized bucket's target column marking a standard
#: 5-tuple event (stored in the message column).  Distinct from the
#: external-event target (-1), which is a real dispatch target.
_STD = -2


class HeapScheduler:
    """The reference binary-heap backend (a thin veneer over ``heapq``).

    The compiled heap loop bypasses this object and works on ``heap``
    directly; the methods serve the cold paths (scheduling, tests) so both
    backends present one surface.
    """

    __slots__ = ("heap",)

    name = "heap"

    def __init__(self) -> None:
        self.heap: List[tuple] = []

    def __len__(self) -> int:
        return len(self.heap)

    def push(self, event: tuple) -> None:
        heappush(self.heap, event)

    def pop(self) -> tuple:
        return heappop(self.heap)

    def peek(self) -> Optional[tuple]:
        heap = self.heap
        return heap[0] if heap else None

    def stats(self) -> dict:
        return {"backend": "heap", "resident": len(self.heap)}


class CalendarQueue:
    """Calendar queue with vectorized broadcast spill.

    Layout:

    * ``_cur_times`` / ``_cur_targets`` / ``_cur_senders`` /
      ``_cur_messages`` / ``_pos`` — the *materialized* current bucket:
      four parallel columns already in final ``(time, seq)`` order,
      consumed by index.  A broadcast member occupies one row (its kind
      is implicitly ``"message"``); a standard event stores the
      :data:`_STD` sentinel in the target column and its whole 5-tuple in
      the message column.  Columns of scalars instead of a list of
      per-event tuples keep the bucket invisible to the cyclic garbage
      collector — floats and ints are not gc-tracked, so materializing a
      million members allocates no collectable containers (a measured
      ~25% of the flood run was gen-0/1 collections scanning per-member
      tuples).  Nothing mutates a materialized bucket except the dispatch
      loop's own front-requeues, so the loop can walk it by local index.
    * ``_ring`` — ``_NBUCKETS`` unsorted slots of future entries.  An
      entry is either a standard event tuple or a broadcast *segment*
      ``(times_array, targets_array, base_seq, sender, message)`` holding
      the slice of one broadcast's sorted schedule that falls inside the
      slot's bucket.  Append order is schedule order, which is what lets
      the stable materialization sort reproduce ``(time, seq)`` order
      without per-member sequence numbers.
    * ``_inc`` — a small heap of standard tuples that arrived *inside*
      the current bucket's span after it materialized (zero/short-delay
      timers and sends).  Everything in ``_inc`` was scheduled after
      everything resident in ``_cur``, so merging by bare time with
      ``_cur`` winning exact-time ties is exact.
    * ``_overflow`` — heap of standard tuples beyond the ring horizon
      (far-future timers, the tail of very spread broadcasts); migrated
      into the ring as the window advances.
    """

    __slots__ = (
        "_cur_times", "_cur_targets", "_cur_senders", "_cur_messages",
        "_pos", "_ring", "_ring_count", "_inc", "_overflow", "_width",
        "_inv", "_cur_v", "_horizon_v", "_horizon_t", "_seq", "_adopted",
        "_advances", "_scans", "_inc_pops", "_materialized",
        "_materialized_events", "_rebuilds", "_spilled_segments",
    )

    name = "calendar"

    def __init__(self, seq) -> None:
        self._cur_times: List[float] = []
        self._cur_targets: List[int] = []
        self._cur_senders: List[int] = []
        self._cur_messages: List[Any] = []
        self._pos = 0
        self._ring: List[list] = [[] for _ in range(_NBUCKETS)]
        self._ring_count = 0
        self._inc: List[tuple] = []
        self._overflow: List[tuple] = []
        # Re-derived from the first spilled broadcast's spread (and later
        # from the occupancy counters); the initial guess only carries
        # single-push workloads, where any width works.
        self._width = 1e-3
        self._inv = 1.0 / self._width
        self._cur_v = 0
        self._horizon_v = _NBUCKETS
        self._horizon_t = _NBUCKETS * self._width
        self._seq = seq
        self._adopted = False
        self._advances = 0
        self._scans = 0
        self._inc_pops = 0
        self._materialized = 0
        self._materialized_events = 0
        self._rebuilds = 0
        self._spilled_segments = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return (len(self._cur_times) - self._pos + self._ring_count
                + len(self._inc) + len(self._overflow))

    def stats(self) -> dict:
        """Occupancy / adaptivity counters (observability only)."""
        return {
            "backend": "calendar",
            "resident": len(self),
            "width": self._width,
            "segments": self._spilled_segments,
            "materialized_buckets": self._materialized,
            "inc_pops": self._inc_pops,
            "empty_scans": self._scans,
            "rebuilds": self._rebuilds,
        }

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def push(self, event: tuple) -> None:
        """Insert one standard ``(time, seq, kind, target, payload)`` tuple."""
        t = event[0]
        if t < self._horizon_t and t < _FAR_TIME:
            v = int(t * self._inv)
            if v <= self._cur_v:
                # Inside (or before) the materialized bucket: the event
                # was scheduled after everything resident there, so the
                # merge rule (cur wins exact-time ties) stays exact.
                heappush(self._inc, event)
            elif v < self._horizon_v:
                self._ring[v & _MASK].append(event)
                self._ring_count += 1
            else:  # mapping edge of the horizon compare
                heappush(self._overflow, event)
        else:
            heappush(self._overflow, event)

    def spill(self, times, targets, sender: int, message: Any,
              payload: Tuple[int, Any]) -> None:
        """Spill one broadcast's sorted schedule as per-bucket segments.

        ``times`` must be an ascending float64 numpy array and ``targets``
        the aligned receiver-id array; exactly one sequence number is
        consumed (mirroring the heap backend's single ``sbatch`` push).
        Callers without numpy use :meth:`push` per member instead.
        """
        base = next(self._seq)
        if not self._adopted:
            self._adopted = True
            width = self._spread_width(times)
            if width != self._width:
                self._rebuild(width)
        if not len(self):
            self._reset_window(float(times[0]))
        self._spill_arrays(times, targets, base, sender, message, payload)

    def _spill_arrays(self, times, targets, base, sender: int, message: Any,
                      payload: Tuple[int, Any]) -> None:
        count = len(times)
        if float(times[0]) >= _FAR_TIME:
            self._spill_overflow(times, targets, base, sender, message,
                                 payload, 0)
            return
        inv = self._inv
        # Finite prefix first: the vectorized bucket cut must never run
        # ``astype`` over inf/huge times.
        if float(times[count - 1]) >= _FAR_TIME:
            finite = int(_np.searchsorted(times, _FAR_TIME, side="left"))
        else:
            finite = count
        # The SAME mapping expression as push() — ``t * inv`` truncated —
        # so a member's bucket can never disagree with a scalar push's.
        v_arr = (times[:finite] * inv).astype(_np.int64)
        horizon_v = self._horizon_v
        cur_v = self._cur_v
        if int(v_arr[finite - 1]) >= horizon_v:
            win = int(_np.searchsorted(v_arr, horizon_v, side="left"))
        else:
            win = finite
        if win and int(v_arr[0]) <= cur_v:
            # Members landing inside the materialized bucket: scheduled
            # after everything resident, so the inc heap keeps the merge
            # exact (fractional seqs order them among themselves).
            head = int(_np.searchsorted(v_arr, cur_v + 1, side="left"))
            if head > win:
                head = win
            inc = self._inc
            head_times = times[:head].tolist()
            head_targets = targets[:head].tolist()
            for i in range(head):
                heappush(inc, (head_times[i],
                               base + i / count if i else base,
                               "message", head_targets[i], payload))
        else:
            head = 0
        if win > head:
            ring = self._ring
            v0 = int(v_arr[head])
            if v0 == int(v_arr[win - 1]):
                # Whole (in-window) broadcast inside one bucket — the
                # common case once the width adapts: one segment, no cut.
                ring[v0 & _MASK].append(
                    (times[head:win], targets[head:win], base, sender,
                     message))
                self._ring_count += win - head
                self._spilled_segments += 1
            else:
                vs = v_arr[head:win]
                rel = _np.flatnonzero(vs[1:] != vs[:-1]) + 1
                # One bulk extraction for the segment cut points and slot
                # ids: no per-segment numpy-scalar boxing in the loop.
                cuts = rel.tolist()
                seg_ids = vs.take(rel).tolist()
                slot_id = int(v_arr[head])
                lo = head
                for k in range(len(cuts)):
                    hi = head + cuts[k]
                    ring[slot_id & _MASK].append(
                        (times[lo:hi], targets[lo:hi], base, sender,
                         message))
                    slot_id = seg_ids[k]
                    lo = hi
                ring[slot_id & _MASK].append(
                    (times[lo:win], targets[lo:win], base, sender, message))
                self._ring_count += win - head
                self._spilled_segments += len(cuts) + 1
        if win < count:
            self._spill_overflow(times, targets, base, sender, message,
                                 payload, win)

    def _spill_overflow(self, times, targets, base, sender: int,
                        message: Any, payload, start: int) -> None:
        """Far-future tail: standard tuples with fractional member seqs."""
        overflow = self._overflow
        count = len(times)
        for i in range(start, count):
            heappush(overflow, (float(times[i]),
                                base + i / count if i else base,
                                "message", int(targets[i]), payload))

    def _spread_width(self, times) -> float:
        """Bucket width sized so one broadcast spans a dozen buckets.

        The divisor trades segment count against ``_inc`` traffic: wider
        buckets mean fewer per-bucket segments but more broadcast heads
        landing inside the *open* bucket (each one a heap push/pop and a
        slow merge fetch).  ``span / 12`` measured best on the n=256
        wan-matrix flood — half the inc traffic of ``span / 6`` before
        segment overhead starts to dominate.
        """
        span = float(times[-1]) - float(times[0])
        if not math.isfinite(span) or span <= 0.0:
            return self._width
        return max(span / 12.0, 1e-9)

    # ------------------------------------------------------------------ #
    # Consumption (cold paths; the compiled loop inlines all of this)
    # ------------------------------------------------------------------ #

    def pop(self) -> tuple:
        """Pop the global minimum as a standard-form event tuple."""
        while True:
            inc = self._inc
            pos = self._pos
            if pos < len(self._cur_times):
                t = self._cur_times[pos]
                if inc and inc[0][0] < t:
                    self._inc_pops += 1
                    return heappop(inc)
                self._pos = pos + 1
                target = self._cur_targets[pos]
                if target == _STD:
                    return self._cur_messages[pos]
                return (t, -1, "message", target,
                        (self._cur_senders[pos], self._cur_messages[pos]))
            if inc:
                self._inc_pops += 1
                return heappop(inc)
            if not (self._ring_count or self._overflow):
                raise IndexError("pop from an empty CalendarQueue")
            self._advance()

    def peek(self) -> Optional[tuple]:
        """The head event in standard form, or ``None`` when empty."""
        while True:
            inc = self._inc
            pos = self._pos
            if pos < len(self._cur_times):
                t = self._cur_times[pos]
                if inc and inc[0][0] < t:
                    return inc[0]
                target = self._cur_targets[pos]
                if target == _STD:
                    return self._cur_messages[pos]
                return (t, -1, "message", target,
                        (self._cur_senders[pos], self._cur_messages[pos]))
            if inc:
                return inc[0]
            if not (self._ring_count or self._overflow):
                return None
            self._advance()

    def requeue_front(self, event: tuple) -> None:
        """Reinsert an event that must be the very next pop.

        Only valid for an event just popped but not dispatched (budget
        exhaustion, loop exit edges): by pop order it precedes everything
        still queued, so a front insert preserves the total order.
        """
        pos = self._pos
        self._cur_times.insert(pos, event[0])
        self._cur_targets.insert(pos, _STD)
        self._cur_senders.insert(pos, 0)
        self._cur_messages.insert(pos, event)

    def _advance(self) -> None:
        """Materialize the next non-empty bucket into ``_cur``.

        Precondition: the current bucket and inc heap are exhausted and at
        least one event remains in the ring or overflow rung.
        """
        self._advances += 1
        if self._advances >= _ADAPT_EVERY:
            self._maybe_adapt()
        overflow = self._overflow
        if not self._ring_count:
            # Ring empty: jump the window to the overflow head.
            t0 = overflow[0][0]
            if t0 >= _FAR_TIME:
                # Everything left is far-future/inf: degenerate to one
                # sorted run (finite pushes then land in the inc heap).
                drained = sorted(overflow)
                del overflow[:]
                self._cur_times = [event[0] for event in drained]
                self._cur_targets = [_STD] * len(drained)
                self._cur_senders = [0] * len(drained)
                self._cur_messages = drained
                self._pos = 0
                self._cur_v = _FAR_V
                self._horizon_v = _FAR_V + _NBUCKETS
                self._horizon_t = math.inf
                self._materialized += 1
                self._materialized_events += len(drained)
                return
            v0 = int(t0 * self._inv)
            self._cur_v = v0 - 1
            self._horizon_v = v0 - 1 + _NBUCKETS
            self._horizon_t = self._horizon_v * self._width
        if overflow and overflow[0][0] < self._horizon_t:
            self._migrate()
        ring = self._ring
        v = self._cur_v + 1
        slot = ring[v & _MASK]
        while not slot:
            v += 1
            slot = ring[v & _MASK]
        ring[v & _MASK] = []
        self._scans += v - self._cur_v - 1
        self._cur_v = v
        self._horizon_v = v + _NBUCKETS
        self._horizon_t = self._horizon_v * self._width
        self._materialize(slot)

    def _migrate(self) -> None:
        """Move overflow events that now fall inside the ring window.

        Runs before the ring scan, and the horizon only ever grows — so
        every overflow event is back in the ring before its bucket can
        materialize.
        """
        overflow = self._overflow
        ring = self._ring
        inv = self._inv
        horizon_t = self._horizon_t
        horizon_v = self._horizon_v
        cur_v = self._cur_v
        moved = 0
        while overflow and overflow[0][0] < horizon_t:
            event = heappop(overflow)
            v = int(event[0] * inv)
            if v >= horizon_v:  # mapping edge: keep it in the rung
                heappush(overflow, event)
                break
            if v <= cur_v:
                v = cur_v + 1
            ring[v & _MASK].append(event)
            moved += 1
        self._ring_count += moved

    def _materialize(self, slot: list) -> None:
        """Sort one bucket's entries into the final delivery columns.

        Segments concatenate and stable-sort in bulk: the key is the bare
        time, and concatenation order is schedule order, so stability
        reproduces the ``(time, seq)`` tie-break.  Standard tuples then
        merge in by time, resolving exact ties against the segments' base
        sequence numbers (schedule order again).
        """
        self._materialized += 1
        count = 0
        segments = None
        singles = None
        for entry in slot:
            if type(entry[0]) is float:
                count += 1
                if singles is None:
                    singles = [entry]
                else:
                    singles.append(entry)
            else:
                count += len(entry[0])
                if segments is None:
                    segments = [entry]
                else:
                    segments.append(entry)
        self._ring_count -= count
        self._materialized_events += count
        self._pos = 0
        if segments is None:
            singles.sort()
            self._cur_times = [event[0] for event in singles]
            self._cur_targets = [_STD] * len(singles)
            self._cur_senders = [0] * len(singles)
            self._cur_messages = singles
            return
        if len(segments) == 1:
            times, targets, base, sender, message = segments[0]
            order = times.argsort(kind="stable")
            times_s = times.take(order)
            targets_s = targets.take(order)
            senders_s = None
            messages_s = None
        else:
            lens = [len(entry[0]) for entry in segments]
            times_all = _np.concatenate([entry[0] for entry in segments])
            targets_all = _np.concatenate([entry[1] for entry in segments])
            senders = _np.fromiter((entry[3] for entry in segments),
                                   _np.int64, len(segments))
            messages = _np.empty(len(segments), dtype=object)
            for i, entry in enumerate(segments):
                messages[i] = entry[4]
            order = times_all.argsort(kind="stable")
            times_s = times_all.take(order)
            targets_s = targets_all.take(order)
            senders_s = _np.repeat(senders, lens).take(order)
            messages_s = _np.repeat(messages, lens).take(order)
        if singles is not None:
            self._merge_singles(times_s, targets_s, senders_s, messages_s,
                                segments, order, singles)
            return
        n = len(times_s)
        self._cur_times = times_s.tolist()
        self._cur_targets = targets_s.tolist()
        if senders_s is None:
            sender = segments[0][3]
            message = segments[0][4]
            self._cur_senders = [sender] * n
            self._cur_messages = [message] * n
        else:
            self._cur_senders = senders_s.tolist()
            self._cur_messages = messages_s.tolist()

    def _merge_singles(self, times_s, targets_s, senders_s, messages_s,
                       segments: list, order, singles: list) -> None:
        """Splice standard tuples into the sorted member columns.

        Insertion indices are computed against the member-only arrays (so
        segment base-seq lookups through ``order`` stay valid), then all
        columns are rebuilt in one vectorized scatter.
        """
        singles.sort()
        n = len(times_s)
        k = len(singles)
        single_times = _np.fromiter((event[0] for event in singles),
                                    _np.float64, k)
        # ``side='right'``: a single loses exact-time ties by default (it
        # was scheduled after same-time members in the common case); the
        # scan below corrects the rare tie it actually wins by seq.
        idx = _np.searchsorted(times_s, single_times, side="right")
        bases_get = None  # per-member base seqs, built only if a tie needs it
        for j in range(k):
            event = singles[j]
            t = event[0]
            hi = int(idx[j])
            lo = hi
            while lo > 0 and times_s[lo - 1] == t:
                lo -= 1
            if lo < hi:
                # Exact-time tie against resident members: order by this
                # event's seq vs their segment base seq (the broadcast's
                # schedule position).
                seq = event[1]
                if bases_get is None:
                    if len(segments) == 1:
                        base = segments[0][2]
                        bases_get = lambda i, _b=base: _b  # noqa: E731
                    else:
                        lens = [len(entry[0]) for entry in segments]
                        expanded = _np.repeat(
                            _np.fromiter((entry[2] for entry in segments),
                                         _np.int64, len(segments)),
                            lens).take(order)
                        bases_get = expanded.__getitem__
                index = hi
                for i in range(hi - 1, lo - 1, -1):
                    if bases_get(i) < seq:
                        break
                    index = i
                idx[j] = index
        # Group-splice: singles cluster on few distinct insertion points
        # (commonly ONE — a timer tick instant shared by every replica),
        # so concatenating list runs around each cut beats a full-width
        # scatter through object arrays.
        times_l = times_s.tolist()
        targets_l = targets_s.tolist()
        if senders_s is None:
            senders_l = [segments[0][3]] * n
            messages_l = [segments[0][4]] * n
        else:
            senders_l = senders_s.tolist()
            messages_l = messages_s.tolist()
        out_times: List[float] = []
        out_targets: List[int] = []
        out_senders: List[int] = []
        out_messages: List[Any] = []
        idx_l = idx.tolist()
        prev = 0
        j = 0
        while j < k:
            cut = idx_l[j]
            jj = j + 1
            while jj < k and idx_l[jj] == cut:
                jj += 1
            group = singles[j:jj]
            out_times += times_l[prev:cut]
            out_targets += targets_l[prev:cut]
            out_senders += senders_l[prev:cut]
            out_messages += messages_l[prev:cut]
            out_times += [event[0] for event in group]
            out_targets += [_STD] * (jj - j)
            out_senders += [0] * (jj - j)
            out_messages += group
            prev = cut
            j = jj
        out_times += times_l[prev:]
        out_targets += targets_l[prev:]
        out_senders += senders_l[prev:]
        out_messages += messages_l[prev:]
        self._cur_times = out_times
        self._cur_targets = out_targets
        self._cur_senders = out_senders
        self._cur_messages = out_messages

    # ------------------------------------------------------------------ #
    # Window management
    # ------------------------------------------------------------------ #

    def _reset_window(self, t: float) -> None:
        """Re-anchor the bucket window at ``t`` (queue just went empty)."""
        if t >= _FAR_TIME:
            self._cur_v = _FAR_V
            self._horizon_v = _FAR_V + _NBUCKETS
            self._horizon_t = math.inf
        else:
            v = int(t * self._inv)
            self._cur_v = v - 1
            self._horizon_v = v - 1 + _NBUCKETS
            self._horizon_t = self._horizon_v * self._width
        self._cur_times = []
        self._cur_targets = []
        self._cur_senders = []
        self._cur_messages = []
        self._pos = 0

    def _maybe_adapt(self) -> None:
        """Re-derive the bucket width from the occupancy counters.

        Many empty-slot scans per advance → buckets too narrow (double the
        width); heavy inc-heap traffic → buckets so wide that short-delay
        events keep landing inside the open bucket (halve it).
        """
        scans = self._scans
        advances = self._advances
        events = self._materialized_events
        inc_pops = self._inc_pops
        self._advances = 0
        self._scans = 0
        self._materialized_events = 0
        self._inc_pops = 0
        if scans > 4 * advances:
            self._rebuild(self._width * 2.0)
        elif events and inc_pops * 8 > events:
            self._rebuild(self._width * 0.5)

    def _rebuild(self, width: float) -> None:
        """Re-slice every future entry under a new bucket width.

        The materialized current bucket is already in final order and is
        left untouched; ring segments are re-cut at the new edges and
        overflow events re-routed if the wider horizon now covers them.
        """
        if width == self._width or not math.isfinite(width) or width <= 0.0:
            return
        self._rebuilds += 1
        entries = []
        ring = self._ring
        for i in range(_NBUCKETS):
            if ring[i]:
                entries.extend(ring[i])
                ring[i] = []
        overflow = self._overflow
        self._overflow = []
        self._ring_count = 0
        self._width = width
        self._inv = 1.0 / width
        anchor = self._anchor_time(entries, overflow)
        if anchor >= _FAR_TIME:
            self._cur_v = _FAR_V
            self._horizon_v = _FAR_V + _NBUCKETS
            self._horizon_t = math.inf
        else:
            # Anchored at the global minimum over every future event, so
            # each re-routed entry maps strictly after ``_cur_v`` — none
            # can leak into the inc heap with a wrong tie rule.
            self._cur_v = int(anchor * self._inv) - 1
            self._horizon_v = self._cur_v + _NBUCKETS
            self._horizon_t = self._horizon_v * width
        for entry in entries:
            if type(entry[0]) is float:
                self.push(entry)
            else:
                times, targets, base, sender, message = entry
                self._spill_arrays(times, targets, base, sender, message,
                                   (sender, message))
        for event in overflow:
            self.push(event)

    def _anchor_time(self, entries: list, overflow: list) -> float:
        """A lower bound over every event still routable (rebuild anchor)."""
        best = math.inf
        if self._inc:
            best = self._inc[0][0]
        for entry in entries:
            t = entry[0] if type(entry[0]) is float else float(entry[0][0])
            if t < best:
                best = t
        for event in overflow:
            if event[0] < best:
                best = event[0]
        return 0.0 if best is math.inf else best


def build_scheduler(name: str, seq, *, replicas: int = 0,
                    jittered: bool = False):
    """Instantiate a scheduler backend by registered name.

    ``"auto"`` picks the calendar queue exactly when it can win: a
    jittered latency model (so broadcasts spill as vectorized segments),
    enough replicas that the heap gets deep, and numpy available for the
    bulk operations; the binary heap is the reference default everywhere
    else.  Both backends replay the same ``(time, seq)`` order, so the
    choice never changes results.
    """
    if name == "auto":
        if jittered and replicas >= 64 and _np is not None:
            name = "calendar"
        else:
            name = "heap"
    if name == "heap":
        return HeapScheduler()
    if name == "calendar":
        return CalendarQueue(seq)
    raise ValueError(
        "unknown scheduler %r (expected one of %s)"
        % (name, ", ".join(SCHEDULERS))
    )
