"""Runtime layer: clocks, timers, and the two execution backends.

Protocols in this repository are *sans-io* state machines (see
:mod:`repro.protocols.base`): they only interact with the world through a
:class:`repro.runtime.context.ReplicaContext`.  This package provides:

* :mod:`repro.runtime.context` — the context interface and timer type;
* :mod:`repro.runtime.simulator` — a deterministic discrete-event simulator
  driving any set of protocol replicas over the network substrate; used by
  all tests and benchmarks;
* :mod:`repro.runtime.compute` — pluggable replica compute models: what
  message handling costs in CPU time (free by default; a crypto cost
  table for CPU-bound regimes);
* :mod:`repro.runtime.asyncio_runtime` — a real-time asyncio runtime with an
  in-memory delayed transport; used by the asyncio example to show the same
  protocol objects running under ``asyncio``.
"""

from repro.runtime.compute import ComputeModel, CryptoCostCompute, CryptoCostTable, ZeroCompute
from repro.runtime.context import ReplicaContext, Timer
from repro.runtime.scheduler import SCHEDULERS
from repro.runtime.simulator import (
    BudgetExhausted,
    CommitRecord,
    NetworkConfig,
    Simulation,
)

__all__ = [
    "BudgetExhausted",
    "CommitRecord",
    "ComputeModel",
    "CryptoCostCompute",
    "CryptoCostTable",
    "NetworkConfig",
    "ReplicaContext",
    "SCHEDULERS",
    "Simulation",
    "Timer",
    "ZeroCompute",
]
