"""Asyncio real-time runtime.

Runs the same sans-io protocol objects under ``asyncio``: each replica is a
task consuming an inbox queue, messages travel through an in-memory router
that sleeps for the modelled delay before delivery, and timers are
``call_later`` callbacks.  This backend exists to demonstrate that the
protocol layer is runtime-agnostic and to support the asyncio example; the
benchmarks use the deterministic discrete-event simulator instead, because
wall-clock sleeps would make them slow and noisy.

Time can be compressed with ``time_scale``: a scale of 0.1 runs modelled
delays at 10x speed, keeping relative timing intact.

Messages round-trip through the :mod:`repro.cluster.wire` binary encoding
on every hop: this in-memory router and the real TCP transport share one
serialization path, so a message the asyncio stub can route is exactly a
message the cluster runtime can put on a socket.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.wire import decode_envelope, encode_envelope
from repro.runtime.context import ReplicaContext, Timer
from repro.runtime.simulator import CommitRecord, NetworkConfig
from repro.types.blocks import Block
from repro.types.messages import Message


class _AsyncioContext(ReplicaContext):
    """Per-replica context backed by the asyncio runtime."""

    def __init__(self, runtime: "AsyncioRuntime", replica_id: int) -> None:
        self._runtime = runtime
        self._replica_id = replica_id
        # Cached once: protocols read this on every hot-path handler, and
        # rebuilding a list per call is avoidable allocation churn.
        self._replica_ids: Tuple[int, ...] = tuple(runtime.replica_ids)

    @property
    def replica_id(self) -> int:
        return self._replica_id

    @property
    def replica_ids(self) -> Tuple[int, ...]:
        return self._replica_ids

    def now(self) -> float:
        return self._runtime.model_time()

    def send(self, receiver: int, message: Message) -> None:
        self._runtime._route(self._replica_id, receiver, message)

    def broadcast(self, message: Message) -> None:
        for receiver in self._replica_ids:
            self._runtime._route(self._replica_id, receiver, message)

    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        return self._runtime._arm_timer(self._replica_id, delay, name, data)

    def cancel_timer(self, timer_id: int) -> None:
        self._runtime._cancel_timer(timer_id)

    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        self._runtime._record_commit(self._replica_id, blocks, finalization_kind)


class AsyncioRuntime:
    """Drives protocol replicas in real (scaled) time under asyncio.

    Args:
        protocols: mapping replica id → protocol instance.
        network: network substrate configuration (latency/bandwidth/faults).
        time_scale: wall-clock seconds per modelled second (e.g. 0.1 runs
            10x faster than modelled time).
    """

    def __init__(
        self,
        protocols: Dict[int, Any],
        network: Optional[NetworkConfig] = None,
        time_scale: float = 1.0,
    ) -> None:
        if not protocols:
            raise ValueError("runtime needs at least one replica")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._protocols = dict(protocols)
        self.replica_ids: List[int] = sorted(self._protocols)
        self.network = network or NetworkConfig()
        self.time_scale = time_scale
        self._rng = random.Random(self.network.seed)
        self._contexts = {r: _AsyncioContext(self, r) for r in self.replica_ids}
        self._commits: Dict[int, List[CommitRecord]] = {r: [] for r in self.replica_ids}
        self._commit_listeners: List[Callable[[CommitRecord], None]] = []
        self._timer_handles: Dict[int, asyncio.TimerHandle] = {}
        self._next_timer_id = 1
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._start_time: float = 0.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def commits_for(self, replica_id: int) -> List[CommitRecord]:
        """Return the commit records of ``replica_id``."""
        return list(self._commits[replica_id])

    def all_commits(self) -> Dict[int, List[CommitRecord]]:
        """Return commit records for every replica."""
        return {r: list(records) for r, records in self._commits.items()}

    def add_commit_listener(self, listener: Callable[[CommitRecord], None]) -> None:
        """Register a callback invoked on every commit."""
        self._commit_listeners.append(listener)

    def model_time(self) -> float:
        """Current modelled time in seconds since the runtime started."""
        if self._loop is None:
            return 0.0
        return (self._loop.time() - self._start_time) / self.time_scale

    async def run(self, duration: float) -> None:
        """Start every replica and run for ``duration`` modelled seconds."""
        self._loop = asyncio.get_running_loop()
        self._start_time = self._loop.time()
        for replica_id in self.replica_ids:
            if self.network.faults.is_crashed(replica_id, 0.0):
                continue
            self._protocols[replica_id].on_start(self._contexts[replica_id])
        await asyncio.sleep(duration * self.time_scale)
        for handle in self._timer_handles.values():
            handle.cancel()
        self._timer_handles.clear()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _route(self, sender: int, receiver: int, message: Message) -> None:
        if self._loop is None:
            return
        now = self.model_time()
        if self.network.faults.should_drop(sender, receiver, now, self._rng):
            return
        # The modelled transfer time is driven by the *logical* wire size
        # (payloads may be virtual), so compute it before serialising.
        size = getattr(message, "wire_size", 0)
        delay = self.network.bandwidth.transfer_time(sender, receiver, size)
        delay += self.network.latency.delay(sender, receiver, self._rng)
        envelope = encode_envelope(sender, message)
        self._loop.call_later(
            delay * self.time_scale, self._deliver, receiver, envelope
        )

    def _deliver(self, receiver: int, envelope: bytes) -> None:
        if self.network.faults.is_crashed(receiver, self.model_time()):
            return
        sender, message = decode_envelope(envelope)
        self._protocols[receiver].on_message(self._contexts[receiver], sender, message)

    def _arm_timer(self, replica_id: int, delay: float, name: str, data: Any) -> int:
        if self._loop is None:
            raise RuntimeError("runtime not started")
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        timer = Timer(
            name=name, fire_time=self.model_time() + delay, data=data, timer_id=timer_id
        )
        handle = self._loop.call_later(
            delay * self.time_scale, self._fire_timer, replica_id, timer
        )
        self._timer_handles[timer_id] = handle
        return timer_id

    def _cancel_timer(self, timer_id: int) -> None:
        handle = self._timer_handles.pop(timer_id, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, replica_id: int, timer: Timer) -> None:
        self._timer_handles.pop(timer.timer_id, None)
        if self.network.faults.is_crashed(replica_id, self.model_time()):
            return
        self._protocols[replica_id].on_timer(self._contexts[replica_id], timer)

    def _record_commit(self, replica_id: int, blocks, kind: str) -> None:
        now = self.model_time()
        for block in blocks:
            record = CommitRecord(
                replica_id=replica_id,
                block=block,
                commit_time=now,
                finalization_kind=kind,
            )
            self._commits[replica_id].append(record)
            for listener in self._commit_listeners:
                listener(record)
