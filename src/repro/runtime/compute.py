"""Replica compute models: what message handling costs in CPU time.

The network substrate (:mod:`repro.net`) charges every byte moved; this
module is its CPU-side counterpart.  A :class:`ComputeModel` decides how
long a replica's (single, serial) core is busy handling each delivered
message, and the simulator turns that into a per-replica CPU timeline: a
delivery that arrives while the replica is still busy **queues** and is
handled when the core frees up, exactly like the sender-uplink queue of the
contended transport but on the receive side.

Two models are provided:

* :class:`ZeroCompute` (default) — handling is free.  The simulator skips
  the compute path entirely, so executions are byte-for-byte identical to
  the pre-compute simulator (pinned by the golden digests in
  ``tests/test_transport.py``) and the event loop keeps its throughput.
* :class:`CryptoCostCompute` — a cost table of the cryptographic work the
  paper's protocols perform per message: hashing, signing the response
  vote, verifying signature shares, and verifying aggregate (BLS-style)
  certificates with a per-signer term, so certificate checks scale with
  the quorum size (``n - f``, ``⌈(n+f+1)/2⌉``, ``n - p``).  Because votes
  arrive all-to-all, per-round CPU work grows ~``n²`` while round length is
  network-bound and roughly flat — which is what flips throughput from
  network-bound to CPU-bound as ``n`` grows (``banyan-repro figure
  crypto``).

Models are selected by name through
:class:`repro.runtime.simulator.NetworkConfig` (``compute="crypto"``) and
built by :func:`build_compute`; custom models subclass
:class:`ComputeModel` and can be passed as instances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.types.messages import Message


class ComputeModel(ABC):
    """Strategy interface: CPU cost of handling one delivered message.

    Subclasses implement :meth:`message_cost` — the busy time (seconds) a
    replica's serial core spends on a delivery.  The CPU-timeline state the
    simulator drives (``busy_until``, the busy/wait counters, and the
    :meth:`record_wait` / :meth:`record_busy` bookkeeping) lives on this
    base class, so any custom non-trivial model passed through
    :class:`repro.runtime.simulator.NetworkConfig` works without
    re-implementing it.
    """

    #: Model name used by the registry and in stats.
    name = "abstract"

    #: ``True`` when the model never charges cost; lets the simulator skip
    #: the per-event compute bookkeeping entirely (the hot-path guarantee
    #: behind the "ZeroCompute regresses < 5%" acceptance bound).
    trivial = False

    def __init__(self) -> None:
        #: Replica id → time its core frees up (the serial CPU timeline).
        self.busy_until: Dict[int, float] = {}
        #: Replica id → total busy seconds charged.
        self.busy_s: Dict[int, float] = {}
        #: Replica id → total seconds deliveries waited for the core.
        self.queue_wait_s: Dict[int, float] = {}
        #: Deliveries that found the core busy (one count per deferral).
        self.deferred_deliveries = 0
        #: Deliveries that were charged a non-zero cost.
        self.messages_charged = 0

    def reset(self) -> None:
        """Clear the CPU timelines and counters (inter-simulation state)."""
        self.busy_until.clear()
        self.busy_s.clear()
        self.queue_wait_s.clear()
        self.deferred_deliveries = 0
        self.messages_charged = 0

    @abstractmethod
    def message_cost(self, receiver: int, sender: int, message: Message) -> float:
        """Busy seconds ``receiver``'s core spends handling ``message``."""

    # ------------------------------------------------------------------ #
    # Timeline bookkeeping (driven by the simulator)
    # ------------------------------------------------------------------ #

    def record_wait(self, replica_id: int, waited_s: float) -> None:
        """Record that a delivery waited ``waited_s`` for the busy core."""
        self.deferred_deliveries += 1
        self.queue_wait_s[replica_id] = (
            self.queue_wait_s.get(replica_id, 0.0) + waited_s
        )

    def record_busy(self, replica_id: int, start: float, cost: float) -> None:
        """Occupy the core for ``cost`` seconds starting at ``start``."""
        self.messages_charged += 1
        self.busy_until[replica_id] = start + cost
        self.busy_s[replica_id] = self.busy_s.get(replica_id, 0.0) + cost

    def stats(self) -> Dict[str, object]:
        """Model-specific counters (busy time, queue waits), for reports."""
        return {"compute": self.name}


class ZeroCompute(ComputeModel):
    """Free message handling (the pre-compute semantics, and the default)."""

    name = "zero"
    trivial = True

    def message_cost(self, receiver: int, sender: int, message: Message) -> float:
        """Handling is free."""
        return 0.0


@dataclass(frozen=True)
class CryptoCostTable:
    """Per-operation CPU costs, in seconds on one commodity core.

    Defaults approximate BLS12-381 multi-signatures (the aggregation scheme
    the paper uses, Boneh et al. 2018): signing and share verification are
    pairing-bound (~0.6 ms / ~1.8 ms), aggregate verification pays the same
    two pairings once plus a cheap per-signer public-key aggregation term.

    Attributes:
        hash_s: hashing/canonicalising one received message.
        sign_s: producing one signature (the vote a replica signs in
            response to a valid proposal).
        share_verify_s: verifying one individual signature share.
        aggregate_verify_base_s: fixed cost of verifying an aggregate
            signature (pairings), independent of the signer count.
        aggregate_verify_per_signer_s: per-signer cost of an aggregate
            verification (public-key aggregation), multiplied by the
            certificate's voter-set size.
    """

    hash_s: float = 5e-6
    sign_s: float = 0.6e-3
    share_verify_s: float = 1.8e-3
    aggregate_verify_base_s: float = 1.8e-3
    aggregate_verify_per_signer_s: float = 40e-6


#: The default BLS-like cost table.
DEFAULT_COST_TABLE = CryptoCostTable()


class CryptoCostCompute(ComputeModel):
    """Per-replica serial CPU timeline charging cryptographic work.

    The cost of a delivery is a pure function of the message's shape:

    * every message pays one hash;
    * a block proposal pays one share verification (the proposer's block
      signature) plus one signing (the response vote), and its attached
      parent notarization / unlock proof / proposer fast vote are verified;
    * a vote message pays one share verification per carried vote;
    * a certificate message pays one aggregate verification per carried
      certificate/proof, scaled by the signer-set size.

    Self-deliveries are free — a replica does not verify its own messages.

    Args:
        table: per-operation costs (defaults to :data:`DEFAULT_COST_TABLE`).
        scale: multiplier applied to every cost — ``2.0`` models a core
            half as fast.  Must be positive.
    """

    name = "crypto"
    trivial = False

    def __init__(self, table: Optional[CryptoCostTable] = None,
                 scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("compute scale must be positive")
        super().__init__()
        self.table = table if table is not None else DEFAULT_COST_TABLE
        self.scale = float(scale)

    # ------------------------------------------------------------------ #
    # Costing
    # ------------------------------------------------------------------ #

    def message_cost(self, receiver: int, sender: int, message: Message) -> float:
        """Cost of handling ``message``, from the cost table (duck-typed)."""
        if receiver == sender:
            return 0.0
        table = self.table
        cost = table.hash_s
        if getattr(message, "block", None) is not None:
            # Proposal: verify the block signature, sign the response vote.
            cost += table.share_verify_s + table.sign_s
        votes = getattr(message, "votes", None)
        if votes is not None:
            cost += table.share_verify_s * len(votes)
        if getattr(message, "fast_vote", None) is not None:
            cost += table.share_verify_s
        per_signer = table.aggregate_verify_per_signer_s
        for attribute in ("parent_notarization", "certificate", "high_qc",
                          "parent_unlock_proof", "unlock_proof"):
            certificate = getattr(message, attribute, None)
            if certificate is not None:
                cost += (table.aggregate_verify_base_s
                         + per_signer * len(certificate))
        return cost * self.scale

    def stats(self) -> Dict[str, object]:
        """Per-replica busy/wait totals plus the deferral counters."""
        return {
            "compute": self.name,
            "scale": self.scale,
            "busy_s": dict(self.busy_s),
            "queue_wait_s": dict(self.queue_wait_s),
            "deferred_deliveries": self.deferred_deliveries,
            "messages_charged": self.messages_charged,
        }


#: Compute-model registry, keyed by the names accepted by
#: :class:`repro.runtime.simulator.NetworkConfig` and the CLI.
COMPUTE_MODELS = {
    "zero": ZeroCompute,
    "crypto": CryptoCostCompute,
}


def available_compute_models() -> List[str]:
    """The registered compute-model names, sorted."""
    return sorted(COMPUTE_MODELS)


def build_compute(compute, scale: float = 1.0) -> ComputeModel:
    """Build (or adopt) the compute model selected by a network configuration.

    Args:
        compute: a registered name (``"zero"``, ``"crypto"``) or an
            already-constructed :class:`ComputeModel` instance (adopted
            as-is after a :meth:`ComputeModel.reset`).
        scale: cost multiplier for the ``"crypto"`` model (ignored by
            ``"zero"``).

    Raises:
        KeyError: for an unknown compute-model name.
    """
    if isinstance(compute, ComputeModel):
        compute.reset()
        return compute
    try:
        factory = COMPUTE_MODELS[compute]
    except KeyError:
        available = ", ".join(available_compute_models())
        raise KeyError(
            f"unknown compute model {compute!r} (available: {available})"
        ) from None
    if factory is CryptoCostCompute:
        return CryptoCostCompute(scale=scale)
    return factory()
