"""Deterministic discrete-event simulator.

The simulator drives a set of protocol replicas over the network substrate
(:mod:`repro.net`).  It owns a single priority queue of events (message
deliveries and timer firings) keyed by ``(time, sequence)`` — the sequence
number gives a stable, deterministic tie-break, so a given configuration and
seed always produces the same execution.  Events are plain
``(time, seq, kind, target, payload)`` tuples: tuple comparisons run in C
and never reach the ``kind`` field (sequence numbers are unique), which
keeps the heap operations off the Python bytecode path.

Message timing is owned entirely by the :class:`repro.net.transport.Transport`
selected through :class:`NetworkConfig` (default:
:class:`repro.net.transport.DirectTransport`): when replica ``a`` sends a
message of ``wire_size`` bytes to replica ``b`` at time ``t``, the transport
composes the fault, bandwidth, and latency models into a per-receiver
:class:`repro.net.transport.Delivery` (or drops the copy).  Under the
default transport a message is delivered at::

    t + transfer_time(a, b, size) + propagation_delay(a, b)

unless the fault plan drops it.  Crashed replicas neither send nor receive,
and their pending timers never fire.  Crash windows may end
(:attr:`repro.net.faults.CrashSchedule.recover_times`): a recovered replica
resumes with the protocol state it had at the crash instant — modelling a
restart with durable state — but timers that came due while it was down
are lost, and it re-engages through the messages its peers keep sending.
A replica that is crashed at time 0 *with* a recovery time has its
``on_start`` deferred to the recovery instant (it boots late rather than
never).  All fault windows are half-open ``[start, end)``; the receiver of
a message is checked with the same predicate at send time and again at
delivery time, so a copy in flight across a crash is dropped on arrival
and a copy arriving at or after the recovery instant is delivered.

Replica CPU time is owned by the :class:`repro.runtime.compute.ComputeModel`
selected through :class:`NetworkConfig` (default:
:class:`repro.runtime.compute.ZeroCompute`, which charges nothing and leaves
the event loop untouched).  Under a non-trivial model each handled message
occupies the receiving replica's serial core for the model's cost; a
delivery that arrives while the core is busy is deferred to the core's free
time — receive-side queueing, symmetric to the contended transport's
sender-uplink queue.

Besides replica-driven events, callers outside the replica set (e.g. the
client workload in :mod:`repro.workload`) can inject work into the event
queue with :meth:`Simulation.schedule_external`: the callback runs at the
scheduled simulation time, interleaved deterministically with message
deliveries and timers via the same ``(time, sequence)`` ordering.
"""

from __future__ import annotations

import heapq
import itertools
import math
import operator
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.transport import Delivery, Transport, build_transport
from repro.runtime.compute import ComputeModel, build_compute
from repro.runtime.context import ReplicaContext, Timer
from repro.runtime.dispatch import UNBOUNDED, build_handler_tables, select_loop
from repro.runtime.scheduler import SCHEDULERS, build_scheduler
from repro.types.blocks import Block
from repro.types.messages import Message

try:  # pragma: no cover - numpy is present everywhere we benchmark
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None


@dataclass
class NetworkConfig:
    """Bundle of network substrate parameters for a simulation.

    Attributes:
        latency: one-way propagation-delay model.
        bandwidth: size-dependent transfer-time model.
        faults: crash / drop / partition plan.
        seed: seed for all stochastic choices (jitter, drops).
        transport: dissemination strategy — a registered name (``"direct"``,
            ``"contended"``, ``"relay"``; see
            :data:`repro.net.transport.TRANSPORTS`) or a ready
            :class:`repro.net.transport.Transport` instance.
        uplink_bytes_per_s: per-replica NIC capacity for the ``"contended"``
            transport (``None`` selects its 1 Gbit/s default).
        relays: relay fan-out for the ``"relay"`` transport.
        compute: replica compute model — a registered name (``"zero"``,
            ``"crypto"``; see :data:`repro.runtime.compute.COMPUTE_MODELS`)
            or a ready :class:`repro.runtime.compute.ComputeModel` instance.
            ``"zero"`` (the default) charges nothing and leaves executions
            byte-for-byte identical to the pre-compute simulator.
        compute_scale: cost multiplier for the ``"crypto"`` compute model.
        scheduler: event-queue backend — one of
            :data:`repro.runtime.scheduler.SCHEDULERS` (``"auto"``,
            ``"heap"``, ``"calendar"``).  ``"auto"`` (the default) picks the
            calendar queue for large jittered runs and the binary heap
            everywhere else; both replay the identical ``(time, seq)``
            event order, so the choice never changes results.
    """

    latency: LatencyModel = field(default_factory=lambda: ConstantLatency(0.05))
    bandwidth: BandwidthModel = field(default_factory=BandwidthModel)
    faults: FaultPlan = field(default_factory=FaultPlan.none)
    seed: int = 0
    transport: Union[str, Transport] = "direct"
    uplink_bytes_per_s: Optional[float] = None
    relays: int = 2
    compute: Union[str, ComputeModel] = "zero"
    compute_scale: float = 1.0
    scheduler: str = "auto"


@dataclass(frozen=True)
class CommitRecord:
    """A block committed (finalized and output) by a replica.

    Attributes:
        replica_id: the committing replica.
        block: the finalized block.
        commit_time: simulation time of the commit.
        finalization_kind: ``"fast"`` or ``"slow"``.
    """

    replica_id: int
    block: Block
    commit_time: float
    finalization_kind: str


class BudgetExhausted(RuntimeError):
    """Raised by :meth:`Simulation.run_until_idle` when the event budget
    runs out with events still queued — a wedged run (a protocol feeding
    itself work forever) must not masquerade as quiescence.

    Attributes:
        processed: events dispatched before the budget ran out.
        remaining: events still queued when the run stopped.
    """

    def __init__(self, processed: int, remaining: int) -> None:
        super().__init__(
            "run_until_idle exhausted its %d-event budget with %d event%s "
            "still queued; raise max_events or use run(until=...) for "
            "workloads that never drain" % (processed, remaining,
                                            "" if remaining == 1 else "s")
        )
        self.processed = processed
        self.remaining = remaining


#: Event target used for injected external events (not a replica id).
_EXTERNAL_TARGET = -1

#: Sort key extracting ``deliver_at`` from a ``(receiver, deliver_at)``
#: transport pair (C-level, for the sbatch schedule's stable time sort).
_PAIR_TIME = operator.itemgetter(1)

#: Signature of delivery listeners registered via
#: :meth:`Simulation.add_delivery_listener`: ``(sender, receiver, message,
#: send_time, delivery_or_None)`` — ``None`` marks a dropped copy.
DeliveryListener = Callable[[int, int, Message, float, Optional[Delivery]], None]

#: Signature of compute listeners registered via
#: :meth:`Simulation.add_compute_listener`: ``(kind, replica, time, seconds,
#: message_or_None)`` — ``kind`` is ``"cpu-wait"`` (a delivery deferred
#: behind the busy core; ``message`` is ``None``) or ``"cpu-busy"`` (a
#: handled message charged ``seconds`` of core time).
ComputeListener = Callable[[str, int, float, float, Optional[Message]], None]


class _SimContext(ReplicaContext):
    """Per-replica context implementation backed by the simulator."""

    __slots__ = ("_simulation", "_replica_id", "_replica_ids")

    def __init__(self, simulation: "Simulation", replica_id: int) -> None:
        self._simulation = simulation
        self._replica_id = replica_id
        # Cached immutable view: ``broadcast`` runs once per protocol send
        # and must not rebuild the id list every time.
        self._replica_ids: Tuple[int, ...] = simulation._replica_id_tuple

    @property
    def replica_id(self) -> int:
        return self._replica_id

    @property
    def replica_ids(self) -> Tuple[int, ...]:
        return self._replica_ids

    def now(self) -> float:
        return self._simulation.now

    def send(self, receiver: int, message: Message) -> None:
        self._simulation._enqueue_message(self._replica_id, receiver, message)

    def broadcast(self, message: Message) -> None:
        self._simulation._broadcast_message(self._replica_id, message)

    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        return self._simulation._arm_timer(self._replica_id, delay, name, data)

    def cancel_timer(self, timer_id: int) -> None:
        self._simulation._cancel_timer(timer_id)

    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        self._simulation._record_commit(self._replica_id, blocks, finalization_kind)


class Simulation:
    """Discrete-event simulation of a set of protocol replicas.

    Args:
        protocols: mapping replica id → protocol instance (anything matching
            :class:`repro.protocols.base.Protocol`).
        network: the network substrate configuration (including the
            dissemination transport).

    Usage::

        sim = Simulation(protocols, NetworkConfig(latency=GeoLatency(topology)))
        sim.run(until=60.0)
        commits = sim.commits_for(replica_id=0)
    """

    def __init__(self, protocols: Dict[int, Any], network: Optional[NetworkConfig] = None) -> None:
        if not protocols:
            raise ValueError("simulation needs at least one replica")
        self._protocols = dict(protocols)
        self.replica_ids: List[int] = sorted(self._protocols)
        self._replica_id_tuple: Tuple[int, ...] = tuple(self.replica_ids)
        self.network = network or NetworkConfig()
        self._rng = random.Random(self.network.seed)
        self._transport: Transport = build_transport(
            self.network.transport,
            latency=self.network.latency,
            bandwidth=self.network.bandwidth,
            faults=self.network.faults,
            uplink_bytes_per_s=self.network.uplink_bytes_per_s,
            relays=self.network.relays,
        )
        self._compute: ComputeModel = build_compute(
            self.network.compute, scale=self.network.compute_scale
        )
        # Hoisted once: the zero model's per-event path is skipped entirely,
        # so the hot loop pays at most one ``is not None`` check per message.
        self._compute_cost = (
            None if self._compute.trivial else self._compute.message_cost
        )
        self.now: float = 0.0
        self._seq = itertools.count()
        self._timer_ids = itertools.count(1)
        self._cancelled_timers: set = set()
        self._pending_timers: set = set()
        self._external_scheduled = 0
        self._contexts: Dict[int, _SimContext] = {
            replica_id: _SimContext(self, replica_id) for replica_id in self.replica_ids
        }
        # Per-target bound-method dispatch tables: the event loop does one
        # dict lookup + tuple unpack per dispatch instead of two dict
        # lookups and a bound-method allocation.
        self._deliver_one, self._deliver_many, self._fire_timer = (
            build_handler_tables(self._protocols, self._contexts)
        )
        # Event-loop variant selection state: the generation is bumped by
        # any feature toggle that can affect loop behavior mid-run; the
        # active loop notices and returns so ``run()`` re-selects.
        self._dispatch_generation = 0
        self._force_scalar_dispatch = False
        self._dispatch_counts: Dict[str, int] = {
            "sweeps": 0,
            "swept_messages": 0,
            "runahead_members": 0,
        }
        # True when replica ids are exactly ``0..n-1``: lets the sbatch
        # scheduler use argsort indices as receiver ids directly.
        self._ids_are_range = (
            self._replica_id_tuple == tuple(range(len(self._replica_id_tuple)))
        )
        self._commits: Dict[int, List[CommitRecord]] = {r: [] for r in self.replica_ids}
        self._commit_listeners: List[Callable[[CommitRecord], None]] = []
        self._delivery_listeners: List[DeliveryListener] = []
        self._compute_listeners: List[ComputeListener] = []
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._bytes_sent = 0
        self._started = False
        # Scratch buffer for mbatch group formation, reused across
        # broadcasts (the dict only — member lists are handed to heap
        # events and must stay fresh).
        self._group_scratch: Dict[float, list] = {}
        # Under a jittered latency model broadcast arrival instants are
        # (almost surely) pairwise distinct, so same-instant grouping buys
        # nothing while still paying one heap entry per copy — and with
        # every in-flight copy resident, the heap itself grows to n x the
        # broadcasts in flight, inflating every sift.  Those runs schedule
        # each broadcast as a single chained "sbatch" event instead (see
        # :meth:`_broadcast_message`).
        latency_model = getattr(self._transport, "latency", self.network.latency)
        self._spread_broadcasts = not bool(getattr(latency_model, "jitter_free",
                                                   False))
        # Event-queue backend (see :mod:`repro.runtime.scheduler`).  The
        # heap backend exposes its raw list as ``self._queue`` so the
        # compiled loop and the cold push sites keep the original zero-seam
        # code; ``None`` routes every push through the scheduler object.
        self._scheduler = build_scheduler(
            self.network.scheduler, self._seq,
            replicas=len(self.replica_ids),
            jittered=self._spread_broadcasts,
        )
        self._queue: Optional[List[tuple]] = getattr(
            self._scheduler, "heap", None)
        # Receiver ids as an int64 array for the calendar spill (only
        # needed when ids are not literally ``0..n-1``, where argsort
        # indices double as receiver ids).
        self._receiver_array = (
            _np.asarray(self.replica_ids, dtype=_np.int64)
            if _np is not None and not self._ids_are_range else None
        )
        # Scheduled-event tallies by heap-event kind (``mbatch_members`` /
        # ``sbatch_members`` count the deliveries folded into the batch
        # events), surfaced by :meth:`event_counts` and the CLI
        # ``--profile`` flag.
        self._event_kind_counts: Dict[str, int] = {
            "message": 0,
            "mbatch": 0,
            "mbatch_members": 0,
            "sbatch": 0,
            "sbatch_members": 0,
            "timer": 0,
            "external": 0,
        }

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    @property
    def messages_sent(self) -> int:
        """Total messages handed to the network."""
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        """Total messages delivered to replicas."""
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        """Total messages lost to crashes, partitions, or random drops."""
        return self._messages_dropped

    @property
    def bytes_sent(self) -> int:
        """Total logical bytes handed to the network.

        This counts one copy per logical receiver regardless of transport, so
        the number is comparable across dissemination strategies; the actual
        on-the-wire cost of a strategy is in :meth:`transport_stats`.
        """
        return self._bytes_sent

    @property
    def transport(self) -> Transport:
        """The dissemination transport moving this simulation's messages."""
        return self._transport

    def transport_stats(self) -> Dict[str, object]:
        """Transport-specific counters (wire bytes, uplink queueing, ...)."""
        return self._transport.stats()

    @property
    def compute(self) -> ComputeModel:
        """The compute model charging this simulation's message handling."""
        return self._compute

    def compute_stats(self) -> Dict[str, object]:
        """Compute-model counters (per-replica busy/wait time, deferrals)."""
        return self._compute.stats()

    def add_compute_listener(self, listener: ComputeListener) -> None:
        """Register a callback invoked on every compute charge or deferral.

        The listener receives ``(kind, replica, time, seconds, message)``
        with ``kind`` ``"cpu-busy"`` or ``"cpu-wait"`` — the seam used by
        :func:`repro.runtime.trace.attach_compute_trace`.  Listeners are
        only consulted under a non-trivial compute model, so they add no
        overhead to default (zero-compute) runs.
        """
        self._compute_listeners.append(listener)
        self._dispatch_generation += 1

    def protocol(self, replica_id: int) -> Any:
        """Return the protocol instance of ``replica_id``."""
        return self._protocols[replica_id]

    def commits_for(self, replica_id: int) -> List[CommitRecord]:
        """Return the commit records of ``replica_id`` in commit order."""
        return list(self._commits[replica_id])

    def all_commits(self) -> Dict[int, List[CommitRecord]]:
        """Return commit records for every replica."""
        return {replica_id: list(records) for replica_id, records in self._commits.items()}

    def add_commit_listener(self, listener: Callable[[CommitRecord], None]) -> None:
        """Register a callback invoked on every commit record."""
        self._commit_listeners.append(listener)

    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        """Register a callback invoked on every message send attempt.

        The listener receives ``(sender, receiver, message, send_time,
        delivery)`` with ``delivery=None`` for dropped copies — the seam
        used by :func:`repro.runtime.trace.attach_network_trace` to record
        queueing and propagation delay separately.  Listeners add per-send
        overhead; attach them only when tracing.
        """
        self._delivery_listeners.append(listener)
        self._dispatch_generation += 1

    @property
    def force_scalar_dispatch(self) -> bool:
        """When ``True`` the event loop never fuses same-target sweeps.

        The scalar fallback dispatches every delivery through
        ``on_message`` one at a time (and re-pushes every sbatch successor
        through the heap) — the reference semantics that batched dispatch
        must reproduce byte-for-byte.  Flipping it mid-run takes effect at
        the next event (the loop re-selects its variant).  Used by the
        sweep↔scalar equivalence tests and the dispatch microbench.
        """
        return self._force_scalar_dispatch

    @force_scalar_dispatch.setter
    def force_scalar_dispatch(self, value: bool) -> None:
        value = bool(value)
        if value != self._force_scalar_dispatch:
            self._force_scalar_dispatch = value
            self._dispatch_generation += 1

    def dispatch_counts(self) -> Dict[str, int]:
        """Batched-dispatch loop statistics.

        ``sweeps`` / ``swept_messages`` count fused ``on_messages`` calls
        and the deliveries they carried; ``runahead_members`` counts sbatch
        members delivered without a heap round trip.  All zero under
        :attr:`force_scalar_dispatch`.
        """
        return dict(self._dispatch_counts)

    @property
    def external_events_scheduled(self) -> int:
        """Total external events injected via :meth:`schedule_external`."""
        return self._external_scheduled

    def event_counts(self) -> Dict[str, int]:
        """Scheduled heap events tallied by kind.

        ``message``/``mbatch``/``sbatch``/``timer``/``external`` count heap
        pushes at schedule time; ``mbatch_members`` / ``sbatch_members``
        count the individual deliveries folded into the batch events, so
        ``message + mbatch_members + sbatch_members`` is the total delivery
        attempts scheduled and ``members / batches`` the mean batching
        factor — the first thing to look at when profiling the event loop.
        (``mbatch`` groups same-instant copies under zero-jitter latency;
        ``sbatch`` chains one jittered broadcast's time-sorted copies
        through a single resident heap entry.)
        """
        return dict(self._event_kind_counts)

    def scheduler_stats(self) -> Dict[str, object]:
        """Event-queue backend counters (backend name, occupancy, and —
        for the calendar queue — bucket width and adaptivity counters)."""
        return self._scheduler.stats()

    # ------------------------------------------------------------------ #
    # External event injection
    # ------------------------------------------------------------------ #

    def schedule_external(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at simulation time ``now + delay``.

        This is the injection point for actors that live outside the replica
        set — client workload generators, measurement probes, chaos hooks.
        The callback runs on the simulation's event loop at the scheduled
        time (deterministically ordered against message deliveries and
        timers) and may itself send transactions, read state, or schedule
        further external events.

        Unlike replica timers, external events are not affected by crash
        faults and cannot be cancelled.

        Args:
            delay: non-negative offset from the current simulation time.
            callback: zero-argument callable invoked at the scheduled time.
        """
        if not math.isfinite(delay) or delay < 0:
            raise ValueError("external event delay must be finite and non-negative")
        if not callable(callback):
            raise TypeError("external event callback must be callable")
        self._external_scheduled += 1
        self._event_kind_counts["external"] += 1
        event = (self.now + delay, next(self._seq), "external",
                 _EXTERNAL_TARGET, callback)
        if self._queue is not None:
            heapq.heappush(self._queue, event)
        else:
            self._scheduler.push(event)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Invoke ``on_start`` on every (non-crashed) replica at time 0.

        A replica that is already crashed at time 0 but has a recovery time
        gets its ``on_start`` deferred to the recovery instant: a machine
        that boots late still boots.  Replicas crashed forever never start.
        """
        if self._started:
            return
        self._started = True
        for replica_id in self.replica_ids:
            if self.network.faults.is_crashed(replica_id, self.now):
                recover = self.network.faults.crash_schedule.recover_time(replica_id)
                if recover is not None and recover > self.now:
                    self._defer_start(replica_id, recover)
                continue
            self._protocols[replica_id].on_start(self._contexts[replica_id])

    def _defer_start(self, replica_id: int, at_time: float) -> None:
        """Schedule a late ``on_start`` for a replica recovering at ``at_time``."""

        def boot() -> None:
            # The window is half-open, so the replica is alive at exactly
            # its recovery instant; re-check in case the plan was replaced.
            if not self.network.faults.is_crashed(replica_id, self.now):
                self._protocols[replica_id].on_start(self._contexts[replica_id])

        event = (at_time, next(self._seq), "external", _EXTERNAL_TARGET, boot)
        if self._queue is not None:
            heapq.heappush(self._queue, event)
        else:
            self._scheduler.push(event)

    def _run_dispatch(self, until: float, max_events: Optional[int]) -> int:
        """Shared event-loop driver behind :meth:`run` and :meth:`step`.

        Selects the monomorphic loop variant matching the active feature
        set (compute model, crash faults, sweep enablement — see
        :mod:`repro.runtime.dispatch`), runs it, and re-selects whenever a
        feature toggle bumps the dispatch generation mid-run.  Returns the
        number of budget-consuming events processed.
        """
        if not self._started:
            self.start()
        budget = UNBOUNDED if max_events is None else max_events
        total = 0
        while True:
            generation = self._dispatch_generation
            loop = select_loop(
                self._compute_cost is not None,
                bool(self.network.faults.crash_schedule.crash_times),
                not self._force_scalar_dispatch,
                max_events is not None,
                backend=self._scheduler.name,
            )
            total += loop(self, until, budget - total)
            if self._dispatch_generation == generation or total >= budget:
                return total

    def step(self) -> bool:
        """Process the next event; return ``False`` if the queue is empty.

        Single-stepping runs the same compiled loop as :meth:`run` with an
        event budget of one, so it cannot drift from the batched path:
        mbatch/sbatch events are unfolded one member per step (the tail or
        successor goes back under the batch's original heap key), and
        cancelled timers / compute deferrals are skipped without consuming
        the budget — observably identical to one iteration of ``run()``.
        """
        return self._run_dispatch(math.inf, 1) > 0

    def run(self, until: float, max_events: Optional[int] = None) -> None:
        """Run the simulation until simulated time ``until`` (or event budget).

        Events scheduled after ``until`` remain queued; the clock is advanced
        to exactly ``until`` at the end so measurements have a common horizon.
        When ``max_events`` stops the run *before* the horizon, the clock is
        left where the last event put it — events are still pending inside
        the horizon, and jumping past them would let work scheduled by the
        next chunk land beyond ``until``, silently changing the execution a
        resumed run replays.
        (One deliberate edge: when a *cancelled* timer sits at the heap head
        inside the horizon, the next real event is dispatched without
        re-checking ``until`` — preserved from the original ``step()``-based
        loop so that seeded executions stay byte-for-byte reproducible.)

        The hot loop itself lives in :mod:`repro.runtime.dispatch`: a
        monomorphic variant is selected at entry for the active feature
        set, per-target handler tables kill repeated dict/attr lookups,
        and (unless :attr:`force_scalar_dispatch` is set) consecutive
        same-``(time, target)`` deliveries are fused into single
        :meth:`repro.protocols.base.Protocol.on_messages` sweeps.
        """
        processed = self._run_dispatch(until, max_events)
        if until != math.inf and (max_events is None or processed < max_events):
            self.now = max(self.now, until)

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain; return the number processed.

        Shares :meth:`run`'s hot loop (an infinite horizon never advances
        the clock past the last event).  ``max_events`` bounds the run
        against protocols that feed themselves work forever — but a run
        that *hits* the bound with events still queued is wedged, not
        idle, so it raises :class:`BudgetExhausted` instead of silently
        returning mid-execution.
        """
        processed = self._run_dispatch(math.inf, max_events)
        remaining = len(self._scheduler)
        if remaining:
            raise BudgetExhausted(processed, remaining)
        return processed

    # ------------------------------------------------------------------ #
    # Internals used by the per-replica contexts
    # ------------------------------------------------------------------ #

    def _enqueue_message(self, sender: int, receiver: int, message: Message) -> None:
        self._messages_sent += 1
        self._bytes_sent += getattr(message, "wire_size", 0)
        delivery = self._transport.unicast(sender, receiver, message, self.now, self._rng)
        if self._delivery_listeners:
            for listener in self._delivery_listeners:
                listener(sender, receiver, message, self.now, delivery)
        if delivery is None:
            self._messages_dropped += 1
            return
        self._event_kind_counts["message"] += 1
        event = (delivery.deliver_at, next(self._seq), "message", receiver,
                 (sender, message))
        if self._queue is not None:
            heapq.heappush(self._queue, event)
        else:
            self._scheduler.push(event)

    def _broadcast_message(self, sender: int, message: Message) -> None:
        receivers = self._replica_id_tuple
        count = len(receivers)
        self._messages_sent += count
        self._bytes_sent += getattr(message, "wire_size", 0) * count
        queue = self._queue
        seq = self._seq
        heappush = heapq.heappush
        payload = (sender, message)
        if self._delivery_listeners:
            # Tracing path: listeners need the full per-copy delay
            # decomposition, so keep the one-event-per-copy pipeline.
            deliveries = self._transport.broadcast(sender, receivers, message,
                                                   self.now, self._rng)
            dropped = count - len(deliveries)
            if dropped:
                self._messages_dropped += dropped
            self._event_kind_counts["message"] += len(deliveries)
            if queue is not None:
                for delivery in deliveries:
                    heappush(queue, (delivery.deliver_at, next(seq), "message",
                                     delivery.receiver, payload))
            else:
                push = self._scheduler.push
                for delivery in deliveries:
                    push((delivery.deliver_at, next(seq), "message",
                          delivery.receiver, payload))
            delivered = {delivery.receiver: delivery for delivery in deliveries}
            for receiver in receivers:
                delivery = delivered.get(receiver)
                for listener in self._delivery_listeners:
                    listener(sender, receiver, message, self.now, delivery)
            return
        counts = self._event_kind_counts
        if self._spread_broadcasts:
            # Jittered latency: arrival instants are almost surely pairwise
            # distinct, so the whole broadcast becomes ONE chained "sbatch"
            # heap event holding the time-sorted schedule — each pop
            # delivers one member and re-pushes the successor under the
            # batch's original seq.  The heap holds one entry per in-flight
            # broadcast instead of n, shrinking every sift, and scheduling
            # costs one C sort + one push instead of n pushes.  Ordering is
            # identical to the per-copy pipeline: the n per-copy seqs of a
            # broadcast form one contiguous block, so any other event's seq
            # is either below the whole block (it wins exact-time ties both
            # ways) or above it (it loses them both ways), and same-time
            # members keep their per-copy push order via the stable sort.
            # Exactly one arrival-schedule builder runs per broadcast (the
            # jitter draws consume the shared rng stream): the vectorized
            # array when available, else the scalar row, else per-pair.
            arrival_array = self._transport.broadcast_arrival_array(
                sender, receivers, message, self.now, self._rng)
            row = None
            if arrival_array is None:
                row = self._transport.broadcast_arrival_row(
                    sender, receivers, message, self.now, self._rng)
            if arrival_array is not None:
                # Vectorized schedule: a stable argsort breaks exact-time
                # ties in index order, which for the ascending full
                # receiver set IS receiver order — identical to
                # ``sorted(zip(row, receivers))`` — and ``tolist()``
                # preserves float bits.
                order = arrival_array.argsort(kind="stable")
                if queue is None:
                    # Calendar backend: hand the sorted schedule over as
                    # aligned numpy arrays — the queue spills it into
                    # per-bucket segments (one seq draw, same tie-break as
                    # the sbatch event below; see scheduler.spill).
                    counts["sbatch"] += 1
                    counts["sbatch_members"] += len(order)
                    self._scheduler.spill(
                        arrival_array.take(order),
                        order if self._ids_are_range
                        else self._receiver_array.take(order),
                        sender, message, payload)
                    return
                times = arrival_array[order].tolist()
                if self._ids_are_range:
                    targets = order.tolist()
                else:
                    ids = receivers
                    targets = [ids[i] for i in order.tolist()]
            elif row is not None:
                # ``receivers`` is ascending, so tuple comparison on equal
                # times reproduces the per-copy (receiver-order) tie-break.
                schedule = sorted(zip(row, receivers))
                times = [deliver_at for deliver_at, _ in schedule]
                targets = [receiver for _, receiver in schedule]
            else:
                pairs = self._transport.broadcast_times(
                    sender, receivers, message, self.now, self._rng)
                dropped = count - len(pairs)
                if dropped:
                    self._messages_dropped += dropped
                # Stable sort on the time field alone: relay pairs are not
                # in receiver order, and exact-time ties must keep the
                # transport's pair order (= the per-copy push order).
                pairs.sort(key=_PAIR_TIME)
                times = [deliver_at for _, deliver_at in pairs]
                targets = [receiver for receiver, _ in pairs]
            if times:
                counts["sbatch"] += 1
                counts["sbatch_members"] += len(times)
                if queue is None:
                    # Calendar backend, scalar schedule (no numpy row /
                    # relay pair list): push members individually under
                    # fractional seqs ``base + i/count`` — they order as
                    # one contiguous block at ``base`` against every
                    # integer seq, and among themselves in schedule order,
                    # while consuming the same single counter draw as the
                    # sbatch event.
                    base = next(seq)
                    push = self._scheduler.push
                    member_count = len(times)
                    for i in range(member_count):
                        push((times[i], base + i / member_count if i else base,
                              "message", targets[i], payload))
                    return
                # Flat payload (one unpack per dispatch): ``index`` must
                # stay at slot 2 (the loop's resume-point writes).
                heappush(queue, (times[0], next(seq), "sbatch", targets[0],
                                 [times, targets, 0, sender, message,
                                  len(times), payload]))
            return
        # Group copies arriving at the same instant into one heap event
        # ("mbatch"): under a zero-jitter latency model an n-way broadcast
        # costs one heap push/pop instead of n.  Groups are keyed by the
        # exact arrival float and formed in receiver order, so relative
        # event order is identical to the per-copy pipeline: same-time
        # copies were consecutive in seq order anyway, and distinct times
        # order by the heap key regardless of seq.  The group dict is a
        # scratch buffer reused across broadcasts; the fast path consumes
        # the transport's aligned arrival row directly (no pair tuples).
        row = self._transport.broadcast_arrival_row(sender, receivers, message,
                                                    self.now, self._rng)
        groups = self._group_scratch
        get_group = groups.get
        if row is not None:
            for receiver, deliver_at in zip(receivers, row):
                group = get_group(deliver_at)
                if group is None:
                    groups[deliver_at] = [receiver]
                else:
                    group.append(receiver)
        else:
            pairs = self._transport.broadcast_times(sender, receivers, message,
                                                    self.now, self._rng)
            dropped = count - len(pairs)
            if dropped:
                self._messages_dropped += dropped
            for receiver, deliver_at in pairs:
                group = get_group(deliver_at)
                if group is None:
                    groups[deliver_at] = [receiver]
                else:
                    group.append(receiver)
        push = self._scheduler.push if queue is None else None
        for deliver_at, targets in groups.items():
            size = len(targets)
            if size == 1:
                counts["message"] += 1
                event = (deliver_at, next(seq), "message", targets[0], payload)
            else:
                counts["mbatch"] += 1
                counts["mbatch_members"] += size
                event = (deliver_at, next(seq), "mbatch", _EXTERNAL_TARGET,
                         (targets, payload))
            if push is None:
                heappush(queue, event)
            else:
                push(event)
        groups.clear()

    def _arm_timer(self, replica_id: int, delay: float, name: str, data: Any) -> int:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        timer_id = next(self._timer_ids)
        timer = Timer(name=name, fire_time=self.now + delay, data=data, timer_id=timer_id)
        self._pending_timers.add(timer_id)
        self._event_kind_counts["timer"] += 1
        event = (timer.fire_time, next(self._seq), "timer", replica_id, timer)
        if self._queue is not None:
            heapq.heappush(self._queue, event)
        else:
            self._scheduler.push(event)
        return timer_id

    def _cancel_timer(self, timer_id: int) -> None:
        # Cancelling a timer that already fired (or was never armed) must be a
        # no-op, otherwise its id lingers in the cancelled set forever.
        if timer_id in self._pending_timers:
            self._pending_timers.discard(timer_id)
            self._cancelled_timers.add(timer_id)

    def _record_commit(self, replica_id: int, blocks: Iterable[Block], kind: str) -> None:
        for block in blocks:
            record = CommitRecord(
                replica_id=replica_id,
                block=block,
                commit_time=self.now,
                finalization_kind=kind,
            )
            self._commits[replica_id].append(record)
            for listener in self._commit_listeners:
                listener(record)

    def _notify_compute(self, kind: str, replica_id: int, time_: float,
                        seconds: float, message: Optional[Message]) -> None:
        for listener in self._compute_listeners:
            listener(kind, replica_id, time_, seconds, message)
