"""Deterministic discrete-event simulator.

The simulator drives a set of protocol replicas over the network substrate
(:mod:`repro.net`).  It owns a single priority queue of events (message
deliveries and timer firings) keyed by ``(time, sequence)`` — the sequence
number gives a stable, deterministic tie-break, so a given configuration and
seed always produces the same execution.

Message timing: when replica ``a`` sends a message of ``wire_size`` bytes to
replica ``b`` at time ``t``, it is delivered at::

    t + transfer_time(a, b, size) + propagation_delay(a, b)

unless the fault plan drops it.  Crashed replicas neither send nor receive,
and their pending timers never fire.

Besides replica-driven events, callers outside the replica set (e.g. the
client workload in :mod:`repro.workload`) can inject work into the event
queue with :meth:`Simulation.schedule_external`: the callback runs at the
scheduled simulation time, interleaved deterministically with message
deliveries and timers via the same ``(time, sequence)`` ordering.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.bandwidth import BandwidthModel
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, LatencyModel
from repro.runtime.context import ReplicaContext, Timer
from repro.types.blocks import Block
from repro.types.messages import Message


@dataclass
class NetworkConfig:
    """Bundle of network substrate parameters for a simulation.

    Attributes:
        latency: one-way propagation-delay model.
        bandwidth: size-dependent transfer-time model.
        faults: crash / drop / partition plan.
        seed: seed for all stochastic choices (jitter, drops).
    """

    latency: LatencyModel = field(default_factory=lambda: ConstantLatency(0.05))
    bandwidth: BandwidthModel = field(default_factory=BandwidthModel)
    faults: FaultPlan = field(default_factory=FaultPlan.none)
    seed: int = 0


@dataclass(frozen=True)
class CommitRecord:
    """A block committed (finalized and output) by a replica.

    Attributes:
        replica_id: the committing replica.
        block: the finalized block.
        commit_time: simulation time of the commit.
        finalization_kind: ``"fast"`` or ``"slow"``.
    """

    replica_id: int
    block: Block
    commit_time: float
    finalization_kind: str


#: Event target used for injected external events (not a replica id).
_EXTERNAL_TARGET = -1


class _Event:
    """Internal event: a message delivery, timer firing, or external callback."""

    __slots__ = ("time", "seq", "kind", "target", "payload")

    def __init__(self, time: float, seq: int, kind: str, target: int, payload: Any) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.target = target
        self.payload = payload

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class _SimContext(ReplicaContext):
    """Per-replica context implementation backed by the simulator."""

    def __init__(self, simulation: "Simulation", replica_id: int) -> None:
        self._simulation = simulation
        self._replica_id = replica_id

    @property
    def replica_id(self) -> int:
        return self._replica_id

    @property
    def replica_ids(self) -> list:
        return list(self._simulation.replica_ids)

    def now(self) -> float:
        return self._simulation.now

    def send(self, receiver: int, message: Message) -> None:
        self._simulation._enqueue_message(self._replica_id, receiver, message)

    def broadcast(self, message: Message) -> None:
        for receiver in self._simulation.replica_ids:
            self._simulation._enqueue_message(self._replica_id, receiver, message)

    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        return self._simulation._arm_timer(self._replica_id, delay, name, data)

    def cancel_timer(self, timer_id: int) -> None:
        self._simulation._cancel_timer(timer_id)

    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        self._simulation._record_commit(self._replica_id, blocks, finalization_kind)


class Simulation:
    """Discrete-event simulation of a set of protocol replicas.

    Args:
        protocols: mapping replica id → protocol instance (anything matching
            :class:`repro.protocols.base.Protocol`).
        network: the network substrate configuration.

    Usage::

        sim = Simulation(protocols, NetworkConfig(latency=GeoLatency(topology)))
        sim.run(until=60.0)
        commits = sim.commits_for(replica_id=0)
    """

    def __init__(self, protocols: Dict[int, Any], network: Optional[NetworkConfig] = None) -> None:
        if not protocols:
            raise ValueError("simulation needs at least one replica")
        self._protocols = dict(protocols)
        self.replica_ids: List[int] = sorted(self._protocols)
        self.network = network or NetworkConfig()
        self._rng = random.Random(self.network.seed)
        self.now: float = 0.0
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._timer_ids = itertools.count(1)
        self._cancelled_timers: set = set()
        self._pending_timers: set = set()
        self._external_scheduled = 0
        self._contexts: Dict[int, _SimContext] = {
            replica_id: _SimContext(self, replica_id) for replica_id in self.replica_ids
        }
        self._commits: Dict[int, List[CommitRecord]] = {r: [] for r in self.replica_ids}
        self._commit_listeners: List[Callable[[CommitRecord], None]] = []
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._bytes_sent = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    @property
    def messages_sent(self) -> int:
        """Total messages handed to the network."""
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        """Total messages delivered to replicas."""
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        """Total messages lost to crashes, partitions, or random drops."""
        return self._messages_dropped

    @property
    def bytes_sent(self) -> int:
        """Total logical bytes handed to the network."""
        return self._bytes_sent

    def protocol(self, replica_id: int) -> Any:
        """Return the protocol instance of ``replica_id``."""
        return self._protocols[replica_id]

    def commits_for(self, replica_id: int) -> List[CommitRecord]:
        """Return the commit records of ``replica_id`` in commit order."""
        return list(self._commits[replica_id])

    def all_commits(self) -> Dict[int, List[CommitRecord]]:
        """Return commit records for every replica."""
        return {replica_id: list(records) for replica_id, records in self._commits.items()}

    def add_commit_listener(self, listener: Callable[[CommitRecord], None]) -> None:
        """Register a callback invoked on every commit record."""
        self._commit_listeners.append(listener)

    @property
    def external_events_scheduled(self) -> int:
        """Total external events injected via :meth:`schedule_external`."""
        return self._external_scheduled

    # ------------------------------------------------------------------ #
    # External event injection
    # ------------------------------------------------------------------ #

    def schedule_external(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at simulation time ``now + delay``.

        This is the injection point for actors that live outside the replica
        set — client workload generators, measurement probes, chaos hooks.
        The callback runs on the simulation's event loop at the scheduled
        time (deterministically ordered against message deliveries and
        timers) and may itself send transactions, read state, or schedule
        further external events.

        Unlike replica timers, external events are not affected by crash
        faults and cannot be cancelled.

        Args:
            delay: non-negative offset from the current simulation time.
            callback: zero-argument callable invoked at the scheduled time.
        """
        if not math.isfinite(delay) or delay < 0:
            raise ValueError("external event delay must be finite and non-negative")
        if not callable(callback):
            raise TypeError("external event callback must be callable")
        self._external_scheduled += 1
        event = _Event(self.now + delay, next(self._seq), "external",
                       _EXTERNAL_TARGET, callback)
        heapq.heappush(self._queue, event)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Invoke ``on_start`` on every (non-crashed) replica at time 0."""
        if self._started:
            return
        self._started = True
        for replica_id in self.replica_ids:
            if self.network.faults.is_crashed(replica_id, self.now):
                continue
            self._protocols[replica_id].on_start(self._contexts[replica_id])

    def step(self) -> bool:
        """Process the next event; return ``False`` if the queue is empty."""
        if not self._started:
            self.start()
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.kind == "timer":
                timer_id = event.payload.timer_id
                self._pending_timers.discard(timer_id)
                if timer_id in self._cancelled_timers:
                    self._cancelled_timers.discard(timer_id)
                    continue
            self.now = max(self.now, event.time)
            self._dispatch(event)
            return True
        return False

    def run(self, until: float, max_events: Optional[int] = None) -> None:
        """Run the simulation until simulated time ``until`` (or event budget).

        Events scheduled after ``until`` remain queued; the clock is advanced
        to exactly ``until`` at the end so measurements have a common horizon.
        """
        if not self._started:
            self.start()
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            if self._queue[0].time > until:
                break
            self.step()
            processed += 1
        self.now = max(self.now, until)

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        if not self._started:
            self.start()
        processed = 0
        while self._queue and processed < max_events:
            self.step()
            processed += 1

    # ------------------------------------------------------------------ #
    # Internals used by the per-replica contexts
    # ------------------------------------------------------------------ #

    def _enqueue_message(self, sender: int, receiver: int, message: Message) -> None:
        self._messages_sent += 1
        size = getattr(message, "wire_size", 0)
        self._bytes_sent += size
        faults = self.network.faults
        if faults.should_drop(sender, receiver, self.now, self._rng):
            self._messages_dropped += 1
            return
        send_time = self.now
        release = faults.partition_release(sender, receiver, self.now)
        if release is not None:
            # Partition = period of asynchrony: the message is held back and
            # starts travelling once the partition heals.
            send_time = release
        transfer = self.network.bandwidth.transfer_time(sender, receiver, size)
        propagation = self.network.latency.delay(sender, receiver, self._rng)
        deliver_at = send_time + transfer + propagation
        event = _Event(deliver_at, next(self._seq), "message", receiver, (sender, message))
        heapq.heappush(self._queue, event)

    def _arm_timer(self, replica_id: int, delay: float, name: str, data: Any) -> int:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        timer_id = next(self._timer_ids)
        timer = Timer(name=name, fire_time=self.now + delay, data=data, timer_id=timer_id)
        event = _Event(timer.fire_time, next(self._seq), "timer", replica_id, timer)
        self._pending_timers.add(timer_id)
        heapq.heappush(self._queue, event)
        return timer_id

    def _cancel_timer(self, timer_id: int) -> None:
        # Cancelling a timer that already fired (or was never armed) must be a
        # no-op, otherwise its id lingers in the cancelled set forever.
        if timer_id in self._pending_timers:
            self._pending_timers.discard(timer_id)
            self._cancelled_timers.add(timer_id)

    def _record_commit(self, replica_id: int, blocks: Iterable[Block], kind: str) -> None:
        for block in blocks:
            record = CommitRecord(
                replica_id=replica_id,
                block=block,
                commit_time=self.now,
                finalization_kind=kind,
            )
            self._commits[replica_id].append(record)
            for listener in self._commit_listeners:
                listener(record)

    def _dispatch(self, event: _Event) -> None:
        if event.kind == "external":
            event.payload()
            return
        replica_id = event.target
        if self.network.faults.is_crashed(replica_id, self.now):
            if event.kind == "message":
                self._messages_dropped += 1
            return
        protocol = self._protocols[replica_id]
        context = self._contexts[replica_id]
        if event.kind == "message":
            sender, message = event.payload
            self._messages_delivered += 1
            protocol.on_message(context, sender, message)
        elif event.kind == "timer":
            protocol.on_timer(context, event.payload)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown event kind {event.kind!r}")
