"""Misbehaving replica implementations.

These replicas are planted into otherwise-honest replica sets in tests and
ablation benchmarks.  They are intentionally *not* exhaustive adversaries —
they exercise the specific failure modes the paper's analysis discusses:
silence (crash), leader equivocation, and stragglers.

Detection is generic: honest replicas tally every vote through the shared
quorum engine (:mod:`repro.smr.quorum`), which records any signer observed
supporting two different blocks — no per-protocol detection code.  Such an
observation is only *proof* of misbehaviour for vote kinds where honest
replicas vote at most once per round; :func:`fast_vote_equivocators`
surfaces the sound Banyan fast-path flavour (honest replicas fast-vote at
most once per round, so any flagged signer has provably misbehaved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Type

from repro.core.banyan import BanyanReplica
from repro.protocols.base import Protocol, ProtocolParams
from repro.protocols.icc import ICCReplica
from repro.runtime.context import ReplicaContext, Timer
from repro.types.blocks import Block
from repro.types.messages import Message


def fast_vote_equivocators(protocol: Protocol) -> FrozenSet[int]:
    """Signers ``protocol`` caught fast-vote equivocating, across rounds.

    A correct Banyan replica broadcasts at most one fast vote per round
    (Addition 3), so a signer whose fast votes support two different blocks
    of one round has produced self-incriminating evidence.  The per-round
    :class:`repro.core.fastpath.FastPathState` tallies support through the
    shared quorum engine, which records exactly this; here it is collected
    over every round the replica has seen.

    Returns an empty set for protocols without a fast path.
    """
    culprits: Set[int] = set()
    for state in getattr(protocol, "_fast", {}).values():
        culprits |= state.equivocators()
    return frozenset(culprits)


class SilentReplica(Protocol):
    """A replica that never sends anything (equivalent to being crashed)."""

    name = "silent"

    def __init__(self, replica_id: int, params: ProtocolParams, **_: Any) -> None:
        super().__init__(replica_id, params)

    def on_start(self, ctx: ReplicaContext) -> None:
        """Ignore start-up."""

    def on_message(self, ctx: ReplicaContext, sender: int, message: Message) -> None:
        """Drop every message."""

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        """Ignore timers."""


class _EquivocationMixin:
    """Override proposing to send two conflicting blocks to disjoint halves.

    When the replica is the round leader it creates two different blocks
    extending the same parent and sends one to the first half of the replicas
    and the other to the second half — the classic equivocation attack that
    the notarization/fast-vote quorum intersection must defuse.
    """

    def _propose(self, ctx: ReplicaContext, round_k: int) -> None:  # type: ignore[override]
        state = self._round(round_k)
        if state.proposed or state.advanced:
            return
        rank = self.beacon.rank(round_k, self.replica_id)
        if rank != 0:
            # Behave honestly when not the leader; equivocation only pays as
            # the rank-0 proposer.
            super()._propose(ctx, round_k)
            return
        candidates = self._parent_candidates(round_k)
        if not candidates:
            return
        parent = min(candidates, key=lambda b: (b.rank, b.id))
        state.proposed = True
        replica_ids = ctx.replica_ids
        half = len(replica_ids) // 2
        groups = [replica_ids[:half], replica_ids[half:]]
        for index, group in enumerate(groups):
            payload = f"equivocation:{round_k}:{index}".encode("utf-8")
            block = Block(
                round=round_k,
                proposer=self.replica_id,
                rank=0,
                parent_id=parent.id,
                payload=payload,
                payload_size=self.params.payload_size,
            )
            proposal = self._make_proposal(round_k, block, parent)
            for receiver in group:
                ctx.send(receiver, proposal)
            self._after_propose(ctx, round_k, block)


class EquivocatingICCReplica(_EquivocationMixin, ICCReplica):
    """An ICC replica that equivocates whenever it is the leader."""

    name = "icc-equivocator"


class EquivocatingBanyanReplica(_EquivocationMixin, BanyanReplica):
    """A Banyan replica that equivocates whenever it is the leader."""

    name = "banyan-equivocator"


class EquivocatingLeaderReplica(EquivocatingBanyanReplica):
    """Default equivocator (Banyan flavour); kept for a stable public name."""


def make_equivocating_icc() -> Type[Protocol]:
    """Factory for planting an equivocating ICC leader via ``overrides``."""
    return EquivocatingICCReplica


def make_equivocating_banyan() -> Type[Protocol]:
    """Factory for planting an equivocating Banyan leader via ``overrides``."""
    return EquivocatingBanyanReplica


class _DelayingContext(ReplicaContext):
    """Context wrapper that delays every outbound message by a fixed amount."""

    def __init__(self, inner: ReplicaContext, owner: "DelayedReplica") -> None:
        self._inner = inner
        self._owner = owner

    @property
    def replica_id(self) -> int:
        return self._inner.replica_id

    @property
    def replica_ids(self) -> list:
        return self._inner.replica_ids

    def now(self) -> float:
        return self._inner.now()

    def send(self, receiver: int, message: Message) -> None:
        self._owner.queue_send(self._inner, receiver, message)

    def broadcast(self, message: Message) -> None:
        for receiver in self._inner.replica_ids:
            self._owner.queue_send(self._inner, receiver, message)

    def set_timer(self, delay: float, name: str, data: Any = None) -> int:
        return self._inner.set_timer(delay, name, data)

    def cancel_timer(self, timer_id: int) -> None:
        self._inner.cancel_timer(timer_id)

    def commit(self, blocks, finalization_kind: str = "slow") -> None:
        self._inner.commit(blocks, finalization_kind=finalization_kind)


class DelayedReplica(Protocol):
    """An honest replica whose outbound messages are delayed (a straggler).

    Wraps an inner honest protocol and defers every ``send``/``broadcast`` by
    ``extra_delay`` seconds using the runtime's own timers.  Used by the
    straggler ablation benchmark to show when the Banyan fast path stops
    firing.

    An optional ``window=(start, end)`` limits the straggling to a phase: the
    delay applies only to sends initiated during the half-open interval
    ``[start, end)`` (same boundary rule as :mod:`repro.net.faults`), so the
    chaos engine can model a replica that is slow for a while and then
    recovers its pace.  Without a window the replica straggles forever.
    """

    name = "delayed"

    #: Timer name used internally for deferred sends.
    _SEND_TIMER = "__delayed_send__"

    def __init__(
        self,
        inner: Protocol,
        extra_delay: float,
        window: Optional[tuple] = None,
    ) -> None:
        super().__init__(inner.replica_id, inner.params, inner.registry)
        if extra_delay < 0:
            raise ValueError("extra delay must be non-negative")
        if window is not None and window[1] <= window[0]:
            raise ValueError("straggler window must have positive length")
        self.inner = inner
        self.extra_delay = extra_delay
        self.window = window
        self.proposal_times = inner.proposal_times

    def queue_send(self, ctx: ReplicaContext, receiver: int, message: Message) -> None:
        """Defer a send by ``extra_delay`` (immediately if the delay is 0 or
        the send falls outside the straggler window)."""
        if self.extra_delay <= 0:
            ctx.send(receiver, message)
            return
        if self.window is not None:
            now = ctx.now()
            if not (self.window[0] <= now < self.window[1]):
                ctx.send(receiver, message)
                return
        ctx.set_timer(self.extra_delay, self._SEND_TIMER, (receiver, message))

    def on_start(self, ctx: ReplicaContext) -> None:
        """Start the wrapped replica with a delaying context."""
        self.inner.on_start(_DelayingContext(ctx, self))

    def on_message(self, ctx: ReplicaContext, sender: int, message: Message) -> None:
        """Deliver to the wrapped replica with a delaying context."""
        self.inner.on_message(_DelayingContext(ctx, self), sender, message)

    def on_timer(self, ctx: ReplicaContext, timer: Timer) -> None:
        """Flush deferred sends; forward other timers to the wrapped replica."""
        if timer.name == self._SEND_TIMER:
            receiver, message = timer.data
            ctx.send(receiver, message)
            return
        self.inner.on_timer(_DelayingContext(ctx, self), timer)
