"""Byzantine and faulty replica behaviours.

The safety analysis of the paper (Section 8) covers equivocating leaders and
arbitrary misbehaviour.  This package provides misbehaving replica
implementations that can be planted into a replica set (via the ``overrides``
argument of :func:`repro.protocols.registry.create_replicas`) to exercise the
honest replicas' defences in tests:

* :class:`SilentReplica` — never sends anything (an always-crashed replica).
* :class:`EquivocatingLeaderReplica` — proposes two conflicting blocks
  whenever it is the leader.
* :class:`DelayedReplica` — an honest replica whose outbound messages are
  delayed by a fixed amount (a straggler).
"""

from repro.byzantine.behaviors import (
    DelayedReplica,
    EquivocatingLeaderReplica,
    SilentReplica,
    make_equivocating_banyan,
    make_equivocating_icc,
)

__all__ = [
    "DelayedReplica",
    "EquivocatingLeaderReplica",
    "SilentReplica",
    "make_equivocating_banyan",
    "make_equivocating_icc",
]
