"""Unit tests for the leader-rotation beacons."""

from __future__ import annotations

import pytest

from repro.beacon import RoundRobinBeacon, SeededPermutationBeacon


class TestRoundRobinBeacon:
    def test_leader_rotates_over_rounds(self):
        beacon = RoundRobinBeacon([0, 1, 2, 3])
        assert [beacon.leader(k) for k in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_permutation_is_a_rotation(self):
        beacon = RoundRobinBeacon([0, 1, 2, 3])
        assert beacon.permutation(1) == [1, 2, 3, 0]
        assert beacon.permutation(3) == [3, 0, 1, 2]

    def test_permutation_contains_every_replica_once(self):
        beacon = RoundRobinBeacon(list(range(7)))
        for round in range(10):
            assert sorted(beacon.permutation(round)) == list(range(7))

    def test_rank_of_leader_is_zero(self):
        beacon = RoundRobinBeacon(list(range(5)))
        for round in range(10):
            assert beacon.rank(round, beacon.leader(round)) == 0

    def test_ranks_mapping_matches_permutation(self):
        beacon = RoundRobinBeacon(list(range(4)))
        ranks = beacon.ranks(2)
        permutation = beacon.permutation(2)
        for replica, rank in ranks.items():
            assert permutation[rank] == replica

    def test_unknown_replica_raises(self):
        beacon = RoundRobinBeacon([0, 1, 2])
        with pytest.raises(ValueError):
            beacon.rank(0, 99)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBeacon([0, 0, 1])

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBeacon([])

    def test_non_contiguous_ids_supported(self):
        beacon = RoundRobinBeacon([10, 20, 30])
        assert beacon.leader(0) == 10
        assert beacon.leader(1) == 20
        assert beacon.rank(1, 10) == 2


class TestSeededPermutationBeacon:
    def test_same_seed_gives_same_permutations(self):
        a = SeededPermutationBeacon(list(range(6)), seed=42)
        b = SeededPermutationBeacon(list(range(6)), seed=42)
        for round in range(20):
            assert a.permutation(round) == b.permutation(round)

    def test_different_seed_gives_different_schedule(self):
        a = SeededPermutationBeacon(list(range(6)), seed=1)
        b = SeededPermutationBeacon(list(range(6)), seed=2)
        assert any(a.permutation(k) != b.permutation(k) for k in range(20))

    def test_permutation_is_a_permutation(self):
        beacon = SeededPermutationBeacon(list(range(9)), seed=7)
        for round in range(15):
            assert sorted(beacon.permutation(round)) == list(range(9))

    def test_leader_changes_across_rounds(self):
        beacon = SeededPermutationBeacon(list(range(10)), seed=0)
        leaders = {beacon.leader(k) for k in range(50)}
        assert len(leaders) > 1

    def test_leadership_is_roughly_fair(self):
        beacon = SeededPermutationBeacon(list(range(4)), seed=3)
        counts = {replica: 0 for replica in range(4)}
        rounds = 400
        for round in range(rounds):
            counts[beacon.leader(round)] += 1
        for count in counts.values():
            assert rounds / 4 * 0.5 < count < rounds / 4 * 1.5
