"""Tests for the evaluation harness: experiments, Table 1, figure scenarios."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table, render_series
from repro.analysis.stats import confidence_interval_95, improvement_pct
from repro.eval.experiment import ExperimentConfig, run_experiment, sweep_payload_sizes
from repro.eval.scenarios import (
    GLOBAL_RANK_DELAY,
    ablation_p_sweep,
    ablation_stragglers,
    figure_6b,
    figure_6c,
    figure_6d,
)
from repro.eval.table1 import TABLE1_SPECS, banyan_beats_or_matches_all, table1_rows
from repro.net.faults import FaultPlan
from repro.net.topology import four_global_datacenters, four_us_datacenters
from repro.protocols.base import ProtocolParams


class TestTable1:
    def test_has_every_protocol_row(self):
        names = {spec.name for spec in TABLE1_SPECS}
        assert {"Banyan", "ICC / Simplex", "Streamlet", "SBFT", "Zelma", "Casper FFG"} <= names
        assert len(TABLE1_SPECS) == 12

    def test_banyan_row_matches_paper_formulas(self):
        rows = {row["protocol"]: row for row in table1_rows(f=6, p=1)}
        banyan = rows["Banyan"]
        assert banyan["finalization_latency"] == "2δ"
        assert banyan["finalization_requirement"] == str(3 * 6 + 1 - 1)  # 3f + p - 1 = 18
        assert banyan["creation_requirement"] == str(2 * 6 + 1)          # 2f + p = 13
        assert banyan["replicas"] == "19"                                 # 3f + 2p - 1
        assert banyan["rotating_leaders"] == "yes"

    def test_icc_row_matches_paper(self):
        rows = {row["protocol"]: row for row in table1_rows(f=6, p=1)}
        icc = rows["ICC / Simplex"]
        assert icc["finalization_latency"] == "3δ"
        assert icc["finalization_requirement"] == "13"
        assert icc["replicas"] == "19"

    def test_f4_p4_configuration(self):
        rows = {row["protocol"]: row for row in table1_rows(f=4, p=4)}
        assert rows["Banyan"]["replicas"] == "19"
        assert rows["Banyan"]["finalization_requirement"] == "15"  # 3f + p - 1

    def test_banyan_has_minimal_finalization_latency(self):
        assert banyan_beats_or_matches_all(f=3, p=2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            table1_rows(f=0, p=1)
        with pytest.raises(ValueError):
            table1_rows(f=2, p=3)

    def test_rows_render_as_table(self):
        rows = table1_rows(f=1, p=1)
        headers = list(rows[0])
        text = format_table(headers, [[row[h] for h in headers] for row in rows])
        assert "Banyan" in text and "Streamlet" in text


class TestExperimentRunner:
    def test_run_experiment_produces_metrics(self):
        config = ExperimentConfig(
            protocol="banyan",
            params=ProtocolParams(n=4, f=1, p=1, rank_delay=GLOBAL_RANK_DELAY,
                                  payload_size=100_000),
            topology=four_global_datacenters(4),
            duration=8.0,
            warmup=1.0,
        )
        result = run_experiment(config)
        assert result.metrics.committed_blocks > 3
        assert result.metrics.mean_latency > 0
        assert result.messages_sent > 0
        row = result.row()
        assert row["protocol"] == "banyan"
        assert row["payload_bytes"] == 100_000

    def test_topology_size_mismatch_rejected(self):
        config = ExperimentConfig(
            protocol="icc",
            params=ProtocolParams(n=7, f=2),
            topology=four_global_datacenters(4),
        )
        with pytest.raises(ValueError):
            run_experiment(config)

    def test_observer_defaults_to_non_crashed_replica(self):
        config = ExperimentConfig(
            protocol="icc",
            params=ProtocolParams(n=4, f=1, rank_delay=GLOBAL_RANK_DELAY, payload_size=1_000),
            topology=four_global_datacenters(4),
            duration=6.0,
            warmup=1.0,
            faults=FaultPlan.with_crashed([0]),
        )
        result = run_experiment(config)
        assert result.metrics.committed_blocks > 0

    def test_sweep_payload_sizes(self):
        base = ExperimentConfig(
            protocol="icc",
            params=ProtocolParams(n=4, f=1, rank_delay=GLOBAL_RANK_DELAY, payload_size=0),
            topology=four_global_datacenters(4),
            duration=6.0,
            warmup=1.0,
        )
        results = sweep_payload_sizes(base, [10_000, 1_000_000])
        assert [r.config.params.payload_size for r in results] == [10_000, 1_000_000]
        # Larger payloads take longer to finalize (bandwidth term).
        assert results[0].metrics.mean_latency < results[1].metrics.mean_latency

    def test_same_seed_reproduces_results(self):
        config = ExperimentConfig(
            protocol="banyan",
            params=ProtocolParams(n=4, f=1, p=1, rank_delay=GLOBAL_RANK_DELAY,
                                  payload_size=50_000),
            topology=four_global_datacenters(4),
            duration=6.0,
            warmup=1.0,
            seed=13,
        )
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.metrics.mean_latency == pytest.approx(second.metrics.mean_latency)
        assert first.metrics.committed_blocks == second.metrics.committed_blocks


class TestFigureScenarios:
    """Quick versions of the figure scenarios: check the *shape* of results."""

    def test_figure_6b_banyan_beats_icc(self):
        figure = figure_6b(payload_sizes=(500_000,), duration=10.0, warmup=1.0)
        assert figure.improvement_over("icc", "banyan (p=1)", 500_000) > 5.0
        assert figure.mean_latency("hotstuff", 500_000) > figure.mean_latency("icc", 500_000)
        text = figure.render()
        assert "banyan (p=1)" in text and "Figure 6b" in text

    def test_figure_6c_variance_comparable(self):
        figure = figure_6c(payload_size=500_000, duration=12.0, warmup=1.0)
        banyan = next(r for r in figure.results if r.label == "banyan (p=1)")
        icc = next(r for r in figure.results if r.label == "icc")
        assert banyan.metrics.mean_latency < icc.metrics.mean_latency
        # Variance of the same order of magnitude (paper: no increased variance).
        assert banyan.metrics.latency_stddev < icc.metrics.mean_latency

    def test_figure_6d_crashes_degrade_but_do_not_stop(self):
        figure = figure_6d(crash_counts=(0, 2), payload_size=20_000, duration=24.0, warmup=1.0)
        for label in ("banyan (p=1)", "icc"):
            rows = figure.series[label]
            assert rows[0]["committed_blocks"] > rows[1]["committed_blocks"] > 0
            assert rows[1]["block_interval_ms"] > rows[0]["block_interval_ms"]
        # Under crashes Banyan behaves like ICC (same committed blocks +- 10%).
        banyan_crashed = figure.series["banyan (p=1)"][1]["committed_blocks"]
        icc_crashed = figure.series["icc"][1]["committed_blocks"]
        assert abs(banyan_crashed - icc_crashed) <= max(2, 0.1 * icc_crashed)

    def test_ablation_p_sweep_runs(self):
        figure = ablation_p_sweep(p_values=(1, 4), payload_size=50_000, duration=8.0, warmup=1.0)
        assert len(figure.results) == 2
        for rows in figure.series.values():
            assert rows[0]["committed_blocks"] > 0

    def test_ablation_stragglers_degrades_fast_path(self):
        figure = ablation_stragglers(straggler_counts=(0, 2), extra_delay=1.0,
                                     payload_size=10_000, duration=10.0, warmup=1.0)
        rows = figure.series["banyan (p=1)"]
        assert rows[0]["fast_path_ratio"] > rows[1]["fast_path_ratio"]


class TestAnalysisHelpers:
    def test_improvement_pct(self):
        assert improvement_pct(200.0, 150.0) == pytest.approx(25.0)
        assert improvement_pct(0.0, 10.0) == 0.0

    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval_95([1.0, 2.0, 3.0, 4.0])
        assert low <= 2.5 <= high

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_series(self):
        text = render_series("Title", {"proto": [{"x": 1, "y": 2}]}, ["x", "y"])
        assert "Title" in text and "[proto]" in text and "1" in text
